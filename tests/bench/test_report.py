"""Markdown report generation."""

import pytest

from repro.bench.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text(request):
    from repro.platform import shen_icpp15_platform

    return generate_report(shen_icpp15_platform())


class TestGenerateReport:
    def test_contains_platform(self, report_text):
        assert "Xeon E5-2620" in report_text
        assert "Tesla K20m" in report_text

    def test_contains_all_scenarios(self, report_text):
        for label in ("MatrixMul", "HotSpot", "STREAM-Seq-w/o",
                      "STREAM-Loop-w"):
            assert label in report_text

    def test_reports_shape_outcome(self, report_text):
        assert "49 checks passed, 0 failed" in report_text

    def test_speedup_table_with_average(self, report_text):
        assert "| **average** |" in report_text
        assert "vs Only-GPU" in report_text

    def test_valid_markdown_tables(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_write_report(self, tmp_path):
        from repro.platform import shen_icpp15_platform

        path = write_report(shen_icpp15_platform(), tmp_path / "r.md")
        assert path.read_text().startswith("# Live evaluation report")
