"""Experiment drivers (one per table/figure)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    RankingComparison,
    empirical_ranking,
    run_experiment,
    scaled_size,
)
from repro.errors import ExperimentError

SCALE = 1 / 64  # quick problem sizes for unit tests


class TestExperimentCatalog:
    def test_every_paper_artifact_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS.values()}
        for fig in (5, 6, 7, 8, 9, 10, 11):
            assert any(f"Figure {fig}" in a for a in artifacts)

    def test_labels(self):
        assert "Figure 5" in EXPERIMENTS["fig5"].label()

    def test_unknown_key(self, paper_platform):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", paper_platform)


class TestScaledSize:
    def test_full_scale_is_paper_size(self):
        assert scaled_size("MatrixMul", 1.0) == 6144

    def test_scaled_down_warp_aligned(self):
        n = scaled_size("BlackScholes", 0.001)
        assert n % 32 == 0
        assert n >= 256

    def test_invalid_scale(self):
        with pytest.raises(ExperimentError):
            scaled_size("MatrixMul", 0.0)


class TestRunExperiment:
    def test_fig5_two_scenarios(self, paper_platform):
        results = run_experiment("fig5", paper_platform, scale=SCALE)
        assert [r.application for r in results] == ["MatrixMul", "BlackScholes"]
        for scenario in results:
            assert len(scenario.outcomes) == 5

    def test_fig9_sync_variants(self, paper_platform):
        results = run_experiment("fig9", paper_platform, scale=SCALE,
                                 iterations=1)
        assert [r.label for r in results] == [
            "STREAM-Seq-w/o", "STREAM-Seq-w",
        ]

    def test_mkdag_runs_dynamic_only(self, paper_platform):
        results = run_experiment("mkdag", paper_platform, scale=1.0)
        strategies = {o.strategy for o in results[0].outcomes}
        assert strategies == {"Only-GPU", "Only-CPU", "DP-Perf", "DP-Dep"}


class TestEmpiricalRanking:
    def test_comparison_structure(self, paper_platform):
        rc = empirical_ranking("MatrixMul", paper_platform, scale=1 / 8)
        assert rc.theoretical == ("SP-Single", "DP-Perf", "DP-Dep")
        assert set(rc.empirical) == set(rc.theoretical)
        assert set(rc.times_ms) == set(rc.theoretical)

    def test_matches_handles_ties(self):
        rc = RankingComparison(
            scenario="s",
            theoretical=("A", "B", "C"),
            empirical=("B", "A", "C"),
            times_ms={"A": 100.0, "B": 98.0, "C": 200.0},
        )
        assert rc.matches(tie_tolerance=1.05)
        assert not rc.matches(tie_tolerance=1.0)

    def test_matches_rejects_wrong_winner(self):
        rc = RankingComparison(
            scenario="s",
            theoretical=("A", "B"),
            empirical=("B", "A"),
            times_ms={"A": 200.0, "B": 100.0},
        )
        assert not rc.matches(tie_tolerance=1.1)
