"""Regression-baseline snapshots."""

import json

from repro.bench.baseline import (
    check_baseline,
    compare,
    save_baseline,
)


def fake_snapshot(**overrides):
    base = {
        "version": 1,
        "scenarios": {
            "AppA": {
                "SP-Single": {"makespan_ms": 100.0, "gpu_fraction": 0.9},
                "DP-Perf": {"makespan_ms": 120.0, "gpu_fraction": 1.0},
            },
        },
    }
    base.update(overrides)
    return base


class TestCompare:
    def test_identical_snapshots_clean(self):
        assert compare(fake_snapshot(), fake_snapshot()).ok

    def test_within_tolerance_clean(self):
        fresh = fake_snapshot()
        fresh["scenarios"]["AppA"]["SP-Single"]["makespan_ms"] = 100.5
        assert compare(fake_snapshot(), fresh, rtol=0.01).ok

    def test_time_drift_detected(self):
        fresh = fake_snapshot()
        fresh["scenarios"]["AppA"]["SP-Single"]["makespan_ms"] = 115.0
        diff = compare(fake_snapshot(), fresh, rtol=0.01)
        assert not diff.ok
        assert any("makespan" in c for c in diff.changes)
        assert "drift" in diff.summary()

    def test_ratio_drift_detected(self):
        fresh = fake_snapshot()
        fresh["scenarios"]["AppA"]["SP-Single"]["gpu_fraction"] = 0.80
        diff = compare(fake_snapshot(), fresh)
        assert any("gpu fraction" in c for c in diff.changes)

    def test_missing_and_new_entries(self):
        fresh = fake_snapshot()
        del fresh["scenarios"]["AppA"]["DP-Perf"]
        fresh["scenarios"]["AppB"] = {}
        diff = compare(fake_snapshot(), fresh)
        assert any("missing strategy" in c for c in diff.changes)
        assert any("new scenario" in c for c in diff.changes)

    def test_version_mismatch(self):
        diff = compare(fake_snapshot(), fake_snapshot(version=2))
        assert any("version" in c for c in diff.changes)


class TestRoundTrip:
    def test_save_then_check_is_clean(self, paper_platform, tmp_path):
        path = save_baseline(paper_platform, tmp_path / "base.json")
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert "MatrixMul" in data["scenarios"]
        diff = check_baseline(paper_platform, path)
        assert diff.ok, diff.summary()

    def test_snapshot_covers_all_strategies(self, paper_platform, tmp_path):
        path = save_baseline(paper_platform, tmp_path / "base.json")
        data = json.loads(path.read_text())
        assert set(data["scenarios"]["MatrixMul"]) == {
            "Only-GPU", "Only-CPU", "SP-Single", "DP-Perf", "DP-Dep",
        }
