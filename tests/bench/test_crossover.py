"""Crossover-analysis machinery."""

import pytest

from repro.bench.crossover import (
    CrossoverPoint,
    format_crossover,
    hotspot_bandwidth_crossover,
    stream_iteration_crossover,
    with_link_bandwidth,
)
from repro.errors import ExperimentError


class TestWithLinkBandwidth:
    def test_replaces_all_links(self, paper_platform):
        fast = with_link_bandwidth(paper_platform, 48.0)
        assert fast.link_for("gpu0").bandwidth_gbs == 48.0
        # original untouched
        assert paper_platform.link_for("gpu0").bandwidth_gbs == 6.0

    def test_preserves_devices(self, paper_platform):
        fast = with_link_bandwidth(paper_platform, 48.0)
        assert fast.host.spec == paper_platform.host.spec
        assert fast.gpu.spec == paper_platform.gpu.spec

    def test_rejects_nonpositive(self, paper_platform):
        with pytest.raises(ExperimentError):
            with_link_bandwidth(paper_platform, 0.0)


class TestCrossoverPoint:
    def test_winner_at(self):
        point = CrossoverPoint(
            parameter="x", values=(1.0, 2.0), a="A", b="B",
            ratios=(0.5, 2.0), crossover=2.0,
        )
        assert point.winner_at(1.0) == "A"
        assert point.winner_at(2.0) == "B"

    def test_format(self):
        point = CrossoverPoint(
            parameter="x", values=(1.0, 2.0), a="A", b="B",
            ratios=(0.5, 2.0), crossover=2.0,
        )
        text = format_crossover(point)
        assert "crossover" in text and "x=2" in text

    def test_format_no_crossover(self):
        point = CrossoverPoint(
            parameter="x", values=(1.0,), a="A", b="B",
            ratios=(0.5,), crossover=None,
        )
        assert "never wins" in format_crossover(point)


class TestSweeps:
    def test_stream_sweep_scaled(self, paper_platform):
        point = stream_iteration_crossover(
            paper_platform, iterations=(1, 8), n=1 << 20
        )
        assert len(point.ratios) == 2
        assert point.ratios[1] > point.ratios[0]  # iterations favour the GPU

    def test_hotspot_sweep_scaled(self, paper_platform):
        point = hotspot_bandwidth_crossover(
            paper_platform, bandwidths_gbs=(6.0, 96.0), n=1024, iterations=2,
        )
        assert point.ratios[1] > point.ratios[0]  # bandwidth favours the GPU
