"""Table formatting."""

from repro.apps import get_application
from repro.bench.harness import run_scenario, sk_strategies
from repro.bench.tables import format_ratio_table, format_time_table


def scenario(paper_platform):
    return run_scenario(
        get_application("MatrixMul"), paper_platform, sk_strategies(), n=512
    )


class TestTimeTable:
    def test_contains_all_strategies_and_scenario(self, paper_platform):
        text = format_time_table([scenario(paper_platform)], title="Fig X")
        assert "Fig X" in text
        for name in sk_strategies():
            assert name in text
        assert "MatrixMul" in text

    def test_missing_strategy_shown_as_dash(self, paper_platform):
        s1 = scenario(paper_platform)
        s2 = run_scenario(
            get_application("BlackScholes"), paper_platform, ("Only-CPU",),
            n=65536,
        )
        text = format_time_table([s1, s2])
        assert "-" in text


class TestRatioTable:
    def test_aggregate_ratios(self, paper_platform):
        text = format_ratio_table([scenario(paper_platform)])
        assert "GPU" in text and "CPU" in text
        assert "%" in text

    def test_per_kernel_ratios(self, paper_platform):
        s = run_scenario(
            get_application("STREAM-Seq"), paper_platform,
            ("SP-Varied",), n=65536, sync=True,
        )
        text = format_ratio_table([s], per_kernel=True)
        for kernel in ("copy", "scale", "add", "triad"):
            assert kernel in text
