"""Scenario harness."""

import pytest

from repro.apps import get_application
from repro.bench.harness import mk_strategies, run_scenario, sk_strategies


class TestRunScenario:
    def test_all_strategies_present(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=512,
        )
        assert [o.strategy for o in scenario.outcomes] == list(sk_strategies())

    def test_label_encodes_sync(self, paper_platform):
        scenario = run_scenario(
            get_application("STREAM-Seq"), paper_platform,
            ("Only-CPU",), n=65536, sync=True,
        )
        assert scenario.label == "STREAM-Seq-w"

    def test_makespan_lookup(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform,
            ("Only-CPU", "Only-GPU"), n=512,
        )
        assert scenario.makespan_ms("Only-CPU") > 0
        with pytest.raises(KeyError):
            scenario.makespan_ms("SP-Single")

    def test_best_strategy_excludes_baselines(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=2048,
        )
        assert not scenario.best_strategy().startswith("Only-")

    def test_ordered_fastest_first(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=2048,
        )
        order = scenario.ordered()
        times = [scenario.makespan_ms(s) for s in order]
        assert times == sorted(times)

    def test_strategy_sets(self):
        assert "SP-Single" in sk_strategies()
        assert "SP-Unified" in mk_strategies() and "SP-Varied" in mk_strategies()
