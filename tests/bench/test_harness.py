"""Scenario harness."""

import pytest

from repro.apps import get_application
from repro.bench import harness
from repro.bench.harness import (
    SweepCell,
    default_jobs,
    mk_strategies,
    run_scenario,
    run_sweep,
    sk_strategies,
)


class TestRunScenario:
    def test_all_strategies_present(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=512,
        )
        assert [o.strategy for o in scenario.outcomes] == list(sk_strategies())

    def test_label_encodes_sync(self, paper_platform):
        scenario = run_scenario(
            get_application("STREAM-Seq"), paper_platform,
            ("Only-CPU",), n=65536, sync=True,
        )
        assert scenario.label == "STREAM-Seq-w"

    def test_makespan_lookup(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform,
            ("Only-CPU", "Only-GPU"), n=512,
        )
        assert scenario.makespan_ms("Only-CPU") > 0
        with pytest.raises(KeyError):
            scenario.makespan_ms("SP-Single")

    def test_best_strategy_excludes_baselines(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=2048,
        )
        assert not scenario.best_strategy().startswith("Only-")

    def test_ordered_fastest_first(self, paper_platform):
        scenario = run_scenario(
            get_application("MatrixMul"), paper_platform, sk_strategies(),
            n=2048,
        )
        order = scenario.ordered()
        times = [scenario.makespan_ms(s) for s in order]
        assert times == sorted(times)

    def test_strategy_sets(self):
        assert "SP-Single" in sk_strategies()
        assert "SP-Unified" in mk_strategies() and "SP-Varied" in mk_strategies()


class TestRunSweep:
    def _cells(self, platform):
        return [
            SweepCell(
                app="STREAM-Loop", strategy=strategy, platform=platform,
                n=4096, iterations=2, sync=False,
            )
            for strategy in ("Only-CPU", "Only-GPU", "DP-Perf")
        ]

    def test_results_in_cell_order(self, paper_platform):
        cells = self._cells(paper_platform)
        results = run_sweep(cells)
        assert len(results) == len(cells)
        # Only-CPU runs everything on the host, Only-GPU on the accelerator
        assert results[0].gpu_fraction == 0.0
        assert results[1].gpu_fraction == 1.0

    def test_parallel_matches_serial(self, paper_platform):
        cells = self._cells(paper_platform)
        serial = run_sweep(cells, jobs=1)
        parallel = run_sweep(cells, jobs=2)
        assert [r.makespan_ms for r in serial] == [
            r.makespan_ms for r in parallel
        ]
        for a, b in zip(serial, parallel):
            assert a.summary == b.summary
            assert a.elements_by_device == b.elements_by_device
            assert a.transfer_bytes == b.transfer_bytes

    def test_parallel_matches_serial_full_detail(self, paper_platform):
        cells = self._cells(paper_platform)
        serial = run_sweep(cells, jobs=1, detail="full")
        parallel = run_sweep(cells, jobs=2, detail="full")
        for a, b in zip(serial, parallel):
            assert list(a.trace) == list(b.trace)

    def test_summary_detail_drops_traces(self, paper_platform):
        results = run_sweep(self._cells(paper_platform))
        assert all(r.detail == "summary" and r.trace is None for r in results)
        # every reported number still answers from the summary
        assert all(r.makespan_ms > 0 for r in results)
        assert all(r.decision is not None for r in results)

    def test_scenario_matches_sweep(self, paper_platform):
        scenario = run_scenario(
            get_application("STREAM-Loop"), paper_platform,
            ("Only-CPU", "Only-GPU", "DP-Perf"),
            n=4096, iterations=2, sync=False,
        )
        results = run_sweep(self._cells(paper_platform))
        assert [o.makespan_ms for o in scenario.outcomes] == [
            r.makespan_ms for r in results
        ]

    def test_empty_sweep(self, paper_platform):
        assert run_sweep([]) == []
        assert run_sweep([], jobs=4) == []


class TestDefaultJobs:
    def test_respects_affinity_mask(self, monkeypatch):
        """A cgroup/taskset-restricted process must not oversubscribe."""
        monkeypatch.setattr(harness.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        monkeypatch.setattr(harness.os, "cpu_count", lambda: 64)
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(harness.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(harness.os, "cpu_count", lambda: 6)
        assert default_jobs() == 6

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(harness.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(harness.os, "cpu_count", lambda: None)
        assert default_jobs() == 1
