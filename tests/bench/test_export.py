"""Result export (CSV/JSON)."""

import json

import pytest

from repro.apps import get_application
from repro.bench.export import (
    scenario_rows,
    speedup_rows,
    to_csv,
    to_json,
    write_records,
)
from repro.bench.harness import run_scenario
from repro.bench.speedup import SpeedupRow


@pytest.fixture
def scenario(paper_platform):
    return run_scenario(
        get_application("MatrixMul"), paper_platform,
        ("Only-CPU", "SP-Single"), n=512,
    )


class TestScenarioRows:
    def test_one_record_per_strategy(self, scenario):
        rows = scenario_rows([scenario])
        assert [r["strategy"] for r in rows] == ["Only-CPU", "SP-Single"]

    def test_fields_present(self, scenario):
        row = scenario_rows([scenario])[0]
        for key in ("scenario", "makespan_ms", "gpu_fraction",
                    "h2d_bytes", "instances"):
            assert key in row

    def test_fractions_consistent(self, scenario):
        for row in scenario_rows([scenario]):
            assert row["gpu_fraction"] + row["cpu_fraction"] == \
                pytest.approx(1.0, abs=1e-3)


class TestSpeedupRows:
    def test_flattening(self):
        rows = speedup_rows([
            SpeedupRow("X", "SP-Single", 10.0, 20.0, 50.0)
        ])
        assert rows[0]["speedup_vs_only_gpu"] == pytest.approx(2.0)
        assert rows[0]["speedup_vs_only_cpu"] == pytest.approx(5.0)


class TestWriters:
    def test_csv_roundtrip(self, scenario):
        text = to_csv(scenario_rows([scenario]))
        lines = text.strip().splitlines()
        assert lines[0].startswith("scenario,")
        assert len(lines) == 3

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_roundtrip(self, scenario):
        records = scenario_rows([scenario])
        assert json.loads(to_json(records)) == records

    def test_write_by_suffix(self, scenario, tmp_path):
        records = scenario_rows([scenario])
        csv_path = write_records(records, tmp_path / "out.csv")
        json_path = write_records(records, tmp_path / "out.json")
        assert csv_path.read_text().startswith("scenario,")
        assert json.loads(json_path.read_text())

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_records([{"a": 1}], tmp_path / "out.xlsx")
