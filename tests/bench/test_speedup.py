"""Figure 12 machinery."""

import pytest

from repro.bench.speedup import (
    FIG12_CONFIGS,
    SpeedupRow,
    average_speedups,
    figure12,
    format_figure12,
)

SCALE = 1 / 64


class TestSpeedupRow:
    def test_ratios(self):
        row = SpeedupRow(
            scenario="X", best_strategy="SP-Single",
            best_ms=10.0, only_gpu_ms=30.0, only_cpu_ms=50.0,
        )
        assert row.vs_only_gpu == pytest.approx(3.0)
        assert row.vs_only_cpu == pytest.approx(5.0)


class TestFigure12:
    def test_eight_configurations(self):
        assert len(FIG12_CONFIGS) == 8

    def test_rows_scaled_run(self, paper_platform):
        rows = figure12(paper_platform, scale=SCALE, iterations=2)
        assert len(rows) == 8
        for row in rows:
            assert row.best_ms > 0
            assert row.vs_only_cpu > 0

    def test_average_speedups(self):
        rows = [
            SpeedupRow("a", "s", 1.0, 2.0, 4.0),
            SpeedupRow("b", "s", 1.0, 4.0, 6.0),
        ]
        avg_og, avg_oc = average_speedups(rows)
        assert avg_og == pytest.approx(3.0)
        assert avg_oc == pytest.approx(5.0)

    def test_format_contains_average(self):
        rows = [SpeedupRow("a", "s", 1.0, 2.0, 4.0)]
        text = format_figure12(rows)
        assert "average" in text
        assert "2.00x" in text
