"""Unit constants and conversions."""

import pytest

from repro import units


class TestConversions:
    def test_time(self):
        assert units.ms_to_s(1500.0) == 1.5
        assert units.s_to_ms(1.5) == 1500.0
        assert units.s_to_ms(units.ms_to_s(42.0)) == pytest.approx(42.0)

    def test_data(self):
        assert units.gb_to_bytes(1.5) == 1.5e9
        assert units.bytes_to_gb(3e9) == 3.0
        assert units.gbs_to_bytes_per_s(6.0) == 6e9

    def test_flops(self):
        assert units.gflops_to_flops(384.0) == 384e9

    def test_binary_vs_decimal(self):
        assert units.GIB == 2**30
        assert units.GIGA == 1e9
        assert units.GIB != units.GIGA


class TestRoundUp:
    def test_exact_multiple_unchanged(self):
        assert units.round_up(64, 32) == 64

    def test_rounds_upward(self):
        assert units.round_up(65, 32) == 96
        assert units.round_up(1, 32) == 32

    def test_zero_and_negative(self):
        assert units.round_up(0, 32) == 0
        assert units.round_up(-5, 32) == 0

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            units.round_up(10, 0)


class TestConstants:
    def test_warp_size(self):
        assert units.WARP_SIZE == 32

    def test_float_sizes(self):
        assert units.FLOAT32_BYTES == 4
        assert units.FLOAT64_BYTES == 8


class TestErrorTaxonomy:
    def test_all_derive_from_repro_error(self):
        from repro import errors

        exception_types = [
            obj for name, obj in vars(errors).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(exception_types) >= 10
        for exc in exception_types:
            assert issubclass(exc, errors.ReproError)

    def test_strategy_inapplicable_is_partitioning_error(self):
        from repro.errors import PartitioningError, StrategyInapplicableError

        assert issubclass(StrategyInapplicableError, PartitioningError)

    def test_platform_error_is_configuration_error(self):
        from repro.errors import ConfigurationError, PlatformError

        assert issubclass(PlatformError, ConfigurationError)
