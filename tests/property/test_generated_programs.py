"""Differential testing over randomly generated programs.

For hundreds of random program shapes — kernel counts, loops, halos, FULL
reads, INOUT updates, sync markers — the runtime must uphold its contracts:
acyclic dependences, chunking-invariant numerics, work conservation, and
stable classification.
"""

import numpy as np
import pytest

from repro.core.classifier import classify_program
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.functional import (
    assert_equivalent,
    run_chunked,
    run_sequential,
)
from repro.runtime.generate import GeneratorConfig, random_arrays, random_program
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler

from tests.conftest import tiny_platform

PLATFORM = tiny_platform.__wrapped__()
EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)

SEEDS = list(range(40))


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_program_contracts(seed):
    rng = np.random.default_rng(seed)
    program = random_program(rng, GeneratorConfig(n=128))
    chunks = int(rng.integers(1, 9))

    # 1. dependences are acyclic and the graph is orderable
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
        ],
    )
    build_dependences(graph)
    graph.validate_acyclic()

    # 2. chunked numerics equal sequential numerics
    arrays = random_arrays(program, rng)
    sequential = run_sequential(program, arrays)
    chunked = run_chunked(program, arrays, n_chunks=chunks)
    assert_equivalent(sequential, chunked, rtol=1e-9, atol=1e-9)

    # 3. the simulated executor conserves work and terminates
    scheduler = (
        BreadthFirstScheduler() if seed % 2 else PerfAwareScheduler()
    )
    result = RuntimeEngine(PLATFORM, config=EXACT).execute(graph, scheduler)
    per_invocation = {}
    for rec in result.trace.by_category("compute"):
        inv = rec.meta["invocation"]
        per_invocation[inv] = per_invocation.get(inv, 0) + rec.meta["size"]
    for inv in program.invocations:
        assert per_invocation[inv.invocation_id] == inv.n

    # 4. classification is deterministic
    assert classify_program(program) is classify_program(program)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_generated_program_two_chunkings_agree(seed):
    """Any two chunkings agree with each other, not just with sequential."""
    rng = np.random.default_rng(1000 + seed)
    program = random_program(rng, GeneratorConfig(n=96))
    arrays = random_arrays(program, rng)
    a = run_chunked(program, arrays, n_chunks=3)
    b = run_chunked(program, arrays, n_chunks=8)
    assert_equivalent(a, b, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_generated_program_strategies_run(seed):
    """Every applicable registered strategy executes generated programs."""
    from repro.core.analyzer import analyze_program
    from repro.partition import get_strategy

    rng = np.random.default_rng(2000 + seed)
    program = random_program(rng, GeneratorConfig(n=256))
    report = analyze_program(program)
    for name in report.ranked_strategies:
        result = get_strategy(name).run(program, PLATFORM)
        assert result.makespan_s > 0
        total = sum(result.elements_by_device.values())
        assert total == program.total_indices()


@pytest.mark.parametrize("seed", SEEDS[:15])
def test_generated_plans_validate(seed):
    """Every strategy's plan passes structural validation on any program."""
    from repro.core.analyzer import analyze_program
    from repro.partition import get_strategy, validate_plan

    rng = np.random.default_rng(3000 + seed)
    program = random_program(rng, GeneratorConfig(n=512))
    report = analyze_program(program)
    for name in (*report.ranked_strategies, "Only-CPU", "Only-GPU"):
        plan = get_strategy(name).plan(program, PLATFORM)
        check = validate_plan(plan, PLATFORM)
        assert check.ok, (name, check.problems)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_generated_makespan_respects_critical_path(seed):
    """No schedule beats the dependence lower bound."""
    from repro.runtime.critical_path import bound_report

    rng = np.random.default_rng(4000 + seed)
    program = random_program(rng, GeneratorConfig(n=512))
    chunks = int(rng.integers(1, 9))
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
        ],
    )
    build_dependences(graph)
    result = RuntimeEngine(PLATFORM, config=EXACT).execute(
        graph, PerfAwareScheduler()
    )
    report = bound_report(graph, PLATFORM, result.makespan_s)
    assert report.makespan_s >= report.lower_bound_s * 0.999
    assert report.efficiency <= 1.001
