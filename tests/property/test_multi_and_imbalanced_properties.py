"""Hypothesis properties of the multi-device and imbalanced solvers."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.partition.glinda import TransferModel
from repro.partition.glinda_multi import DeviceTerm, predict_multi, solve_overlap
from repro.partition.imbalanced import imbalanced_split, weighted_ranges
from repro.platform.interconnect import Link
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec

LINK = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)

throughput = st.floats(1e3, 1e12, allow_nan=False, allow_infinity=False)
device_terms = st.lists(
    st.tuples(
        throughput,
        st.floats(0.0, 1e-6),   # per-index transfer seconds
        st.floats(0.0, 1e-2),   # fixed transfer seconds
    ),
    min_size=1,
    max_size=5,
).map(
    lambda rows: [
        DeviceTerm(
            device_id=f"d{i}", throughput=t,
            per_index_transfer_s=tx, fixed_transfer_s=fx,
            granularity=1,
        )
        for i, (t, tx, fx) in enumerate(rows)
    ]
)


class TestSolveOverlapProperties:
    @settings(max_examples=200)
    @given(device_terms, st.integers(100, 10_000_000))
    def test_shares_sum_to_n(self, terms, n):
        _, shares = solve_overlap(terms, n)
        # wide throughput ranges (1e3..1e12) limit attainable precision
        assert sum(shares.values()) == pytest.approx(n, rel=1e-6)

    @settings(max_examples=200)
    @given(device_terms, st.integers(100, 10_000_000))
    def test_all_devices_finish_at_t_star(self, terms, n):
        t_star, shares = solve_overlap(terms, n)
        for t in terms:
            finish = shares[t.device_id] * t.index_cost_s + t.fixed_transfer_s
            assert finish == pytest.approx(t_star, rel=1e-5, abs=1e-9)

    @settings(max_examples=200)
    @given(device_terms, st.integers(100, 10_000_000))
    def test_predict_partitions_exactly(self, terms, n):
        decision = predict_multi(terms, n)
        assert sum(decision.shares.values()) == n
        assert all(s >= 0 for s in decision.shares.values())

    @settings(max_examples=100)
    @given(device_terms, st.integers(1000, 1_000_000))
    def test_faster_device_never_gets_less(self, terms, n):
        assume(len(terms) >= 2)
        # strip fixed costs so ordering is purely by index cost
        terms = [
            DeviceTerm(device_id=t.device_id, throughput=t.throughput,
                       per_index_transfer_s=t.per_index_transfer_s)
            for t in terms
        ]
        _, shares = solve_overlap(terms, n)
        by_cost = sorted(terms, key=lambda t: t.index_cost_s)
        for a, b in zip(by_cost, by_cost[1:]):
            assert shares[a.device_id] >= shares[b.device_id] - 1e-6


weights = st.lists(st.floats(0.0, 100.0), min_size=8, max_size=200)


def kernel_with(ws) -> Kernel:
    prefix = np.concatenate([[0.0], np.cumsum(np.asarray(ws))])
    x = ArraySpec("x", len(ws), 4)
    y = ArraySpec("y", len(ws), 4)
    return Kernel(
        "wk", KernelCostModel(flops_per_elem=2.0),
        (AccessSpec(x, AccessMode.IN), AccessSpec(y, AccessMode.OUT)),
        work_prefix=prefix,
    )


class TestImbalancedProperties:
    @settings(max_examples=150)
    @given(weights, st.integers(1, 12))
    def test_weighted_ranges_partition_exactly(self, ws, k):
        kernel = kernel_with(ws)
        ranges = weighted_ranges(kernel, 0, len(ws), k)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(ws)
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c
        assert all(hi > lo for lo, hi in ranges)

    @settings(max_examples=150)
    @given(weights, throughput, throughput)
    def test_split_boundary_in_range_and_near_balanced(self, ws, tg, tc):
        assume(sum(ws) > 0)
        kernel = kernel_with(ws)
        n = len(ws)
        d = imbalanced_split(
            kernel, n, theta_gpu=tg, theta_cpu=tc, link=LINK,
            transfer=TransferModel(), warp_size=1,
        )
        assert 0 <= d.boundary <= n
        assert d.gpu_work + d.cpu_work == pytest.approx(kernel.total_work)
        # no single-index move can improve the balance by more than the
        # heaviest index's own weight
        t_g = d.gpu_work / tg
        t_c = d.cpu_work / tc
        heaviest = max(ws)
        assert abs(t_g - t_c) <= heaviest / min(tg, tc) + 1e-12

    @settings(max_examples=100)
    @given(weights)
    def test_equal_devices_split_work_in_half(self, ws):
        assume(sum(ws) > 0 and max(ws) < 0.2 * sum(ws))
        kernel = kernel_with(ws)
        d = imbalanced_split(
            kernel, len(ws), theta_gpu=1e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(), warp_size=1,
        )
        assert d.gpu_fraction == pytest.approx(0.5, abs=0.25)
