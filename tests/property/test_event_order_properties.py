"""Property tests: event ordering is total and engine-independent.

Both engines promise the same contract — events fire in strictly
increasing ``(time, priority, seq)`` order, and a randomized schedule
(ties, cancellations, mid-run spawns included) produces the *identical*
firing sequence on the oracle ``Simulator`` and the ``FastSimulator``.
This is the semantic half of the differential suite: if interleaving
ever diverged, artifacts could no longer be byte-identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.fast_engine import FastSimulator

#: a small time grid so ties are common, not a measure-zero accident
TIMES = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.0, 2.5, 5.0, 7.75])
PRIORITIES = st.sampled_from([0, 5, 10])


@st.composite
def schedules(draw):
    """A script of root events: ``(time, priority, cancel_target, spawn)``.

    ``cancel_target`` (an index into the root handles, or None) makes the
    event cancel another handle when it fires — possibly one that already
    fired, possibly itself, possibly a later one.  ``spawn`` makes it
    schedule a child event relative to ``now``.
    """
    n = draw(st.integers(min_value=1, max_value=24))
    rows = st.tuples(
        TIMES,
        PRIORITIES,
        st.none() | st.integers(min_value=0, max_value=n - 1),
        st.tuples(st.sampled_from([0.0, 0.5, 1.0]), PRIORITIES) | st.none(),
    )
    return draw(st.lists(rows, min_size=n, max_size=n))


def run_script(engine, script):
    """Drive ``script`` on ``engine``; return the firing log and keys.

    The log records which event fired in order; ``keys`` records each
    fired event's ``(time, priority, seq)`` in firing order.
    """
    sim = engine()
    log = []
    keys = []
    handles = []

    def root_cb(i, cancel_target, spawn):
        def fire():
            log.append(("root", i, sim.now))
            keys.append((handles[i].time, handles[i].priority, handles[i].seq))
            if cancel_target is not None:
                handles[cancel_target].cancel()
            if spawn is not None:
                delay, prio = spawn

                def child():
                    log.append(("child", i, sim.now))
                    keys.append((handle.time, handle.priority, handle.seq))

                handle = sim.after(delay, child, priority=prio)
        return fire

    for i, (time, prio, cancel_target, spawn) in enumerate(script):
        handles.append(sim.at(time, root_cb(i, cancel_target, spawn),
                              priority=prio))
    final = sim.run()
    assert sim.pending == 0
    return log, keys, final


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_engines_fire_identical_sequences(script):
    oracle = run_script(Simulator, script)
    fast = run_script(FastSimulator, script)
    assert fast == oracle


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_static_firing_order_is_exactly_sorted_keys(script):
    # spawns stripped: for a schedule fixed before run(), the heap must
    # yield events in exactly sorted (time, priority, seq) order
    script = [(t, p, cancel, None) for t, p, cancel, _spawn in script]
    for engine in (Simulator, FastSimulator):
        _, keys, final = run_script(engine, script)
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)
        if keys:
            assert final == max(k[0] for k in keys)


@settings(max_examples=120, deadline=None)
@given(schedules())
def test_dynamic_keys_unique_and_time_monotonic(script):
    # with mid-run spawns a later-scheduled event may carry a smaller
    # (time, priority) than its spawner, but keys stay unique and the
    # clock never moves backwards
    for engine in (Simulator, FastSimulator):
        log, keys, _final = run_script(engine, script)
        assert len(set(keys)) == len(keys)
        times = [t for _kind, _i, t in log]
        assert times == sorted(times)


@settings(max_examples=60, deadline=None)
@given(schedules(), st.sampled_from([0.0, 1.0, 2.0, 2.5, 6.0]))
def test_until_horizon_splits_runs_identically(script, horizon):
    """Pausing at a horizon and resuming matches a single drain."""

    def split(engine):
        sim = engine()
        log = []
        for i, (time, prio, _cancel, _spawn) in enumerate(script):
            sim.at(time, lambda i=i: log.append((i, sim.now)), priority=prio)
        sim.run(until=horizon)
        assert sim.now == horizon
        sim.run()
        return log, sim.now

    assert split(Simulator) == split(FastSimulator)
