"""Property-based differential tests of the trace analytics paths.

Hypothesis generates arbitrary row mixes — duplicated timestamps,
zero-length intervals, rows with and without hot metadata, device tags
aliasing resource ids — and every aggregate the store answers must be
bit-identical (``==``, never approx) across three routes:

* the array-backed column scan (the pure-Python fallback),
* the forced numpy :class:`~repro.sim._vec.VecView`,
* a naive re-scan of the materialized :class:`TraceRecord` rows (the
  pre-columnar oracle).
"""

import pytest

pytest.importorskip("numpy")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import _vec
from repro.sim.analysis import analyze_trace, compute_overlap_fraction
from repro.sim.trace import ExecutionTrace

RESOURCES = ("cpu:0", "gpu:0", "link:h2d", "dev")
CATEGORIES = ("compute", "transfer", "overhead")


def _row(draw):
    category = draw(st.sampled_from(CATEGORIES))
    start = draw(st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False))
    # durations include exactly 0 so intervals can tie and touch
    duration = draw(st.one_of(st.just(0.0), st.floats(0.0, 10.0)))
    meta = {}
    if category == "compute" and draw(st.booleans()):
        meta = {
            "size": draw(st.integers(0, 1 << 40)),
            "device_kind": draw(st.sampled_from(("cpu", "gpu"))),
            "kernel": draw(st.sampled_from(("copy", "triad"))),
        }
        if draw(st.booleans()):
            # device tags deliberately collide with bare resource ids
            meta["device"] = draw(st.sampled_from(("dev", "cpu:0", "gpuX")))
    elif category == "transfer" and draw(st.booleans()):
        meta = {"direction": draw(st.sampled_from(("h2d", "d2h")))}
    return (
        draw(st.sampled_from(RESOURCES)), category, start, start + duration, meta
    )


@st.composite
def traces(draw):
    trace = ExecutionTrace()
    for i in range(draw(st.integers(0, 60))):
        rid, cat, start, end, meta = _row(draw)
        trace.record(rid, f"t{i}", cat, start, end, meta)
    return trace


def record_scan_aggregates(records):
    """The pre-columnar oracle: one pass per aggregate over the records."""
    busy = {}
    by_resource = {}
    transfer = {"h2d": 0.0, "d2h": 0.0}
    elements = {}
    ratio = {}
    for r in records:
        busy[r.resource_id] = busy.get(r.resource_id, 0.0) + r.duration
        per = by_resource.setdefault(r.resource_id, {})
        per[r.category] = per.get(r.category, 0.0) + r.duration
        if r.category == "transfer":
            direction = r.meta.get("direction")
            if direction in transfer:
                transfer[direction] += r.duration
        if r.category == "compute":
            kind, size = r.meta.get("device_kind"), r.meta.get("size")
            kernel = r.meta.get("kernel")
            if kind is not None and size is not None:
                elements[str(kind)] = elements.get(str(kind), 0) + int(size)
                if kernel is not None:
                    per_k = ratio.setdefault(str(kernel), {})
                    per_k[str(kind)] = per_k.get(str(kind), 0) + int(size)
    return {
        "busy": busy,
        "by_resource": by_resource,
        "transfer": transfer,
        "elements": elements,
        "ratio": ratio,
    }


@settings(max_examples=150, deadline=None)
@given(traces())
def test_python_path_matches_record_scan(trace):
    store = trace.store
    records = list(trace)
    oracle = record_scan_aggregates(records)
    import os

    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        assert {
            rid: store.busy_time(rid) for rid in store.resource_ids_seen()
        } == oracle["busy"]
        assert store.busy_by_resource() == oracle["by_resource"]
        assert store.transfer_time_by_direction() == oracle["transfer"]
        assert store.elements_by_device() == oracle["elements"]
        assert store.ratio_by_kernel() == oracle["ratio"]
    finally:
        del os.environ["REPRO_NO_NUMPY"]


@settings(max_examples=150, deadline=None)
@given(traces())
def test_vec_path_matches_python_path(trace):
    store = trace.store
    import os

    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        python = {
            "busy": {
                rid: store.busy_time(rid) for rid in store.resource_ids_seen()
            },
            "by_resource": store.busy_by_resource(),
            "transfer": store.transfer_time_by_direction(),
            "elements": store.elements_by_device(),
            "instances": store.instance_count_by_device(),
            "ratio": store.ratio_by_kernel(),
            "overlap": compute_overlap_fraction(store),
            "stats": analyze_trace(store),
        }
    finally:
        del os.environ["REPRO_NO_NUMPY"]

    vec = store.vec_view(force=True)
    assert vec is not None
    assert {
        rid: vec.busy_time(rid) for rid in store.resource_ids_seen()
    } == python["busy"]
    assert vec.busy_by_resource() == python["by_resource"]
    assert vec.transfer_time_by_direction() == python["transfer"]
    assert vec.elements_by_kind("compute") == python["elements"]
    assert vec.instance_count_by_kind() == python["instances"]
    assert vec.ratio_by_kernel("compute") == python["ratio"]

    # route analyze/overlap through the view regardless of store size
    old_min = _vec.VEC_MIN_ROWS
    _vec.VEC_MIN_ROWS = 0
    try:
        assert compute_overlap_fraction(store) == python["overlap"]
        assert analyze_trace(store) == python["stats"]
    finally:
        _vec.VEC_MIN_ROWS = old_min


@settings(max_examples=60, deadline=None)
@given(traces())
def test_makespan_and_pickle_stability(trace):
    import pickle

    store = trace.store
    records = list(trace)
    expected = max((r.end for r in records), default=0.0)
    assert store.makespan() == expected
    clone = pickle.loads(pickle.dumps(store))
    assert clone.makespan() == store.makespan()
    assert clone.busy_by_resource() == store.busy_by_resource()
