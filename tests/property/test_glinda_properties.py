"""Property-based tests of the Glinda partitioning model."""

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.partition.glinda import GlindaModel, HardwareConfig, TransferModel
from repro.platform.interconnect import Link

LINK = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)

throughputs = st.floats(1e3, 1e12, allow_nan=False, allow_infinity=False)
sizes = st.integers(64, 10_000_000)
per_index_bytes = st.floats(0.0, 1e4, allow_nan=False)

MODEL = GlindaModel(warp_size=32)


def predict(theta_g, theta_c, n, transfer=TransferModel()):
    return MODEL.predict(
        kernel="k", n=n, theta_gpu=theta_g, theta_cpu=theta_c,
        link=LINK, transfer=transfer,
    )


@given(throughputs, throughputs, sizes)
def test_split_is_exact_partition(theta_g, theta_c, n):
    d = predict(theta_g, theta_c, n)
    assert d.n_gpu + d.n_cpu == n
    assert 0 <= d.n_gpu <= n


@given(throughputs, throughputs, sizes)
def test_warp_rounding_when_partitioned(theta_g, theta_c, n):
    d = predict(theta_g, theta_c, n)
    if d.config is HardwareConfig.CPU_GPU:
        assert d.n_gpu % 32 == 0 or d.n_gpu == n


@given(throughputs, throughputs, sizes)
def test_gpu_share_monotone_in_gpu_throughput(theta_g, theta_c, n):
    d1 = predict(theta_g, theta_c, n)
    d2 = predict(theta_g * 2, theta_c, n)
    assert d2.gpu_fraction >= d1.gpu_fraction - 1e-9


@given(throughputs, throughputs, sizes, per_index_bytes)
def test_transfers_never_increase_gpu_share(theta_g, theta_c, n, p):
    base = predict(theta_g, theta_c, n)
    taxed = predict(theta_g, theta_c, n, TransferModel(gpu_share_b=p))
    assert taxed.gpu_fraction <= base.gpu_fraction + 1e-9


@given(throughputs, throughputs, sizes)
def test_predicted_time_at_optimum_not_above_single_device(
    theta_g, theta_c, n
):
    """The predicted split never loses to the better single device."""
    d = predict(theta_g, theta_c, n)
    t_cpu_only = n / theta_c
    t_gpu_only = n / theta_g
    best_single = min(t_cpu_only, t_gpu_only)
    # warp rounding may cost at most one warp's worth of imbalance
    slack = 1.05 * best_single + 64 / min(theta_g, theta_c)
    assert d.predicted_time_s <= slack


@given(throughputs, throughputs, sizes)
def test_decision_consistent_with_fraction(theta_g, theta_c, n):
    d = predict(theta_g, theta_c, n)
    if d.config is HardwareConfig.ONLY_GPU:
        assert d.n_cpu == 0
    elif d.config is HardwareConfig.ONLY_CPU:
        assert d.n_gpu == 0
    else:
        assert d.n_gpu > 0 and d.n_cpu > 0


@given(throughputs, sizes)
def test_equal_devices_near_half(theta, n):
    assume(n >= 1024)
    d = predict(theta, theta, n)
    assert d.gpu_fraction == pytest.approx(0.5, abs=0.1)
