"""Property-based tests of chunking and split helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.graph import chunk_ranges, split_sizes
from repro.units import round_up


@given(st.integers(1, 100_000), st.integers(1, 64))
def test_chunk_ranges_partition_exactly(n, k):
    ranges = chunk_ranges(n, k)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c
    assert sum(hi - lo for lo, hi in ranges) == n


@given(st.integers(1, 100_000), st.integers(1, 64))
def test_chunk_ranges_balanced(n, k):
    sizes = [hi - lo for lo, hi in chunk_ranges(n, k)]
    assert max(sizes) - min(sizes) <= 1
    assert all(s >= 1 for s in sizes)


@given(st.integers(1, 10_000), st.lists(st.integers(0, 500), min_size=1,
                                        max_size=10))
def test_split_sizes_partition(n, sizes):
    total = sum(sizes)
    if total == 0:
        sizes = [n]
    else:
        # rescale the last entry so the sizes sum to n
        sizes = list(sizes)
        diff = n - total
        if diff >= -sizes[-1]:
            sizes[-1] += diff
        else:
            sizes = [n]
    ranges = split_sizes(n, sizes)
    assert sum(hi - lo for lo, hi in ranges) == n
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c


@given(st.integers(0, 1_000_000), st.integers(1, 4096))
def test_round_up_properties(value, multiple):
    result = round_up(value, multiple)
    assert result % multiple == 0
    assert result >= max(value, 0)
    assert result - max(value, 0) < multiple
