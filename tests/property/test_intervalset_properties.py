"""Property-based tests of the IntervalSet (the coherence directory core)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.regions import IntervalSet

interval = st.tuples(
    st.integers(0, 200), st.integers(0, 200)
).map(lambda t: (min(t), max(t)))
intervals = st.lists(interval, max_size=12)


def as_set(ivals) -> set[int]:
    out: set[int] = set()
    for lo, hi in ivals:
        out.update(range(lo, hi))
    return out


@given(intervals)
def test_add_matches_set_union(ivals):
    s = IntervalSet()
    model: set[int] = set()
    for lo, hi in ivals:
        s.add(lo, hi)
        model |= set(range(lo, hi))
    assert as_set(s.intervals) == model
    assert s.total == len(model)


@given(intervals, interval)
def test_remove_matches_set_difference(ivals, removal):
    s = IntervalSet(ivals)
    model = as_set(s.intervals)
    lo, hi = removal
    s.remove(lo, hi)
    assert as_set(s.intervals) == model - set(range(lo, hi))


@given(intervals)
def test_normal_form_sorted_disjoint_nonadjacent(ivals):
    s = IntervalSet(ivals)
    result = s.intervals
    for lo, hi in result:
        assert lo < hi
    for (a, b), (c, d) in zip(result, result[1:]):
        assert b < c  # disjoint AND non-adjacent


@given(intervals, interval)
def test_missing_partitions_query(ivals, query):
    s = IntervalSet(ivals)
    lo, hi = query
    covered = as_set(s.intersect(lo, hi).intervals)
    missing = as_set(s.missing(lo, hi).intervals)
    assert covered | missing == set(range(lo, hi))
    assert covered & missing == set()


@given(intervals, interval)
def test_contains_consistent_with_missing(ivals, query):
    s = IntervalSet(ivals)
    lo, hi = query
    assert s.contains(lo, hi) == (not s.missing(lo, hi))


@given(intervals)
def test_add_idempotent(ivals):
    s = IntervalSet(ivals)
    before = s.intervals
    for lo, hi in ivals:
        s.add(lo, hi)
    assert s.intervals == before


@given(intervals, interval)
def test_remove_then_add_restores_superset(ivals, hole):
    s = IntervalSet(ivals)
    before = as_set(s.intervals)
    lo, hi = hole
    s.remove(lo, hi)
    s.add(lo, hi)
    after = as_set(s.intervals)
    assert before <= after
