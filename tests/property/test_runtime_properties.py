"""Property-based tests of dependence analysis and the executor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.functional import topological_order
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler

from tests.conftest import chain_program, single_kernel_program, tiny_platform

EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def make_platform():
    # call the fixture function body directly (hypothesis can't use fixtures)
    return tiny_platform.__wrapped__()


PLATFORM = make_platform()


def build(program, chunks):
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
        ],
    )
    build_dependences(graph)
    graph.validate_acyclic()
    return graph


program_params = st.tuples(
    st.integers(1, 4),      # kernels in the chain
    st.integers(100, 5000),  # problem size
    st.integers(1, 9),      # chunks
    st.booleans(),          # sync
)


@settings(max_examples=30, deadline=None)
@given(program_params)
def test_dependences_always_acyclic_and_orderable(params):
    kernels, n, chunks, sync = params
    graph = build(chain_program(kernels, n=n, sync=sync), chunks)
    order = topological_order(graph)
    position = {iid: k for k, iid in enumerate(order)}
    for inst in graph.instances:
        for dep in inst.deps:
            assert position[dep] < position[inst.instance_id]


@settings(max_examples=20, deadline=None)
@given(program_params, st.sampled_from(["bf", "perf"]))
def test_every_instance_executes_exactly_once(params, policy):
    kernels, n, chunks, sync = params
    graph = build(chain_program(kernels, n=n, sync=sync), chunks)
    scheduler = (
        BreadthFirstScheduler() if policy == "bf" else PerfAwareScheduler()
    )
    result = RuntimeEngine(PLATFORM, config=EXACT).execute(graph, scheduler)
    computes = result.trace.by_category("compute")
    expected = sum(
        1 for i in graph.instances if not i.is_barrier
    )
    assert len(computes) == expected
    # every chunk of every kernel appears once
    labels = sorted(r.label for r in computes)
    assert len(labels) == len(set(labels))


@settings(max_examples=20, deadline=None)
@given(program_params)
def test_makespan_at_least_critical_path_compute(params):
    """The simulated makespan can never beat the dependence-chain bound."""
    kernels, n, chunks, sync = params
    program = chain_program(kernels, n=n)
    graph = build(program, chunks)
    result = RuntimeEngine(PLATFORM, config=EXACT).execute(
        graph, PerfAwareScheduler()
    )
    # lower bound: every kernel's fastest possible chunk on the fastest
    # device, chained (kernels depend on each other chunk-wise)
    gpu = PLATFORM.gpu
    chunk = max(1, n // chunks)
    bound = sum(
        inv.kernel.chunk_time(gpu, chunk, inv.n, include_launch=False)
        for inv in program.invocations
    )
    assert result.makespan_s >= bound * 0.999


@settings(max_examples=20, deadline=None)
@given(st.integers(100, 5000), st.integers(1, 13))
def test_work_conservation(n, chunks):
    """All kernel indices execute, none twice (by element accounting)."""
    graph = build(single_kernel_program(n=n), chunks)
    result = RuntimeEngine(PLATFORM, config=EXACT).execute(
        graph, BreadthFirstScheduler()
    )
    assert sum(result.elements_by_device.values()) == n


@settings(max_examples=15, deadline=None)
@given(program_params)
def test_simulation_deterministic(params):
    kernels, n, chunks, sync = params
    program = chain_program(kernels, n=n, sync=sync)
    results = []
    for _ in range(2):
        graph = build(program, chunks)
        r = RuntimeEngine(PLATFORM, config=EXACT).execute(
            graph, PerfAwareScheduler()
        )
        results.append(r.makespan_s)
    assert results[0] == results[1]
