"""Properties of ranking providers and the strategy registry."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.classes import AppClass
from repro.core.ranking import TABLE, ranking, suitable_strategies
from repro.partition.base import (
    get_strategy,
    list_strategies,
    strategies_for_class,
    strategy_info,
)
from repro.partition.hyb_static import split_static_tail

app_classes = st.sampled_from(list(AppClass))


@given(app_classes, st.booleans())
def test_table_ranking_is_registered_and_duplicate_free(app_class, sync):
    ranked = ranking(app_class, needs_sync=sync)
    assert set(ranked) <= set(list_strategies())
    assert len(ranked) == len(set(ranked))


@given(app_classes, st.booleans())
def test_table_ranking_respects_proposition_one(app_class, sync):
    """DP-Perf precedes DP-Dep in every Table I row."""
    ranked = ranking(app_class, needs_sync=sync)
    assert ranked.index("DP-Perf") < ranked.index("DP-Dep")


@given(app_classes, st.booleans())
def test_suitable_strategies_cover_both_sync_cases(app_class, sync):
    assert set(ranking(app_class, needs_sync=sync)) <= set(
        suitable_strategies(app_class)
    )


@given(app_classes, st.booleans())
def test_table_rows_only_rank_applicable_strategies(app_class, sync):
    for name in TABLE.ranking(app_class, needs_sync=sync):
        assert strategy_info(name).applicable(app_class)


@given(app_classes)
def test_registry_applicability_agrees_with_class_listing(app_class):
    listed = strategies_for_class(app_class.value)
    for name in list_strategies():
        info = strategy_info(name)
        assert (name in listed) == (info.ranked and info.applicable(app_class))


@given(st.sampled_from(sorted(list_strategies())))
def test_every_registered_name_resolves_to_its_strategy(name):
    assert get_strategy(name).name == name


@given(
    st.integers(1, 1_000_000),
    st.data(),
    st.floats(0.05, 0.95),
    st.sampled_from([1, 16, 32, 64]),
)
def test_split_static_tail_invariants(n, data, tail_fraction, warp):
    n_gpu = data.draw(st.integers(0, n))
    gpu_pin, cpu_lo = split_static_tail(
        n, n_gpu, tail_fraction=tail_fraction, warp_size=warp
    )
    # the static bodies bracket the predicted split point
    assert 0 <= gpu_pin <= n_gpu <= cpu_lo <= n
    assert gpu_pin % warp == 0
    # held-back work is monotone in the tail fraction at both ends
    assert gpu_pin <= n_gpu * (1 - tail_fraction) + warp
    assert cpu_lo >= n - (n - n_gpu) * (1 - tail_fraction) - 1
