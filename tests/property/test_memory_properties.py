"""Property-based tests of the coherence directory (memory model)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.topology import HOST_SPACE
from repro.runtime.memory import MemoryManager
from repro.runtime.regions import ArraySpec, Region

from tests.conftest import tiny_platform

N = 200

region = st.tuples(st.integers(0, N), st.integers(0, N)).map(
    lambda t: (min(t), max(t))
).filter(lambda t: t[0] < t[1])

#: a random coherence action: (op, lo, hi, space)
action = st.tuples(
    st.sampled_from(["ensure_gpu", "ensure_host", "write_gpu",
                     "write_host", "writeback", "flush", "flush_inval"]),
    region,
)
actions = st.lists(action, min_size=1, max_size=25)


def fresh_mm():
    platform = tiny_platform.__wrapped__()
    return MemoryManager(platform, {"a": ArraySpec("a", N, 4)})


def apply(mm: MemoryManager, op: str, lo: int, hi: int) -> list:
    r = Region("a", lo, hi)
    if op == "ensure_gpu":
        return mm.ensure(r, "gpu0")
    if op == "ensure_host":
        return mm.ensure(r, HOST_SPACE)
    if op == "write_gpu":
        mm.write(r, "gpu0")
        return []
    if op == "write_host":
        mm.write(r, HOST_SPACE)
        return []
    if op == "writeback":
        return mm.writeback(r, "gpu0")
    if op == "flush":
        return mm.flush_to_host()
    return mm.flush_to_host(invalidate=True)


@settings(max_examples=150, deadline=None)
@given(actions)
def test_no_data_is_ever_lost(ops):
    """Every element is always valid in at least one space."""
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
        union = mm.valid_intervals("a", HOST_SPACE)
        for a, b in mm.valid_intervals("a", "gpu0"):
            union.add(a, b)
        assert union.contains(0, N), f"hole after {op}[{lo}:{hi})"


@settings(max_examples=150, deadline=None)
@given(actions)
def test_ensure_establishes_validity(ops):
    """After ensure(r, s), r is valid in s — regardless of history."""
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
    mm.ensure(Region("a", 10, 60), "gpu0")
    assert mm.is_valid("a", "gpu0", 10, 60)
    mm.ensure(Region("a", 0, N), HOST_SPACE)
    assert mm.is_valid("a", HOST_SPACE, 0, N)


@settings(max_examples=150, deadline=None)
@given(actions)
def test_flush_always_restores_host(ops):
    """flush_to_host leaves the host fully valid and nothing dirty."""
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
    mm.flush_to_host()
    assert mm.is_valid("a", HOST_SPACE, 0, N)
    assert mm.dirty_bytes() == 0


@settings(max_examples=100, deadline=None)
@given(actions)
def test_transfers_only_move_missing_data(ops):
    """ensure never transfers bytes already valid at the destination."""
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
    valid_before = mm.valid_intervals("a", "gpu0")
    transfers = mm.ensure(Region("a", 0, N), "gpu0")
    moved_to_gpu = sum(
        op.end - op.start for op in transfers if op.dst_space == "gpu0"
    )
    assert moved_to_gpu == N - valid_before.total


@settings(max_examples=100, deadline=None)
@given(actions)
def test_idempotence_of_ensure(ops):
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
    mm.ensure(Region("a", 0, N), "gpu0")
    assert mm.ensure(Region("a", 0, N), "gpu0") == []


@settings(max_examples=100, deadline=None)
@given(actions)
def test_invalidating_flush_empties_devices(ops):
    mm = fresh_mm()
    for op, (lo, hi) in ops:
        apply(mm, op, lo, hi)
    mm.flush_to_host(invalidate=True)
    assert not mm.valid_intervals("a", "gpu0")
    assert mm.is_valid("a", HOST_SPACE, 0, N)
