"""Lazy-packed labels must format exactly like eager ``format(*args)``.

``TraceStore._append_label`` packs a ``(template, *args)`` tuple into
fixed-width columns only when the args fit the packed shape — at most
one leading *exact* ``str`` plus up to three *exact* ``int`` s.
Anything else (bools, str/int subclasses, floats, too many args) must
route through the eager ``template.format(*args)`` path.  Hypothesis
drives arbitrary str/int/bool/mixed argument tuples through ``record``
and demands ``label_at`` equal the eager rendering, character for
character — the packed representation is an encoding, never a lossy
one.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.tracestore import TraceStore


class _IntSub(int):
    """An int subclass whose str() differs from the base rendering."""

    def __str__(self) -> str:
        return f"sub({int(self)})"


class _StrSub(str):
    pass


_arg = st.one_of(
    st.booleans(),
    st.integers(min_value=-(1 << 62), max_value=1 << 62),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
    ),
    st.builds(_IntSub, st.integers(0, 99)),
    st.builds(_StrSub, st.text(max_size=4)),
)


@given(args=st.lists(_arg, max_size=5))
def test_lazy_label_formats_like_eager(args):
    template = "lbl " + " ".join("{}" for _ in args)
    store = TraceStore()
    store.record("r", (template, *args), "compute", 0.0, 1.0)
    assert store.label_at(0) == template.format(*args)


@given(
    s=st.text(max_size=6),
    ints=st.lists(
        st.integers(min_value=-(1 << 62), max_value=1 << 62),
        min_size=0, max_size=3,
    ),
)
def test_packable_shapes_stay_unpooled(s, ints):
    """str + <=3 ints takes the packed path: no label_pool entry."""
    args = (s, *ints)
    template = " ".join("{}" for _ in args)
    store = TraceStore()
    store.record("r", (template, *args), "compute", 0.0, 1.0)
    assert len(store.label_pool) == 0
    assert store.label_at(0) == template.format(*args)


def test_bool_routes_eager():
    """bool is an int subclass but renders True/False: must not pack."""
    store = TraceStore()
    store.record("r", ("flag {}", True), "compute", 0.0, 1.0)
    assert store.label_at(0) == "flag True"
    # eager path pools the formatted string
    assert len(store.label_pool) == 1


def test_int_subclass_routes_eager():
    store = TraceStore()
    store.record("r", ("v {}", _IntSub(5)), "compute", 0.0, 1.0)
    assert store.label_at(0) == "v sub(5)"
    assert len(store.label_pool) == 1


def test_str_subclass_leading_arg_routes_eager():
    """A str subclass may format differently; only exact str packs."""
    store = TraceStore()
    store.record("r", (_StrSub("x"), 1), "compute", 0.0, 1.0)
    # template position is still a plain format call either way; the
    # *argument* position is what the predicate guards
    store.record("r", ("a {} {}", _StrSub("x"), 1), "compute", 1.0, 2.0)
    assert store.label_at(1) == "a x 1"
    assert len(store.label_pool) >= 1
