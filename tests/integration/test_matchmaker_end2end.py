"""End-to-end matchmaking across platforms (incl. the future-work probe)."""

from repro import (
    analyze,
    format_match,
    fusion_platform,
    get_application,
    match,
    paper_applications,
    shen_icpp15_platform,
)


class TestFullPipeline:
    def test_match_every_paper_application(self):
        platform = shen_icpp15_platform()
        for app in paper_applications():
            outcome = match(app, platform)
            report = outcome.report
            assert outcome.strategy == report.best_strategy
            assert outcome.result is not None
            assert outcome.result.makespan_s > 0

    def test_matched_strategy_beats_both_baselines_on_average(self):
        """The paper's bottom line: matchmaking pays off."""
        from repro.partition import get_strategy

        platform = shen_icpp15_platform()
        wins_gpu = wins_cpu = 0
        apps = paper_applications()
        for app in apps:
            program = app.program()
            best = match(app, platform).result.makespan_s
            og = get_strategy("Only-GPU").run(program, platform).makespan_s
            oc = get_strategy("Only-CPU").run(program, platform).makespan_s
            wins_gpu += og / best
            wins_cpu += oc / best
        assert wins_gpu / len(apps) > 1.2
        assert wins_cpu / len(apps) > 2.0

    def test_report_renders_for_every_application(self):
        platform = shen_icpp15_platform()
        for app in paper_applications():
            outcome = match(app, platform, execute=True)
            text = format_match(outcome)
            assert app.name in text
            assert "best strategy" in text


class TestFutureWorkPlatform:
    """Paper §VII: apply the analyzer to other accelerator balances."""

    def test_fusion_platform_shifts_hotspot_to_gpu(self):
        # with a near-free link the transfer-bound crossover disappears:
        # HotSpot's GPU share grows substantially
        app = get_application("HotSpot")
        shen = match(app, shen_icpp15_platform(), execute=False)
        fusion = match(app, fusion_platform(), execute=False)
        share = lambda m: next(
            iter(m.plan.decision.gpu_fraction_by_kernel.values())
        )
        assert share(fusion) > share(shen)

    def test_classification_is_platform_independent(self):
        app = get_application("STREAM-Seq")
        assert (
            analyze(app, n=65536).app_class
            is analyze(app, n=65536).app_class
        )
