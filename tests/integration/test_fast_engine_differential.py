"""Differential suite: the fast event core vs the oracle engine.

The fast engine's contract is *indistinguishability*: a run under
``FastSimulator`` must produce the same :class:`RunArtifact` as the
oracle ``Simulator`` — same makespan, same trace rows, same summary,
same decision — across every strategy, application, and sweep backend.

In-process comparisons use structural equality on cache-cold artifacts.
Byte identity of the pickles is checked across *fresh subprocesses*, one
per engine: within a single process the first run's ``sys.intern`` calls
register its trace strings, which changes pickle memo sharing (not
content) for the second run, so whole-pickle comparison is only
meaningful between processes that each ran exactly one engine.
"""

import os
import pickle
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.bench.harness import SweepCell, _run_cell, run_sweep, simulate_many
from repro.cache import clear_all
from repro.distrib import WorkerServer
from repro.errors import StrategyInapplicableError

STRATEGIES = ("Only-CPU", "Only-GPU", "SP-Single", "DP-Perf", "DP-Dep")

#: (app, n, iterations) — small instances of the paper's app suite,
#: mixing single-kernel, multi-kernel, and imbalanced workloads
APPS = [
    ("STREAM-Loop", 2048, 2),
    ("MatrixMul", 128, 1),
    ("BlackScholes", 2048, 1),
    ("Cholesky", 6, 1),  # n counts tiles, not elements
    ("SpMV", 2048, 1),
]


@contextmanager
def engine(oracle: bool):
    """Pin the engine selection for the duration of the block."""
    prior = os.environ.get("REPRO_NO_FAST_ENGINE")
    os.environ["REPRO_NO_FAST_ENGINE"] = "1" if oracle else "0"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_NO_FAST_ENGINE", None)
        else:
            os.environ["REPRO_NO_FAST_ENGINE"] = prior


def _cell(platform, app, n, iterations, strategy):
    return SweepCell(app=app, strategy=strategy, platform=platform,
                     n=n, iterations=iterations, sync=False)


def _run(cell, *, oracle, detail="full"):
    """One cache-cold artifact under the chosen engine, or an error type."""
    with engine(oracle):
        clear_all()
        try:
            return _run_cell(cell, detail)
        except StrategyInapplicableError:
            return StrategyInapplicableError


@pytest.mark.parametrize("app,n,iterations", APPS)
def test_artifacts_identical_across_strategies(paper_platform, app, n,
                                               iterations):
    for strategy in STRATEGIES:
        cell = _cell(paper_platform, app, n, iterations, strategy)
        fast = _run(cell, oracle=False)
        oracle = _run(cell, oracle=True)
        if fast is StrategyInapplicableError:
            # both engines must agree the combo is inapplicable
            assert oracle is StrategyInapplicableError
            continue
        assert fast.makespan_ms == oracle.makespan_ms, strategy
        assert fast.summary == oracle.summary, strategy
        assert list(fast.trace) == list(oracle.trace), strategy
        assert fast == oracle, strategy


def test_pickle_bytes_identical_in_fresh_processes(paper_platform, tmp_path):
    """Byte identity, each engine in its own interpreter (see module doc)."""
    script = (
        "import pickle, sys\n"
        "from repro.bench.harness import SweepCell, _run_cell\n"
        "from repro.platform import shen_icpp15_platform\n"
        "cell = SweepCell(app='STREAM-Loop', strategy='DP-Perf',\n"
        "                 platform=shen_icpp15_platform(), n=2048,\n"
        "                 iterations=2, sync=False)\n"
        "artifact = _run_cell(cell, 'full')\n"
        "sys.stdout.buffer.write(pickle.dumps(artifact, 5))\n"
    )
    src = str(Path(__file__).resolve().parents[2] / "src")

    def dump(oracle):
        env = dict(os.environ, PYTHONPATH=src,
                   REPRO_NO_FAST_ENGINE="1" if oracle else "0")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, check=True)
        return proc.stdout

    fast_bytes = dump(oracle=False)
    oracle_bytes = dump(oracle=True)
    assert len(fast_bytes) > 1000
    assert fast_bytes == oracle_bytes
    # and the engines did diverge in implementation, not just in name
    artifact = pickle.loads(fast_bytes)
    assert artifact.makespan_ms > 0


class TestBackends:
    """Every sweep backend yields the same numbers under either engine."""

    def _cells(self, platform):
        return [
            _cell(platform, "STREAM-Loop", 2048, 2, strategy)
            for strategy in ("Only-CPU", "Only-GPU", "DP-Perf")
        ]

    @staticmethod
    def _key(artifact):
        return (artifact.makespan_ms, artifact.summary,
                artifact.elements_by_device, artifact.transfer_bytes)

    def _compare(self, run):
        with engine(oracle=False):
            clear_all()
            fast = run()
        with engine(oracle=True):
            clear_all()
            oracle = run()
        assert [self._key(a) for a in fast] == [self._key(a) for a in oracle]

    def test_pool_backend(self, paper_platform):
        cells = self._cells(paper_platform)
        # pool children inherit os.environ, so the pin reaches them
        self._compare(lambda: run_sweep(cells, jobs=2))

    def test_fused_blocks(self, paper_platform):
        cells = self._cells(paper_platform)
        self._compare(lambda: run_sweep(cells, jobs=2, fuse=2))

    def test_simulate_many(self, paper_platform):
        cells = self._cells(paper_platform)
        self._compare(lambda: simulate_many(cells))

    def test_worker_backend(self, paper_platform):
        cells = self._cells(paper_platform)
        server = WorkerServer().start()
        try:
            # the in-thread worker reads the engine pin per simulation
            self._compare(lambda: run_sweep(cells,
                                            workers=[server.endpoint]))
        finally:
            server.stop()

    def test_fused_matches_per_cell_under_both_engines(self, paper_platform):
        cells = self._cells(paper_platform)
        for oracle in (False, True):
            with engine(oracle):
                clear_all()
                per_cell = run_sweep(cells, jobs=2)
                fused = run_sweep(cells, jobs=2, fuse=2)
            assert [self._key(a) for a in per_cell] == [
                self._key(a) for a in fused
            ]
