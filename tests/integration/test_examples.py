"""Every bundled example must run and produce its headline output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", [], ["best strategy: SP-Single", "SP-Varied"]),
    ("matchmaking_survey.py", ["--quick"], ["average", "vs OG"]),
    ("custom_application.py", [], ["MK-Loop", "analyzer's choice"]),
    ("stream_sync_study.py", [], ["SP-Unified", "SP-Varied", "ranking"]),
    ("dag_scheduling.py", [], ["MK-DAG", "DP-Perf"]),
    ("dynamic_to_static.py", [], ["static optimum", "auto-tuned"]),
    ("multi_gpu.py", [], ["gpu0", "gpu1", "2 GPUs"]),
    ("imbalanced_spmv.py", [], ["work-balanced", "of the work"]),
]


@pytest.mark.parametrize("script,args,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: {needle!r} missing from output"
        )


def test_examples_directory_is_covered():
    """Every example script has a smoke test above."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == {c[0] for c in CASES}
