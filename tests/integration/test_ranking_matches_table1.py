"""The headline claim: the empirical ranking matches Table I.

"The performance ranking of different partitioning strategies in our
empirical evaluation matches the theoretical ranking we have proposed in
Table I."  (paper §IV-B5)
"""

import pytest

from repro.bench.experiments import empirical_ranking
from repro.bench.validation import TIE
from repro.platform import shen_icpp15_platform

SCENARIOS = [
    ("MatrixMul", None),
    ("BlackScholes", None),
    ("Nbody", None),
    ("HotSpot", None),
    ("STREAM-Seq", False),
    ("STREAM-Seq", True),
    ("STREAM-Loop", False),
    ("STREAM-Loop", True),
]


@pytest.fixture(scope="module")
def platform():
    return shen_icpp15_platform()


@pytest.mark.parametrize(
    "app_name,sync", SCENARIOS,
    ids=[f"{a}{'' if s is None else ('-w' if s else '-wo')}"
         for a, s in SCENARIOS],
)
def test_empirical_ranking_matches_table1(platform, app_name, sync):
    comparison = empirical_ranking(app_name, platform, sync=sync)
    assert comparison.matches(tie_tolerance=TIE), (
        f"{comparison.scenario}: theoretical {comparison.theoretical} "
        f"vs empirical {comparison.empirical} "
        f"({ {k: round(v, 1) for k, v in comparison.times_ms.items()} })"
    )


def test_best_strategy_always_the_top_ranked(platform):
    """Matchmaking actually picks the empirically fastest strategy."""
    for app_name, sync in SCENARIOS:
        comparison = empirical_ranking(app_name, platform, sync=sync)
        best_measured = comparison.empirical[0]
        top_ranked = comparison.theoretical[0]
        t_best = comparison.times_ms[best_measured]
        t_top = comparison.times_ms[top_ranked]
        assert t_top <= t_best * TIE, (
            f"{comparison.scenario}: {top_ranked}={t_top:.1f}ms not within "
            f"tolerance of measured best {best_measured}={t_best:.1f}ms"
        )


def test_mk_dag_ranking(platform):
    """Proposition 1 on the MK-DAG class (blocked Cholesky)."""
    from repro.apps.cholesky import Cholesky
    from repro.partition import get_strategy

    program = Cholesky(tile_size=1024).program(8)
    t_perf = get_strategy("DP-Perf").run(program, platform).makespan_s
    t_dep = get_strategy("DP-Dep").run(program, platform).makespan_s
    assert t_perf <= t_dep * TIE
