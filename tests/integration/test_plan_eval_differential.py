"""Differential suite: the compiled plan evaluator vs the general engine.

The evaluator's contract mirrors the fast event core's: routing a static
plan through :class:`~repro.sim.plan.PlanEvaluator` must be
*indistinguishable* from the general :class:`RuntimeEngine` — summary
artifacts agree on makespan and every per-resource busy time bit for bit,
and full-trace artifacts pickle to identical bytes (the drain is disabled
in full detail, so byte identity covers the non-drain plumbing while the
summary matrix covers the drain itself).

Dynamic strategies must *compile-fail* and fall through to the engine:
under ``REPRO_PLAN_EVAL=1`` a DP-* cell still runs, identically.

In-process comparisons use structural equality on cache-cold artifacts;
byte identity is checked across fresh subprocesses for the same
``sys.intern`` reason as ``test_fast_engine_differential``.
"""

import os
import pickle
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.bench.harness import SweepCell, _run_cell
from repro.cache import clear_all
from repro.errors import PlanCompileError, StrategyInapplicableError

#: static strategies (must compile) + dynamic ones (must fall back)
STRATEGIES = ("Only-CPU", "Only-GPU", "SP-Single", "SP-Unified", "SP-Varied")
FALLBACK_STRATEGIES = ("DP-Perf", "DP-Dep")

#: (app, n, iterations) — small instances spanning the app classes,
#: including sync-free loops (which drain) and synced ones (which don't)
APPS = [
    ("STREAM-Loop", 2048, 4),
    ("MatrixMul", 128, 1),
    ("BlackScholes", 2048, 1),
    ("Cholesky", 6, 1),  # n counts tiles, not elements
    ("SpMV", 2048, 1),
]


@contextmanager
def _env(name, value):
    prior = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def _cell(platform, app, n, iterations, strategy):
    return SweepCell(app=app, strategy=strategy, platform=platform,
                     n=n, iterations=iterations, sync=False)


def _run(cell, *, plan_eval, detail="summary"):
    with _env("REPRO_PLAN_EVAL", "1" if plan_eval else "0"):
        clear_all()
        try:
            return _run_cell(cell, detail)
        except StrategyInapplicableError:
            return StrategyInapplicableError


@pytest.mark.parametrize("app,n,iterations", APPS)
def test_summary_identical_across_static_strategies(paper_platform, app, n,
                                                    iterations):
    for strategy in STRATEGIES:
        cell = _cell(paper_platform, app, n, iterations, strategy)
        ref = _run(cell, plan_eval=False)
        ev = _run(cell, plan_eval=True)
        if ref is StrategyInapplicableError:
            assert ev is StrategyInapplicableError
            continue
        assert ev.makespan_ms == ref.makespan_ms, strategy
        assert ev.summary == ref.summary, strategy
        assert ev == ref, strategy


@pytest.mark.parametrize("strategy", FALLBACK_STRATEGIES)
def test_dynamic_strategies_fall_back_identically(paper_platform, strategy):
    cell = _cell(paper_platform, "STREAM-Loop", 2048, 2, strategy)
    ref = _run(cell, plan_eval=False)
    ev = _run(cell, plan_eval=True)
    assert ev == ref


def test_dynamic_plans_raise_plan_compile_error(paper_platform):
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.sim.plan import compile_plan

    prog = get_application("STREAM-Loop").program(2048, iterations=2)
    plan = get_strategy("DP-Perf").plan(prog, paper_platform)
    with pytest.raises(PlanCompileError):
        compile_plan(plan, paper_platform)


def test_full_detail_identical(paper_platform):
    """Full-trace runs bypass the drain and match structurally in-process."""
    cell = _cell(paper_platform, "STREAM-Loop", 2048, 4, "SP-Unified")
    ref = _run(cell, plan_eval=False, detail="full")
    ev = _run(cell, plan_eval=True, detail="full")
    assert list(ev.trace) == list(ref.trace)
    assert ev == ref


def test_forced_fraction_cells_identical(paper_platform):
    """The search's forced-split cells hold parity too."""
    from repro.partition.base import PlanConfig

    for frac in (0.0, 0.5, 1.0):
        cell = SweepCell(
            app="STREAM-Loop", strategy="SP-Unified",
            platform=paper_platform, n=2048, iterations=4, sync=False,
            config=PlanConfig(gpu_fraction=frac),
        )
        ref = _run(cell, plan_eval=False)
        ev = _run(cell, plan_eval=True)
        assert ev == ref, frac


SUBPROCESS_SCRIPT = (
    "import pickle, sys\n"
    "from repro.bench.harness import SweepCell, _run_cell\n"
    "from repro.platform import shen_icpp15_platform\n"
    "cell = SweepCell(app='STREAM-Loop', strategy='SP-Unified',\n"
    "                 platform=shen_icpp15_platform(), n=2048,\n"
    "                 iterations=4, sync=False)\n"
    "artifact = _run_cell(cell, sys.argv[1])\n"
    "sys.stdout.buffer.write(pickle.dumps(artifact, 5))\n"
)


@pytest.mark.parametrize("detail", ("summary", "full"))
def test_pickle_bytes_identical_in_fresh_processes(detail):
    """Byte identity across (plan-eval × numpy) in fresh interpreters."""
    src = str(Path(__file__).resolve().parents[2] / "src")

    def dump(plan_eval, no_numpy):
        env = dict(os.environ, PYTHONPATH=src,
                   REPRO_PLAN_EVAL="1" if plan_eval else "0",
                   REPRO_NO_NUMPY="1" if no_numpy else "0")
        proc = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT, detail],
            env=env, capture_output=True, check=True,
        )
        return proc.stdout

    ref = dump(plan_eval=False, no_numpy=False)
    assert len(ref) > 500
    for plan_eval, no_numpy in ((True, False), (True, True), (False, True)):
        assert dump(plan_eval, no_numpy) == ref, (plan_eval, no_numpy)
    artifact = pickle.loads(ref)
    assert artifact.makespan_ms > 0


def test_drain_engages_on_sync_free_loop(paper_platform):
    """Guards against silent regressions to the pure event loop."""
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.sim.plan import _EvalRun, compile_plan

    prog = get_application("STREAM-Loop").program(2048, iterations=4,
                                                  sync=False)
    plan = get_strategy("SP-Unified").plan(prog, paper_platform)
    compiled = compile_plan(plan, paper_platform)
    assert compiled.drainable
    run = _EvalRun(paper_platform, compiled, "summary")
    run.go()
    assert run._drained
