"""Differential suite: the compiled plan evaluator vs the general engine.

The evaluator's contract mirrors the fast event core's: routing a static
plan through :class:`~repro.sim.plan.PlanEvaluator` must be
*indistinguishable* from the general :class:`RuntimeEngine` — summary
artifacts agree on makespan and every per-resource busy time bit for bit,
and full-trace artifacts pickle to identical bytes (the drain is disabled
in full detail, so byte identity covers the non-drain plumbing while the
summary matrix covers the drain itself).

Dynamic strategies must *compile-fail* and fall through to the engine:
under ``REPRO_PLAN_EVAL=1`` a DP-* cell still runs, identically.

In-process comparisons use structural equality on cache-cold artifacts;
byte identity is checked across fresh subprocesses for the same
``sys.intern`` reason as ``test_fast_engine_differential``.
"""

import os
import pickle
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.bench.harness import SweepCell, _run_cell
from repro.cache import clear_all
from repro.errors import PlanCompileError, StrategyInapplicableError

#: static strategies (must compile) + dynamic ones (must fall back)
STRATEGIES = ("Only-CPU", "Only-GPU", "SP-Single", "SP-Unified", "SP-Varied")
FALLBACK_STRATEGIES = ("DP-Perf", "DP-Dep")

#: (app, n, iterations) — small instances spanning the app classes,
#: including sync-free loops (which drain) and synced ones (which don't)
APPS = [
    ("STREAM-Loop", 2048, 4),
    ("MatrixMul", 128, 1),
    ("BlackScholes", 2048, 1),
    ("Cholesky", 6, 1),  # n counts tiles, not elements
    ("SpMV", 2048, 1),
]

#: (app, n, iterations) — per-iteration-sync scenarios: every loop body
#: ends at a barrier, so the terminal drain never fires and parity rides
#: on the wave drain (or its per-wave fallback to the event loop)
SYNCED_APPS = [
    ("HotSpot", 1024, 4),
    ("Nbody", 512, 3),
    ("FDTD", 512, 3),
]

#: dynamic schedulers exercised on synced cells (must compile-fail)
SYNCED_FALLBACK_STRATEGIES = ("HYB-Static", "DP-Perf")


@contextmanager
def _env(name, value):
    prior = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def _cell(platform, app, n, iterations, strategy, *, sync=False):
    return SweepCell(app=app, strategy=strategy, platform=platform,
                     n=n, iterations=iterations, sync=sync)


def _run(cell, *, plan_eval, detail="summary"):
    with _env("REPRO_PLAN_EVAL", "1" if plan_eval else "0"):
        clear_all()
        try:
            return _run_cell(cell, detail)
        except StrategyInapplicableError:
            return StrategyInapplicableError


@pytest.mark.parametrize("app,n,iterations", APPS)
def test_summary_identical_across_static_strategies(paper_platform, app, n,
                                                    iterations):
    for strategy in STRATEGIES:
        cell = _cell(paper_platform, app, n, iterations, strategy)
        ref = _run(cell, plan_eval=False)
        ev = _run(cell, plan_eval=True)
        if ref is StrategyInapplicableError:
            assert ev is StrategyInapplicableError
            continue
        assert ev.makespan_ms == ref.makespan_ms, strategy
        assert ev.summary == ref.summary, strategy
        assert ev == ref, strategy


@pytest.mark.parametrize("strategy", FALLBACK_STRATEGIES)
def test_dynamic_strategies_fall_back_identically(paper_platform, strategy):
    cell = _cell(paper_platform, "STREAM-Loop", 2048, 2, strategy)
    ref = _run(cell, plan_eval=False)
    ev = _run(cell, plan_eval=True)
    assert ev == ref


def test_dynamic_plans_raise_plan_compile_error(paper_platform):
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.sim.plan import compile_plan

    prog = get_application("STREAM-Loop").program(2048, iterations=2)
    plan = get_strategy("DP-Perf").plan(prog, paper_platform)
    with pytest.raises(PlanCompileError):
        compile_plan(plan, paper_platform)


def test_full_detail_identical(paper_platform):
    """Full-trace runs bypass the drain and match structurally in-process."""
    cell = _cell(paper_platform, "STREAM-Loop", 2048, 4, "SP-Unified")
    ref = _run(cell, plan_eval=False, detail="full")
    ev = _run(cell, plan_eval=True, detail="full")
    assert list(ev.trace) == list(ref.trace)
    assert ev == ref


def test_forced_fraction_cells_identical(paper_platform):
    """The search's forced-split cells hold parity too."""
    from repro.partition.base import PlanConfig

    for frac in (0.0, 0.5, 1.0):
        cell = SweepCell(
            app="STREAM-Loop", strategy="SP-Unified",
            platform=paper_platform, n=2048, iterations=4, sync=False,
            config=PlanConfig(gpu_fraction=frac),
        )
        ref = _run(cell, plan_eval=False)
        ev = _run(cell, plan_eval=True)
        assert ev == ref, frac


SUBPROCESS_SCRIPT = (
    "import pickle, sys\n"
    "from repro.bench.harness import SweepCell, _run_cell\n"
    "from repro.platform import shen_icpp15_platform\n"
    "cell = SweepCell(app='STREAM-Loop', strategy='SP-Unified',\n"
    "                 platform=shen_icpp15_platform(), n=2048,\n"
    "                 iterations=4, sync=False)\n"
    "artifact = _run_cell(cell, sys.argv[1])\n"
    "sys.stdout.buffer.write(pickle.dumps(artifact, 5))\n"
)


@pytest.mark.parametrize("detail", ("summary", "full"))
def test_pickle_bytes_identical_in_fresh_processes(detail):
    """Byte identity across (plan-eval × numpy) in fresh interpreters."""
    src = str(Path(__file__).resolve().parents[2] / "src")

    def dump(plan_eval, no_numpy):
        env = dict(os.environ, PYTHONPATH=src,
                   REPRO_PLAN_EVAL="1" if plan_eval else "0",
                   REPRO_NO_NUMPY="1" if no_numpy else "0")
        proc = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT, detail],
            env=env, capture_output=True, check=True,
        )
        return proc.stdout

    ref = dump(plan_eval=False, no_numpy=False)
    assert len(ref) > 500
    for plan_eval, no_numpy in ((True, False), (True, True), (False, True)):
        assert dump(plan_eval, no_numpy) == ref, (plan_eval, no_numpy)
    artifact = pickle.loads(ref)
    assert artifact.makespan_ms > 0


def test_drain_engages_on_sync_free_loop(paper_platform):
    """Guards against silent regressions to the pure event loop."""
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.sim.plan import _EvalRun, compile_plan

    prog = get_application("STREAM-Loop").program(2048, iterations=4,
                                                  sync=False)
    plan = get_strategy("SP-Unified").plan(prog, paper_platform)
    compiled = compile_plan(plan, paper_platform)
    assert compiled.drainable
    run = _EvalRun(paper_platform, compiled, "summary")
    run.go()
    assert run._drained


# -- per-iteration-sync apps: the wave drain ---------------------------------


@pytest.mark.parametrize("app,n,iterations", SYNCED_APPS)
def test_summary_identical_across_synced_apps(paper_platform, app, n,
                                              iterations):
    """Every applicable strategy holds parity on barrier-fenced loops."""
    for strategy in STRATEGIES + SYNCED_FALLBACK_STRATEGIES:
        cell = _cell(paper_platform, app, n, iterations, strategy, sync=True)
        ref = _run(cell, plan_eval=False)
        ev = _run(cell, plan_eval=True)
        if ref is StrategyInapplicableError:
            assert ev is StrategyInapplicableError, strategy
            continue
        assert ev.makespan_ms == ref.makespan_ms, strategy
        assert ev.summary == ref.summary, strategy
        assert ev == ref, strategy


def test_synced_full_detail_identical(paper_platform):
    """Full-trace synced runs bypass both drains and match structurally."""
    cell = _cell(paper_platform, "HotSpot", 1024, 4, "SP-Single", sync=True)
    ref = _run(cell, plan_eval=False, detail="full")
    ev = _run(cell, plan_eval=True, detail="full")
    assert list(ev.trace) == list(ref.trace)
    assert ev == ref


def test_wave_drain_engages_on_synced_loop(paper_platform):
    """Waves must actually drain — not silently fall back per barrier."""
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.sim.plan import _EvalRun, compile_plan

    prog = get_application("HotSpot").program(1024, iterations=4, sync=True)
    plan = get_strategy("SP-Single").plan(prog, paper_platform)
    compiled = compile_plan(plan, paper_platform)
    assert compiled.drainable
    assert compiled.wave_next  # barrier -> next barrier chain was compiled
    run = _EvalRun(paper_platform, compiled, "summary")
    run.go()
    assert run._waves_drained > 0
    assert run._wave_fallbacks == 0


def _lanes_of(trace):
    """Trace rows grouped per resource lane, in firing order."""
    lanes = {}
    for rec in trace:
        lanes.setdefault(rec.resource_id, []).append(
            (rec.start, rec.end, rec.label, rec.category)
        )
    return lanes


@pytest.mark.parametrize("app,n,iterations", SYNCED_APPS)
@pytest.mark.parametrize("strategy", ("SP-Single", "SP-Unified", "SP-Varied"))
def test_wave_commits_never_reorder_lanes(paper_platform, app, n, iterations,
                                          strategy):
    """Property: wave commits append rows in the oracle's firing order.

    The committed wave writes each resource lane in one bulk
    ``extend_rows``; this checks row-by-row (start, end, label, category)
    equality against the pure event loop's lane contents, which is
    stronger than the summary equality the matrix tests assert (summaries
    aggregate, so they could mask two reorderings that cancel).
    """
    from repro.apps import get_application
    from repro.partition.base import get_strategy
    from repro.runtime.executor import _Run
    from repro.sim.plan import _EvalRun, compile_plan

    def build():
        clear_all()
        prog = get_application(app).program(n, iterations=iterations,
                                            sync=True)
        try:
            plan = get_strategy(strategy).plan(prog, paper_platform)
        except StrategyInapplicableError:
            return None
        return compile_plan(plan, paper_platform)

    compiled = build()
    if compiled is None:
        pytest.skip(f"{strategy} inapplicable to {app}")
    oracle = _Run(paper_platform, compiled.config, compiled.graph,
                  compiled.scheduler)
    oracle.go(detail="summary")

    compiled = build()  # fresh graph/scheduler: runs are single-use
    ev = _EvalRun(paper_platform, compiled, "summary")
    ev.go(detail="summary")

    ref_lanes = _lanes_of(oracle.trace)
    ev_lanes = _lanes_of(ev.trace)
    assert set(ev_lanes) == set(ref_lanes)
    for key in ref_lanes:
        assert ev_lanes[key] == ref_lanes[key], key


SYNCED_SUBPROCESS_SCRIPT = (
    "import pickle, sys\n"
    "from repro.bench.harness import SweepCell, _run_cell\n"
    "from repro.platform import shen_icpp15_platform\n"
    "cell = SweepCell(app='HotSpot', strategy='SP-Single',\n"
    "                 platform=shen_icpp15_platform(), n=1024,\n"
    "                 iterations=4, sync=True)\n"
    "artifact = _run_cell(cell, sys.argv[1])\n"
    "sys.stdout.buffer.write(pickle.dumps(artifact, 5))\n"
)


@pytest.mark.parametrize("detail", ("summary", "full"))
def test_synced_pickle_bytes_identical_in_fresh_processes(detail):
    """Wave-drained artifacts are byte-identical across every engine tier."""
    src = str(Path(__file__).resolve().parents[2] / "src")

    def dump(plan_eval, no_numpy, no_fast=False):
        env = dict(os.environ, PYTHONPATH=src,
                   REPRO_PLAN_EVAL="1" if plan_eval else "0",
                   REPRO_NO_NUMPY="1" if no_numpy else "0",
                   REPRO_NO_FAST_ENGINE="1" if no_fast else "0")
        proc = subprocess.run(
            [sys.executable, "-c", SYNCED_SUBPROCESS_SCRIPT, detail],
            env=env, capture_output=True, check=True,
        )
        return proc.stdout

    ref = dump(plan_eval=False, no_numpy=False)
    assert len(ref) > 500
    combos = (
        (True, False, False),
        (True, True, False),
        (False, True, False),
        (True, False, True),
        (True, True, True),
    )
    for plan_eval, no_numpy, no_fast in combos:
        got = dump(plan_eval, no_numpy, no_fast)
        assert got == ref, (plan_eval, no_numpy, no_fast)
    artifact = pickle.loads(ref)
    assert artifact.makespan_ms > 0
