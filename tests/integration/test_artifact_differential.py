"""Differential suite: summarized artifacts vs the raw-trace seed path.

The ``RunArtifact`` pipeline replaced every report/export consumer's trace
scans with pre-aggregated ``TraceSummary`` numbers.  The refactor's
contract is *byte identity*: a figure/table regenerated from summarized
sweep returns must match the one regenerated with full traces exactly —
same floats, same JSON bytes — because the summary accumulates in the
same order the old filtered scans did.
"""

import pickle

import pytest

from repro.apps import get_application
from repro.artifact import RunArtifact, TraceSummary, artifact_nbytes
from repro.bench.crossover import stream_iteration_crossover
from repro.bench.experiments import run_experiment
from repro.bench.export import scenario_rows, to_csv, to_json
from repro.bench.harness import run_scenario
from repro.cache import clear_all
from repro.partition import get_strategy


SCALE = 0.05  # shrink the paper problem sizes; identity must hold anyway


def _experiment_rows(key, platform, detail):
    clear_all()  # same cold-cache state for both paths
    return scenario_rows(run_experiment(key, platform, scale=SCALE, detail=detail))


@pytest.mark.parametrize("key", ["fig5", "fig6", "fig10"])
def test_experiment_export_byte_identical(key, paper_platform):
    summary = _experiment_rows(key, paper_platform, "summary")
    full = _experiment_rows(key, paper_platform, "full")
    assert summary == full
    assert to_json(summary) == to_json(full)
    assert to_csv(summary) == to_csv(full)


def test_scenario_numbers_identical(paper_platform):
    kwargs = dict(n=4096, iterations=2, sync=False)
    strategies = ("Only-CPU", "Only-GPU", "DP-Perf")
    app = get_application("STREAM-Loop")
    clear_all()
    summarized = run_scenario(app, paper_platform, strategies, **kwargs)
    clear_all()
    full = run_scenario(app, paper_platform, strategies, detail="full", **kwargs)
    for a, b in zip(summarized.outcomes, full.outcomes):
        assert a.result.makespan_ms == b.result.makespan_ms
        assert a.result.summary == b.result.summary
        assert a.result.gpu_fraction == b.result.gpu_fraction
        assert a.result.ratio_by_kernel() == b.result.ratio_by_kernel()


def test_crossover_identical(paper_platform):
    clear_all()
    summarized = stream_iteration_crossover(paper_platform, n=4096)
    clear_all()
    again = stream_iteration_crossover(paper_platform, n=4096)
    assert summarized == again  # frozen dataclass: full float equality


def test_summary_matches_trace_recomputation(paper_platform):
    """A full-detail artifact's summary is exactly its trace, re-derived."""
    app = get_application("STREAM-Loop")
    program = app.program(4096, iterations=2, sync=False)
    result = get_strategy("DP-Perf").run(program, paper_platform, detail="full")
    recomputed = TraceSummary.from_store(result.trace.store)
    assert recomputed == result.summary
    assert result.makespan_s >= result.summary.trace_makespan_s


class TestArtifactPickle:
    def _artifact(self, platform, detail="summary"):
        app = get_application("STREAM-Loop")
        program = app.program(4096, iterations=2, sync=False)
        return get_strategy("DP-Perf").run(program, platform, detail=detail)

    def test_round_trip_equality(self, paper_platform):
        artifact = self._artifact(paper_platform)
        clone = pickle.loads(pickle.dumps(artifact))
        assert isinstance(clone, RunArtifact)
        assert clone == artifact
        assert clone.summary == artifact.summary
        assert clone.cache_stats == artifact.cache_stats

    def test_summarized_size_bound(self, paper_platform):
        artifact = self._artifact(paper_platform)
        assert artifact.trace is None
        # the cross-process unit stays small no matter the trace length
        assert artifact_nbytes(artifact) < 8_192

    def test_full_detail_round_trips_trace(self, paper_platform):
        artifact = self._artifact(paper_platform, detail="full")
        clone = pickle.loads(pickle.dumps(artifact))
        assert list(clone.trace) == list(artifact.trace)

    def test_summarized_view_of_full_artifact(self, paper_platform):
        artifact = self._artifact(paper_platform, detail="full")
        slim = artifact.summarized()
        assert slim.trace is None and slim.detail == "summary"
        assert slim.summary == artifact.summary
        assert slim.makespan_ms == artifact.makespan_ms
        with pytest.raises(ValueError, match="summary"):
            slim.require_trace()
