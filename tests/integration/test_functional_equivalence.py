"""Partitioned execution computes the same numbers as sequential execution.

This is the correctness contract behind every partitioning strategy: the
OmpSs-style dependence tracking guarantees any chunking is numerically
equivalent to the sequential run.
"""

import numpy as np
import pytest

from repro.apps import get_application
from repro.runtime.functional import (
    assert_equivalent,
    run_chunked,
    run_sequential,
)

CASES = [
    ("MatrixMul", 40, 1),
    ("BlackScholes", 2000, 1),
    ("Nbody", 72, 4),
    ("HotSpot", 30, 4),
    ("STREAM-Seq", 700, 1),
    ("STREAM-Loop", 700, 3),
]


@pytest.mark.parametrize("name,n,iterations", CASES,
                         ids=[c[0] for c in CASES])
@pytest.mark.parametrize("chunks", [3, 13])
def test_chunked_equals_sequential(name, n, iterations, chunks):
    app = get_application(name)
    program = app.program(n, iterations=iterations)
    arrays = app.arrays(n, seed=42)
    sequential = run_sequential(program, arrays)
    chunked = run_chunked(program, arrays, n_chunks=chunks)
    assert_equivalent(sequential, chunked, rtol=1e-4, atol=1e-4)


def test_static_split_sizes_equal_any_other_chunking():
    """A Glinda-style asymmetric split is as correct as equal chunks."""
    from repro.runtime.dependence import build_dependences
    from repro.runtime.functional import run_functional
    from repro.runtime.graph import expand_program, split_sizes

    app = get_application("STREAM-Seq")
    n = 1000
    program = app.program(n)
    arrays = app.arrays(n, seed=43)

    def chunker(inv):
        # an 872/128 "static" split, CPU side again in 3 pieces
        return [
            (lo, hi, None, None)
            for lo, hi in split_sizes(n, [872, 50, 50, 28])
        ]

    graph = expand_program(program, chunker)
    build_dependences(graph)
    asymmetric = run_functional(graph, arrays)
    sequential = run_sequential(program, arrays)
    assert_equivalent(sequential, asymmetric)


def test_iterated_chunked_nbody_trajectories_identical():
    """Multi-iteration double-buffered app: chunking never changes physics."""
    app = get_application("Nbody")
    n = 60
    arrays = app.arrays(n, seed=44)
    runs = [
        run_chunked(app.program(n, iterations=5), arrays, n_chunks=k)
        for k in (1, 4, 60)
    ]
    for other in runs[1:]:
        for name in ("pos_a", "vel_a", "pos_b", "vel_b"):
            np.testing.assert_array_equal(runs[0][name], other[name])
