"""The paper's evaluation, end to end, at paper problem sizes.

Every qualitative claim of Section IV is validated by
:mod:`repro.bench.validation`; this test runs the whole matrix once and
asserts everything at once (the failure message lists every violated
claim).  See EXPERIMENTS.md for the paper-vs-measured numbers.
"""

import pytest

from repro.bench.speedup import figure12
from repro.bench.validation import run_full_matrix, validate_shapes
from repro.platform import shen_icpp15_platform


@pytest.fixture(scope="module")
def full_run():
    platform = shen_icpp15_platform()
    matrix = run_full_matrix(platform)
    rows = figure12(platform)
    return matrix, rows


class TestPaperShapes:
    def test_all_shape_constraints(self, full_run):
        matrix, rows = full_run
        report = validate_shapes(matrix, rows=rows)
        assert report.ok, "\n" + report.summary()

    def test_average_speedups_in_band(self, full_run):
        matrix, rows = full_run
        report = validate_shapes(matrix, rows=rows)
        # paper: 3.0x vs Only-GPU, 5.3x vs Only-CPU
        assert 1.5 <= report.avg_speedup_vs_gpu <= 5.0
        assert 3.0 <= report.avg_speedup_vs_cpu <= 9.0

    def test_max_speedup_order_of_magnitude(self, full_run):
        matrix, rows = full_run
        report = validate_shapes(matrix, rows=rows)
        assert report.max_speedup >= 12  # paper: 22.2x

    def test_every_scenario_has_six_or_five_strategies(self, full_run):
        matrix, _ = full_run
        for label, scenario in matrix.items():
            assert len(scenario.outcomes) in (5, 6), label
