"""Streaming sweeps: incremental yields, parity, dedupe, adaptive sizing.

``run_sweep_iter`` must genuinely stream on every backend (the first
completed cell arrives before the last one finishes), and collecting its
``(index, artifact)`` pairs must reproduce the buffered ``run_sweep``
output byte-for-byte — including when a worker dies after streaming part
of a batch (re-dispatch must dedupe the already-streamed cells) and when
the pool is skewed (the adaptive dispatcher must shift cells to the fast
worker and beat fixed batching on elapsed time).
"""

import pickle
import time
from dataclasses import replace

import repro.bench.harness as harness
from repro.bench.harness import SweepCell, run_sweep, run_sweep_iter
from repro.distrib import DistributedSweepExecutor, WorkerServer, last_sweep_reports

from tests.distrib.test_distributed import _cells, _spawn_worker, _warm_serial


def _light_cells(platform, count=20):
    """Cheap cells (a few ms each) so injected worker delays dominate."""
    strategies = ("Only-CPU", "Only-GPU", "DP-Perf", "SP-Unified", "DP-Dep")
    return [
        SweepCell(
            app="STREAM-Loop", strategy=strategies[i % len(strategies)],
            platform=platform, n=256, iterations=1, sync=False,
        )
        for i in range(count)
    ]


def _collect(pairs, total):
    """Reorder completion-ordered pairs into cell order (no cell lost)."""
    results = [None] * total
    for index, artifact in pairs:
        assert results[index] is None, f"cell {index} yielded twice"
        results[index] = artifact
    assert all(r is not None for r in results)
    return results


def _pickles(artifacts):
    return [pickle.dumps(a, 5) for a in artifacts]


class TestStreamedParity:
    """Streamed-then-reordered output is byte-identical to buffered."""

    def test_serial_backend(self, paper_platform):
        cells = _cells(paper_platform)
        buffered = _warm_serial(cells)
        streamed = _collect(run_sweep_iter(cells), len(cells))
        assert _pickles(streamed) == _pickles(buffered)

    def test_jobs_backend(self, paper_platform):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        streamed = _collect(run_sweep_iter(cells, jobs=2), len(cells))
        buffered = run_sweep(cells, jobs=2)
        assert _pickles(streamed) == _pickles(buffered)
        # canonicalization makes the pool backend match serial bytes too
        assert _pickles(streamed) == _pickles(serial)

    def test_distributed_backend(self, paper_platform):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        server = WorkerServer().start()
        try:
            streamed = _collect(
                run_sweep_iter(cells, workers=[server.endpoint]), len(cells)
            )
            buffered = run_sweep(cells, workers=[server.endpoint])
        finally:
            server.stop()
        assert _pickles(streamed) == _pickles(buffered)
        assert _pickles(streamed) == _pickles(serial)


class TestFirstCellBeforeLast:
    """The generator yields while later cells are still executing."""

    def test_serial_yields_after_each_cell(self, paper_platform, monkeypatch):
        cells = _cells(paper_platform)
        _warm_serial(cells)
        executed = []
        real = harness._run_cell

        def counting(cell, detail):
            executed.append(cell.strategy)
            return real(cell, detail)

        monkeypatch.setattr(harness, "_run_cell", counting)
        iterator = run_sweep_iter(cells)
        next(iterator)
        # exactly one cell has executed when the first pair arrives
        assert len(executed) == 1
        list(iterator)
        assert len(executed) == len(cells)

    def test_jobs_arrivals_are_spread(self, paper_platform):
        cells = _cells(paper_platform) * 2  # 10 cells over 2 workers
        _warm_serial(cells)
        arrivals = []
        for _ in run_sweep_iter(cells, jobs=2):
            arrivals.append(time.monotonic())
        # a collect-then-yield implementation would deliver every pair in
        # one burst; genuine streaming spreads arrivals over the rounds
        assert arrivals[-1] - arrivals[0] > 0.05

    def test_distributed_arrivals_follow_cell_cadence(self, paper_platform):
        cells = _cells(paper_platform)
        _warm_serial(cells)
        server = WorkerServer(delay_per_cell=0.05).start()
        try:
            arrivals = []
            for _ in run_sweep_iter(cells, workers=[server.endpoint]):
                arrivals.append(time.monotonic())
        finally:
            server.stop()
        assert len(arrivals) == len(cells)
        # 0.05 s per cell: the first result must land at least 3 cell
        # delays before the last one (buffered batches would land at once)
        assert arrivals[-1] - arrivals[0] >= 0.15


class TestMidStreamDeath:
    """Dying after streaming part of a batch must not double-yield."""

    def test_partial_batch_dedupes_and_stays_byte_identical(
        self, paper_platform
    ):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        # fail_after=1 with a 3-cell batch: the first batch streams one
        # cell, then the worker drops dead mid-batch — the two unstreamed
        # cells must be re-dispatched, the streamed one must not be
        dying = WorkerServer(fail_after=1, delay_per_cell=0.02).start()
        healthy = WorkerServer().start()
        try:
            executor = DistributedSweepExecutor(
                [dying.endpoint, healthy.endpoint], batch_size=3
            )
            streamed = _collect(executor.run_iter(cells), len(cells))
        finally:
            dying.stop()
            healthy.stop()
        # in-process workers share this process's global cache counters,
        # so concurrent cells race on the per-run cache_stats delta;
        # normalize it out here (the subprocess test below asserts full
        # byte-identity across real process boundaries)
        normalize = [replace(a, cache_stats={}) for a in streamed]
        reference = [replace(a, cache_stats={}) for a in serial]
        assert _pickles(normalize) == _pickles(reference)
        dead = [r for r in executor.reports if not r.alive]
        assert len(dead) == 1 and dead[0].endpoint == dying.endpoint
        # the dead worker really streamed part of its batch before dying,
        # so the dedupe path (not just whole-batch re-dispatch) ran
        assert dead[0].cells == 1
        assert sum(r.redispatched_batches for r in executor.reports) >= 1
        survivor = next(r for r in executor.reports if r.alive)
        assert survivor.cells == len(cells) - 1

    def test_subprocess_worker_killed_mid_stream(
        self, paper_platform, tmp_path
    ):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        p1, e1 = _spawn_worker(
            tmp_path, "dying",
            extra=("--fail-after", "1", "--delay-per-cell", "0.02"),
        )
        p2, e2 = _spawn_worker(tmp_path, "healthy")
        try:
            streamed = _collect(
                run_sweep_iter(cells, workers=[e1, e2], batch_size=3),
                len(cells),
            )
        finally:
            p1.terminate()
            p2.terminate()
        assert _pickles(streamed) == _pickles(serial)
        dead = [r for r in last_sweep_reports() if not r.alive]
        assert len(dead) == 1 and dead[0].endpoint == e1


class TestAdaptiveSkewedPool:
    """One delayed worker: adaptive sizing shifts work and beats fixed."""

    def _run_pool(self, cells, delay, **executor_kwargs):
        fast = WorkerServer().start()
        slow = WorkerServer(delay_per_cell=delay).start()
        try:
            executor = DistributedSweepExecutor(
                [fast.endpoint, slow.endpoint], **executor_kwargs
            )
            start = time.monotonic()
            results = executor.run(cells)
            elapsed = time.monotonic() - start
        finally:
            fast.stop()
            slow.stop()
        by_endpoint = {r.endpoint: r for r in executor.reports}
        return results, elapsed, by_endpoint[fast.endpoint], \
            by_endpoint[slow.endpoint]

    def test_adaptive_beats_fixed_batching(self, paper_platform):
        cells = _light_cells(paper_platform)
        serial = _warm_serial(cells)

        adaptive, adaptive_s, fast, slow = self._run_pool(cells, 0.08)
        # the fast worker must take strictly more of the queue
        assert fast.cells > slow.cells
        assert fast.cells + slow.cells == len(cells)
        # adaptive sizing: the fast worker's dispatches grew past the probe
        assert fast.largest_batch > 1
        assert fast.ewma_cell_s is not None and slow.ewma_cell_s is not None
        assert slow.ewma_cell_s > fast.ewma_cell_s

        # fixed half-the-sweep batches strand half the cells behind the
        # slow worker's injected delays; adaptive must finish sooner
        fixed, fixed_s, _, _ = self._run_pool(
            cells, 0.08, batch_size=len(cells) // 2
        )
        assert adaptive_s < fixed_s

        # two in-process workers race on this process's global cache
        # counters (see TestMidStreamDeath), so compare with the per-run
        # cache_stats delta normalized out
        reference = _pickles([replace(a, cache_stats={}) for a in serial])
        assert _pickles([replace(a, cache_stats={}) for a in adaptive]) == \
            reference
        assert _pickles([replace(a, cache_stats={}) for a in fixed]) == \
            reference


class TestProgress:
    """`progress=True` reports completed/total to stderr as cells land."""

    def test_serial_progress_lines(self, paper_platform, capsys):
        cells = _cells(paper_platform, strategies=("Only-CPU", "Only-GPU"))
        _warm_serial(cells)
        capsys.readouterr()
        run_sweep(cells, progress=True)
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[sweep]")]
        assert lines == ["[sweep] 1/2 cells", "[sweep] 2/2 cells"]

    def test_distributed_progress_counts_every_cell(
        self, paper_platform, capsys
    ):
        cells = _cells(paper_platform)
        _warm_serial(cells)
        server = WorkerServer().start()
        try:
            capsys.readouterr()
            run_sweep(cells, workers=[server.endpoint], progress=True)
        finally:
            server.stop()
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[sweep]")]
        assert len(lines) == len(cells)
        assert lines[-1] == f"[sweep] {len(cells)}/{len(cells)} cells"
