"""Distributed sweeps: parity with serial runs, fault tolerance, reports.

The acceptance bar is *byte*-identity: ``pickle.dumps`` of every artifact
from a distributed sweep must equal the serial ``run_sweep`` pickle, with
warm caches, across real worker subprocesses, and with a worker killed
mid-sweep (re-dispatch).
"""

import os
import pickle
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.cache as cache
from repro.bench.harness import SweepCell, run_sweep
from repro.distrib import DistributedSweepExecutor, WorkerServer, last_sweep_reports
from repro.errors import DistributedSweepError

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _cells(platform, strategies=("Only-CPU", "Only-GPU", "DP-Perf",
                                 "SP-Unified", "DP-Dep")):
    return [
        SweepCell(
            app="STREAM-Loop", strategy=strategy, platform=platform,
            n=2048, iterations=2, sync=False,
        )
        for strategy in strategies
    ]


def _warm_serial(cells):
    """Serial reference artifacts from a fully warm cache."""
    cache.clear_all()
    run_sweep(cells)  # populate the memo stores
    return run_sweep(cells)


def _spawn_worker(tmp_path, name, extra=()):
    """Launch ``python -m repro.distrib.worker``; returns (proc, endpoint)."""
    ready = tmp_path / f"{name}.ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker",
         "--listen", "127.0.0.1:0", "--ready-file", str(ready), *extra],
        env=env, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if ready.exists():
            endpoint = ready.read_text().strip()
            if endpoint:
                return proc, endpoint
        if proc.poll() is not None:
            raise RuntimeError(f"worker {name} exited at startup")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"worker {name} never became ready")


class TestInProcessWorker:
    """One in-process server: fast end-to-end checks without subprocesses."""

    def test_single_worker_byte_identical(self, paper_platform):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        server = WorkerServer().start()
        try:
            dist = run_sweep(cells, workers=[server.endpoint])
        finally:
            server.stop()
        for a, b in zip(serial, dist):
            assert pickle.dumps(a, 5) == pickle.dumps(b, 5)

    def test_worker_reports_account_for_every_cell(self, paper_platform):
        cells = _cells(paper_platform)
        server = WorkerServer().start()
        try:
            executor = DistributedSweepExecutor([server.endpoint])
            executor.run(cells)
        finally:
            server.stop()
        (report,) = executor.reports
        assert report.cells == len(cells)
        assert report.batches >= 1
        assert report.bytes_sent > 0 and report.bytes_received > 0
        assert report.alive
        assert last_sweep_reports()[0].cells == len(cells)

    def test_deterministic_cell_failure_raises(self, paper_platform):
        bad = [SweepCell(app="NoSuchApp", strategy="Only-CPU",
                         platform=paper_platform)]
        server = WorkerServer().start()
        try:
            with pytest.raises(DistributedSweepError, match="NoSuchApp"):
                run_sweep(bad, workers=[server.endpoint])
        finally:
            server.stop()

    def test_worker_survives_broken_client(self, paper_platform):
        """A client that sends garbage must not take the worker down."""
        server = WorkerServer().start()
        try:
            with socket.create_connection(server.address, timeout=5) as sock:
                sock.sendall(b"GET / HTTP/1.0\r\n\r\n")  # not our protocol
            # the worker must still serve a real sweep afterwards
            cells = _cells(paper_platform, strategies=("Only-CPU",))
            results = run_sweep(cells, workers=[server.endpoint])
            assert len(results) == 1
        finally:
            server.stop()


class TestDeadPool:
    def _dead_endpoint(self):
        """A loopback port with no listener behind it."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"127.0.0.1:{port}"

    def test_local_fallback_completes_the_sweep(self, paper_platform, capsys):
        cells = _cells(paper_platform, strategies=("Only-CPU", "Only-GPU"))
        serial = _warm_serial(cells)
        executor = DistributedSweepExecutor(
            [self._dead_endpoint()],
            connect_attempts=1, connect_backoff_s=0.0, connect_timeout_s=1.0,
        )
        results = executor.run(cells)
        assert [r.makespan_ms for r in results] == \
            [r.makespan_ms for r in serial]
        assert not executor.reports[0].alive

    def test_error_fallback_raises(self, paper_platform):
        cells = _cells(paper_platform, strategies=("Only-CPU",))
        executor = DistributedSweepExecutor(
            [self._dead_endpoint()], fallback="error",
            connect_attempts=1, connect_backoff_s=0.0, connect_timeout_s=1.0,
        )
        with pytest.raises(DistributedSweepError, match="could not be executed"):
            executor.run(cells)

    def test_bad_fallback_mode_rejected(self):
        with pytest.raises(DistributedSweepError, match="fallback"):
            DistributedSweepExecutor(["h:1"], fallback="retry")


class TestSubprocessWorkers:
    """The acceptance criterion: real worker processes, byte-identity."""

    def test_two_workers_byte_identical(self, paper_platform, tmp_path):
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        p1, e1 = _spawn_worker(tmp_path, "w1")
        p2, e2 = _spawn_worker(tmp_path, "w2")
        try:
            dist = run_sweep(cells, workers=[e1, e2])
        finally:
            p1.terminate()
            p2.terminate()
        for a, b in zip(serial, dist):
            assert pickle.dumps(a, 5) == pickle.dumps(b, 5)
        reports = last_sweep_reports()
        assert sum(r.cells for r in reports) == len(cells)
        # the handshake snapshot makes remote hit rates match warm local runs
        assert all(r.cache_misses == 0 for r in reports)

    def test_worker_killed_mid_sweep_redispatches(self, paper_platform, tmp_path):
        """A worker dying after one cell must not lose or corrupt results."""
        cells = _cells(paper_platform)
        serial = _warm_serial(cells)
        p1, e1 = _spawn_worker(tmp_path, "dying", extra=("--fail-after", "1"))
        p2, e2 = _spawn_worker(tmp_path, "healthy")
        try:
            dist = run_sweep(cells, workers=[e1, e2], batch_size=1)
        finally:
            p1.terminate()
            p2.terminate()
        for a, b in zip(serial, dist):
            assert pickle.dumps(a, 5) == pickle.dumps(b, 5)
        dead = [r for r in last_sweep_reports() if not r.alive]
        assert len(dead) == 1 and dead[0].endpoint == e1
