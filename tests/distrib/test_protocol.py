"""Wire framing: corrupt, short, alien, and oversized frames must be
rejected immediately — never hang a receiver on a read that cannot
complete."""

import pickle
import socket
import struct

import pytest

from repro.distrib import protocol
from repro.distrib.protocol import ConnectionClosedError
from repro.errors import WorkerProtocolError


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    yield a, b
    a.close()
    b.close()


class TestRoundTrip:
    def test_payload_survives(self, pair):
        a, b = pair
        sent = protocol.send_frame(a, protocol.MSG_BATCH, {"cells": [1, 2, 3]})
        msg_type, payload, received = protocol.recv_frame(b)
        assert msg_type == protocol.MSG_BATCH
        assert payload == {"cells": [1, 2, 3]}
        assert sent == received > protocol.HEADER.size

    def test_expect_frame_matches(self, pair):
        a, b = pair
        protocol.send_frame(a, protocol.MSG_WELCOME, {"pid": 1})
        payload, _ = protocol.expect_frame(b, protocol.MSG_WELCOME)
        assert payload == {"pid": 1}

    def test_expect_frame_surfaces_peer_error(self, pair):
        a, b = pair
        protocol.send_frame(a, protocol.MSG_ERROR, {"error": "boom"})
        with pytest.raises(WorkerProtocolError, match="boom"):
            protocol.expect_frame(b, protocol.MSG_RESULT)

    def test_expect_frame_rejects_wrong_type(self, pair):
        a, b = pair
        protocol.send_frame(a, protocol.MSG_BYE, {})
        with pytest.raises(WorkerProtocolError, match="expected message type"):
            protocol.expect_frame(b, protocol.MSG_RESULT)


class TestCorruptFrames:
    def test_bad_magic(self, pair):
        a, b = pair
        a.sendall(protocol.HEADER.pack(b"EVIL", protocol.PROTOCOL_VERSION,
                                       protocol.MSG_BATCH, 0))
        with pytest.raises(WorkerProtocolError, match="magic"):
            protocol.recv_frame(b)

    def test_version_mismatch(self, pair):
        a, b = pair
        a.sendall(protocol.HEADER.pack(protocol.MAGIC, 255,
                                       protocol.MSG_BATCH, 0))
        with pytest.raises(WorkerProtocolError, match="version"):
            protocol.recv_frame(b)

    def test_unknown_message_type(self, pair):
        a, b = pair
        a.sendall(protocol.HEADER.pack(protocol.MAGIC,
                                       protocol.PROTOCOL_VERSION, 99, 0))
        with pytest.raises(WorkerProtocolError, match="unknown message type"):
            protocol.recv_frame(b)

    def test_oversized_length_rejected_before_payload(self, pair):
        """A corrupt length prefix must not trigger a gigabyte read."""
        a, b = pair
        a.sendall(protocol.HEADER.pack(protocol.MAGIC,
                                       protocol.PROTOCOL_VERSION,
                                       protocol.MSG_BATCH,
                                       protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(WorkerProtocolError, match="ceiling"):
            protocol.recv_frame(b)

    def test_garbage_payload(self, pair):
        a, b = pair
        junk = b"\x00not a pickle\xff"
        a.sendall(protocol.HEADER.pack(protocol.MAGIC,
                                       protocol.PROTOCOL_VERSION,
                                       protocol.MSG_BATCH, len(junk)))
        a.sendall(junk)
        with pytest.raises(WorkerProtocolError, match="unpickle"):
            protocol.recv_frame(b)

    def test_short_frame_peer_died_mid_payload(self, pair):
        a, b = pair
        body = pickle.dumps({"x": 1})
        a.sendall(protocol.HEADER.pack(protocol.MAGIC,
                                       protocol.PROTOCOL_VERSION,
                                       protocol.MSG_BATCH, len(body)))
        a.sendall(body[: len(body) // 2])
        a.close()
        with pytest.raises(ConnectionClosedError, match="outstanding"):
            protocol.recv_frame(b)

    def test_clean_close_between_frames(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosedError):
            protocol.recv_frame(b)

    def test_hung_peer_surfaces_as_timeout(self, pair):
        """A peer that sends nothing hits the socket timeout, not a hang."""
        a, b = pair
        b.settimeout(0.05)
        with pytest.raises(socket.timeout):
            protocol.recv_frame(b)

    def test_truncated_header(self, pair):
        a, b = pair
        a.sendall(b"RP")  # 2 of 10 header bytes
        a.close()
        with pytest.raises(ConnectionClosedError):
            protocol.recv_frame(b)


class TestSendLimits:
    def test_oversized_send_rejected(self, pair, monkeypatch):
        a, _ = pair
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(WorkerProtocolError, match="exceeds"):
            protocol.send_frame(a, protocol.MSG_BATCH, "x" * 64)

    def test_header_layout_is_stable(self):
        # the frame header is part of the cross-version contract
        assert protocol.HEADER.size == struct.calcsize(">4sBBI") == 10
        assert protocol.MAGIC == b"RPRO"
