"""Worker endpoint parsing: every malformed shape gets a clear error."""

import pytest

from repro.distrib.endpoints import (
    format_endpoint,
    parse_endpoint,
    parse_endpoints,
)
from repro.errors import ConfigurationError


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("worker1:9000") == ("worker1", 9000)

    def test_ipv4(self):
        assert parse_endpoint("127.0.0.1:8421") == ("127.0.0.1", 8421)

    def test_bracketed_ipv6(self):
        assert parse_endpoint("[::1]:9000") == ("::1", 9000)

    def test_whitespace_stripped(self):
        assert parse_endpoint("  h:1  ") == ("h", 1)

    @pytest.mark.parametrize("bad", [
        "", "   ", "nonsense", "host:", ":9000", "host:abc",
        "host:0", "host:-1", "host:99999", "::1:9000", "[::1]9000",
        "[::1", "host:90:00",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConfigurationError) as err:
            parse_endpoint(bad)
        # the message names the expected shape, never a bare traceback
        assert "HOST:PORT" in str(err.value)

    def test_ephemeral_port_opt_in(self):
        """Port 0 is a valid *listen* address but never a connect target."""
        assert parse_endpoint("127.0.0.1:0", allow_ephemeral=True) == \
            ("127.0.0.1", 0)
        with pytest.raises(ConfigurationError):
            parse_endpoint("127.0.0.1:0")


class TestParseEndpoints:
    def test_many_and_comma_separated(self):
        assert parse_endpoints(["a:1,b:2", "c:3"]) == [
            ("a", 1), ("b", 2), ("c", 3)
        ]

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError, match="more than once"):
            parse_endpoints(["a:1", "a:1"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_endpoints([])
        with pytest.raises(ConfigurationError):
            parse_endpoints([" , "])


class TestFormatEndpoint:
    def test_round_trip(self):
        for text in ("worker1:9000", "127.0.0.1:8421", "[::1]:9000"):
            assert format_endpoint(parse_endpoint(text)) == text
