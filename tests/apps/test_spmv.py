"""SpMV: the imbalanced extension workload."""

import numpy as np
import pytest

from repro.apps.spmv import SpMV, row_lengths
from repro.core.analyzer import analyze
from repro.core.classes import AppClass
from repro.runtime.functional import run_chunked, run_sequential
from repro.runtime.kernels import AccessPattern


@pytest.fixture
def app():
    return SpMV()


class TestStructure:
    def test_classified_sk_one(self, app):
        report = analyze(app, n=512)
        assert report.app_class is AppClass.SK_ONE
        assert report.best_strategy == "SP-Single"

    def test_row_lengths_deterministic_and_sorted(self):
        a = row_lengths(1000)
        b = row_lengths(1000)
        np.testing.assert_array_equal(a, b)
        assert (np.diff(a) <= 0).all()  # degree-ordered
        assert (a >= 1).all()

    def test_kernel_carries_work_prefix(self, app):
        program = app.program(256)
        kernel = program.kernels[0]
        assert kernel.imbalanced
        assert kernel.total_work == float(kernel.work_prefix[-1])

    def test_csr_arrays_are_prefix_accesses(self, app):
        program = app.program(256)
        kernel = program.kernels[0]
        patterns = {a.array.name: a.pattern for a in kernel.accesses}
        assert patterns["vals"] is AccessPattern.PREFIX
        assert patterns["cols"] is AccessPattern.PREFIX
        assert patterns["x"] is AccessPattern.FULL

    def test_prefix_regions_follow_row_ptr(self, app):
        program = app.program(128)
        kernel = program.kernels[0]
        vals_access = next(
            a for a in kernel.accesses if a.array.name == "vals"
        )
        region = vals_access.region(10, 20)
        row_ptr = app.arrays(128)["row_ptr"]
        assert (region.start, region.end) == (row_ptr[10], row_ptr[20])


class TestNumerics:
    def test_matches_reference(self, app):
        n = 200
        arrays = app.arrays(n, seed=6)
        out = run_sequential(app.program(n), arrays)
        np.testing.assert_allclose(
            out["y"], SpMV.reference(arrays, n), rtol=1e-4, atol=1e-4
        )

    @pytest.mark.parametrize("chunks", [2, 7, 31])
    def test_partitioning_is_exact(self, app, chunks):
        n = 200
        arrays = app.arrays(n, seed=7)
        whole = run_sequential(app.program(n), arrays)
        parts = run_chunked(app.program(n), arrays, n_chunks=chunks)
        np.testing.assert_array_equal(whole["y"], parts["y"])

    def test_empty_rows_handled(self, app):
        # fabricate a matrix with empty rows via a zero-length segment
        n = 4
        arrays = {
            "row_ptr": np.array([0, 2, 2, 5, 6]),
            "vals": np.array([1, 2, 3, 4, 5, 6], dtype=np.float32),
            "cols": np.array([0, 1, 1, 2, 3, 0], dtype=np.int32),
            "x": np.ones(n, dtype=np.float32),
            "y": np.zeros(n, dtype=np.float32),
        }
        from repro.apps.spmv import _spmv_impl

        _spmv_impl(arrays, 0, 4, 4, n_rows=4)
        np.testing.assert_allclose(arrays["y"], [3.0, 0.0, 12.0, 6.0])


class TestImbalancedBehaviour:
    def test_sp_single_splits_by_work(self, app, paper_platform):
        from repro.partition import get_strategy

        plan = get_strategy("SP-Single").plan(
            app.program(), paper_platform
        )
        decision = plan.decision.notes["imbalanced"]
        # with degree-ordered rows the GPU's index share is much smaller
        # than its work share
        assert decision.gpu_index_fraction < decision.gpu_fraction * 0.7

    def test_weighted_split_beats_uniform_split(self, app, paper_platform):
        """The ref-[9] headline on our substrate."""
        from repro.partition import (
            PlanConfig,
            dynamic_as_static_plan,
            get_strategy,
            run_plan,
        )

        program = app.program()
        plan = get_strategy("SP-Single").plan(program, paper_platform)
        weighted = run_plan(plan, paper_platform)
        work_ratio = plan.decision.notes["imbalanced"].gpu_fraction
        uniform = run_plan(
            dynamic_as_static_plan(
                program, paper_platform, work_ratio, config=PlanConfig()
            ),
            paper_platform,
        )
        assert weighted.makespan_s < uniform.makespan_s * 0.9

    def test_sp_single_beats_baselines(self, app, paper_platform):
        from repro.partition import get_strategy

        program = app.program()
        sp = get_strategy("SP-Single").run(program, paper_platform)
        og = get_strategy("Only-GPU").run(program, paper_platform)
        oc = get_strategy("Only-CPU").run(program, paper_platform)
        assert sp.makespan_s < og.makespan_s
        assert sp.makespan_s < oc.makespan_s

    def test_work_aware_dp_perf_handles_imbalance(self, app, paper_platform):
        from repro.partition import get_strategy

        program = app.program()
        dp = get_strategy("DP-Perf").run(program, paper_platform)
        dd = get_strategy("DP-Dep").run(program, paper_platform)
        assert dp.makespan_s <= dd.makespan_s * 1.12  # Proposition 1 holds
