"""STREAM-Seq and STREAM-Loop."""

import numpy as np
import pytest

from repro.apps.stream import SCALAR, StreamLoop, StreamSeq
from repro.runtime.functional import run_chunked, run_sequential
from repro.units import gb_to_bytes


class TestMetadata:
    def test_table2_rows(self):
        assert StreamSeq().paper_class == "MK-Seq"
        assert StreamLoop().paper_class == "MK-Loop"
        assert StreamSeq().paper_n == 62_914_560

    def test_dataset_is_07gb(self):
        program = StreamSeq().program()
        total = sum(spec.nbytes for spec in program.arrays.values())
        assert total == pytest.approx(gb_to_bytes(0.755), rel=0.05)

    def test_four_kernels_in_order(self):
        program = StreamSeq().program(1024)
        assert [k.name for k in program.kernels] == [
            "copy", "scale", "add", "triad"
        ]

    def test_seq_is_one_pass(self):
        assert len(StreamSeq().program(1024).invocations) == 4

    def test_loop_iterates(self):
        program = StreamLoop().program(1024, iterations=5)
        assert len(program.invocations) == 20

    def test_sync_optional_and_off_by_default(self):
        assert not StreamSeq().needs_sync
        program = StreamSeq().program(1024)
        assert not any(inv.sync_after for inv in program.invocations)
        synced = StreamSeq().program(1024, sync=True)
        assert all(inv.sync_after for inv in synced.invocations)


class TestNumerics:
    def test_one_pass_matches_reference(self):
        app = StreamSeq()
        n = 1000
        arrays = app.arrays(n, seed=20)
        out = run_sequential(app.program(n), arrays)
        ref = app.reference_pass(arrays)
        for name in ("a", "b", "c"):
            np.testing.assert_allclose(out[name], ref[name], rtol=1e-6)

    def test_kernel_semantics(self):
        app = StreamSeq()
        n = 100
        arrays = app.arrays(n, seed=21)
        out = run_sequential(app.program(n), arrays)
        a0 = arrays["a"]
        # copy: c=a0 ; scale: b=k*a0 ; add: c=a0+k*a0 ; triad: a=k*a0+k*c
        expected_b = (SCALAR * a0).astype(np.float32)
        expected_c = a0 + expected_b
        expected_a = (expected_b + SCALAR * expected_c).astype(np.float32)
        np.testing.assert_allclose(out["b"], expected_b, rtol=1e-6)
        np.testing.assert_allclose(out["c"], expected_c, rtol=1e-6)
        np.testing.assert_allclose(out["a"], expected_a, rtol=1e-6)

    @pytest.mark.parametrize("chunks", [2, 9])
    @pytest.mark.parametrize("sync", [False, True])
    def test_partitioning_exact_with_and_without_sync(self, chunks, sync):
        app = StreamLoop()
        n = 512
        arrays = app.arrays(n, seed=22)
        whole = run_sequential(app.program(n, iterations=3, sync=sync), arrays)
        parts = run_chunked(app.program(n, iterations=3, sync=sync), arrays,
                            n_chunks=chunks)
        for name in ("a", "b", "c"):
            np.testing.assert_array_equal(whole[name], parts[name])

    def test_loop_applies_pass_repeatedly(self):
        app = StreamLoop()
        n = 100
        arrays = app.arrays(n, seed=23)
        once = run_sequential(app.program(n, iterations=1), arrays)
        twice = run_sequential(app.program(n, iterations=2), arrays)
        again = run_sequential(app.program(n, iterations=1), once)
        for name in ("a", "b", "c"):
            np.testing.assert_allclose(twice[name], again[name], rtol=1e-5)
