"""MatrixMul: kernel correctness and structure."""

import numpy as np
import pytest

from repro.apps.matrixmul import MatrixMul
from repro.runtime.functional import run_chunked, run_sequential
from repro.runtime.kernels import AccessPattern
from repro.units import gb_to_bytes


@pytest.fixture
def app():
    return MatrixMul()


class TestMetadata:
    def test_table2_row(self, app):
        assert app.paper_class == "SK-One"
        assert app.origin == "Nvidia OpenCL SDK"
        assert not app.needs_sync

    def test_paper_size_matches_04gb(self, app):
        program = app.program()
        total = sum(spec.nbytes for spec in program.arrays.values())
        assert total == pytest.approx(gb_to_bytes(0.45), rel=0.1)  # ~0.4 GB

    def test_b_is_full_access(self, app):
        program = app.program(64)
        kernel = program.kernels[0]
        patterns = {a.array.name: a.pattern for a in kernel.accesses}
        assert patterns["B"] is AccessPattern.FULL
        assert patterns["A"] is AccessPattern.PARTITIONED


class TestNumerics:
    def test_matches_numpy(self, app):
        n = 32
        arrays = app.arrays(n, seed=3)
        out = run_sequential(app.program(n), arrays)
        np.testing.assert_allclose(
            out["C"], app.reference(arrays, n), rtol=1e-4, atol=1e-4
        )

    @pytest.mark.parametrize("chunks", [2, 5, 32])
    def test_row_partitioning_is_exact(self, app, chunks):
        # row-chunked GEMM must be bit-identical to whole GEMM
        n = 32
        arrays = app.arrays(n, seed=4)
        whole = run_sequential(app.program(n), arrays)
        parts = run_chunked(app.program(n), arrays, n_chunks=chunks)
        np.testing.assert_array_equal(whole["C"], parts["C"])

    def test_inputs_not_modified(self, app):
        n = 16
        arrays = app.arrays(n)
        before = arrays["A"].copy()
        run_sequential(app.program(n), arrays)
        np.testing.assert_array_equal(arrays["A"], before)


class TestCostModel:
    def test_compute_dominates_on_paper_platform(self, app, paper_platform):
        # dense GEMM at N=6144 is compute-bound on both devices
        program = app.program()
        kernel = program.kernels[0]
        n = program.invocations[0].n
        for device in paper_platform.devices:
            ce, me = kernel.cost.effs(device.kind)
            t_flops = kernel.cost.flops(n, n) / (device.spec.peak_flops_sp * ce)
            t_mem = kernel.cost.mem_bytes(n, n) / (device.spec.mem_bandwidth * me)
            assert t_flops > t_mem

    def test_flops_are_2n3(self, app):
        program = app.program(100)
        kernel = program.kernels[0]
        assert kernel.cost.flops(100, 100) == pytest.approx(2 * 100**3)
