"""HotSpot: stencil correctness and thermal behaviour."""

import numpy as np
import pytest

from repro.apps.hotspot import AMBIENT_TEMP, HotSpot
from repro.runtime.functional import run_chunked, run_sequential
from repro.units import gb_to_bytes


@pytest.fixture
def app():
    return HotSpot()


class TestMetadata:
    def test_table2_row(self, app):
        assert app.paper_class == "SK-Loop"
        assert app.origin == "Rodinia benchmark suite"
        assert app.needs_sync
        assert app.paper_n == 8192

    def test_grid_is_075gb(self, app):
        program = app.program()
        total = sum(spec.nbytes for spec in program.arrays.values())
        assert total == pytest.approx(gb_to_bytes(0.8), rel=0.1)

    def test_row_wise_partitioning(self, app):
        program = app.program(64)
        kernel = program.kernels[0]
        partitioned = [a for a in kernel.accesses
                       if a.pattern.name == "PARTITIONED"]
        assert all(a.elems_per_index == 64 for a in partitioned)


class TestNumerics:
    def test_uniform_grid_without_power_relaxes_to_ambient(self, app):
        n = 16
        arrays = {
            "temp_a": np.full(n * n, 100.0, dtype=np.float32),
            "temp_b": np.zeros(n * n, dtype=np.float32),
            "power": np.zeros(n * n, dtype=np.float32),
        }
        out = run_sequential(app.program(n, iterations=40), arrays)
        # temperatures decay toward the ambient coupling point
        assert abs(out["temp_a"].mean() - AMBIENT_TEMP) < \
            abs(100.0 - AMBIENT_TEMP)

    def test_powered_cell_heats_up(self, app):
        n = 16
        arrays = {
            "temp_a": np.full(n * n, AMBIENT_TEMP, dtype=np.float32),
            "temp_b": np.zeros(n * n, dtype=np.float32),
            "power": np.zeros(n * n, dtype=np.float32),
        }
        arrays["power"][n * 8 + 8] = 10.0  # a hot transistor
        out = run_sequential(app.program(n, iterations=4), arrays)
        assert out["temp_a"][n * 8 + 8] > AMBIENT_TEMP

    def test_heat_diffuses_to_neighbours(self, app):
        n = 16
        arrays = {
            "temp_a": np.full(n * n, AMBIENT_TEMP, dtype=np.float32),
            "temp_b": np.zeros(n * n, dtype=np.float32),
            "power": np.zeros(n * n, dtype=np.float32),
        }
        centre = n * 8 + 8
        arrays["temp_a"][centre] = 200.0
        out = run_sequential(app.program(n, iterations=2), arrays)
        assert out["temp_a"][centre - 1] > AMBIENT_TEMP + 0.5
        assert out["temp_a"][centre + n] > AMBIENT_TEMP + 0.5

    @pytest.mark.parametrize("chunks", [2, 5])
    def test_partitioning_is_exact(self, app, chunks):
        # per-iteration sync makes halo reads safe for any chunking
        n = 24
        arrays = app.arrays(n, seed=14)
        whole = run_sequential(app.program(n, iterations=3), arrays)
        parts = run_chunked(app.program(n, iterations=3), arrays,
                            n_chunks=chunks)
        np.testing.assert_array_equal(whole["temp_a"], parts["temp_a"])
        np.testing.assert_array_equal(whole["temp_b"], parts["temp_b"])


class TestPlatformBehaviour:
    def test_memory_bound_kernel(self, app, paper_platform):
        # HotSpot's roofline is the memory side on both devices
        program = app.program(512)
        kernel = program.kernels[0]
        for device in paper_platform.devices:
            ce, me = kernel.cost.effs(device.kind)
            t_flops = kernel.cost.flops(512, 512) / (
                device.spec.peak_flops_sp * ce
            )
            t_mem = kernel.cost.mem_bytes(512, 512) / (
                device.spec.mem_bandwidth * me
            )
            assert t_mem > t_flops
