"""Application registry and the synthetic structure suite."""

import pytest

from repro.apps import all_applications, get_application, paper_applications
from repro.apps.registry import PAPER_ORDER
from repro.apps.suite import SUITES, realize_program, synthetic_suite
from repro.errors import ConfigurationError


class TestRegistry:
    def test_paper_order_matches_table2(self):
        assert PAPER_ORDER == (
            "MatrixMul", "BlackScholes", "Nbody", "HotSpot",
            "STREAM-Seq", "STREAM-Loop",
        )

    def test_paper_applications(self):
        apps = paper_applications()
        assert [a.name for a in apps] == list(PAPER_ORDER)

    def test_all_applications_superset(self):
        names = {a.name for a in all_applications()}
        assert set(PAPER_ORDER) <= names
        assert "Cholesky" in names

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_application("FizzBuzz")

    def test_fresh_instances(self):
        assert get_application("Nbody") is not get_application("Nbody")


class TestSyntheticSuite:
    def test_deterministic(self):
        assert synthetic_suite() == synthetic_suite()

    def test_names_unique(self):
        names = [d.name for d in synthetic_suite()]
        assert len(names) == len(set(names))

    def test_suites_constant(self):
        assert set(d.suite for d in synthetic_suite()) == set(SUITES)

    def test_realized_programs_valid(self):
        # every descriptor realizes into a structurally valid program
        for desc in synthetic_suite()[::9]:  # sample
            program = realize_program(desc, n=128)
            assert program.invocations
            assert len(program.kernels) == desc.n_kernels or desc.flow == "dag"
