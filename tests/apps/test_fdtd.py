"""FDTD: the halo-coupled MK-Loop extension workload."""

import numpy as np
import pytest

from repro.apps.fdtd import FDTD
from repro.core.analyzer import analyze
from repro.core.classes import AppClass
from repro.runtime.functional import run_chunked, run_sequential


@pytest.fixture
def app():
    return FDTD()


class TestStructure:
    def test_classified_mk_loop(self, app):
        report = analyze(app, n=2048, iterations=4)
        assert report.app_class is AppClass.MK_LOOP
        assert report.best_strategy == "SP-Unified"

    def test_two_kernels(self, app):
        program = app.program(1024, iterations=3)
        assert [k.name for k in program.kernels] == ["updateE", "updateH"]
        assert len(program.invocations) == 6

    def test_halo_reads_declared(self, app):
        program = app.program(1024)
        for kernel in program.kernels:
            halo_reads = [a for a in kernel.accesses if a.halo == 1]
            assert len(halo_reads) == 1

    def test_halo_region_clamped(self, app):
        program = app.program(1024)
        update_e = program.kernels[0]
        h_access = next(a for a in update_e.accesses if a.array.name == "hy")
        assert h_access.region(0, 10) == h_access.region(0, 10)
        assert h_access.region(0, 10).start == 0
        assert h_access.region(1014, 1024).end == 1024
        region = h_access.region(100, 200)
        assert (region.start, region.end) == (99, 201)

    def test_halo_creates_neighbour_dependences(self, app):
        from repro.runtime.dependence import build_dependences
        from repro.runtime.graph import chunk_ranges, expand_program

        program = app.program(1000, iterations=1)
        graph = expand_program(
            program,
            lambda inv: [
                (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, 4)
            ],
        )
        build_dependences(graph)
        # updateH chunk 1 must depend on updateE chunks 0, 1, 2 (halo)
        h_chunk_1 = graph.instances[5]
        assert h_chunk_1.kernel.name == "updateH"
        deps = {graph.instances[d].instance_id for d in h_chunk_1.deps}
        assert {0, 1, 2} <= deps


class TestPhysics:
    def test_pulse_propagates(self, app):
        n = 400
        arrays = app.arrays(n)
        out = run_sequential(app.program(n, iterations=50), arrays)
        # the field leaves the initial pulse region
        centre = slice(n // 2 - 20, n // 2 + 20)
        assert np.abs(out["ez"]).sum() > np.abs(out["ez"][centre]).sum()

    def test_energy_bounded(self, app):
        n = 400
        arrays = app.arrays(n)
        out = run_sequential(app.program(n, iterations=100), arrays)
        assert FDTD.field_energy(out) < 4 * FDTD.field_energy(arrays)

    @pytest.mark.parametrize("chunks", [2, 5, 13])
    def test_chunked_identical_without_sync(self, app, chunks):
        """Halo dependences alone keep any chunking exact — no taskwait."""
        n = 300
        arrays = app.arrays(n)
        seq = run_sequential(app.program(n, iterations=8), arrays)
        par = run_chunked(app.program(n, iterations=8), arrays,
                          n_chunks=chunks)
        np.testing.assert_array_equal(seq["ez"], par["ez"])
        np.testing.assert_array_equal(seq["hy"], par["hy"])


class TestStrategyBehaviour:
    def test_sp_unified_best(self, app, paper_platform):
        from repro.partition import get_strategy

        program = app.program()
        times = {
            s: get_strategy(s).run(program, paper_platform).makespan_s
            for s in ("Only-GPU", "Only-CPU", "SP-Unified", "SP-Varied")
        }
        assert times["SP-Unified"] == min(times.values())
        assert times["SP-Varied"] == max(times.values())

    def test_halo_traffic_only_at_boundary(self, app, paper_platform):
        """SP-Unified moves only boundary halos per step, not the fields."""
        from repro.partition import get_strategy

        program = app.program(iterations=10)
        result = get_strategy("SP-Unified").run(program, paper_platform)
        field_bytes = 2 * app.paper_n * 4
        # steady-state link traffic stays far below re-transferring the
        # fields every iteration
        assert result.transfer_bytes["h2d"] < field_bytes * 2
