"""Blocked Cholesky (the MK-DAG extension workload)."""

import numpy as np
import pytest

from repro.apps.cholesky import Cholesky
from repro.core.classifier import classify_program
from repro.core.classes import AppClass
from repro.errors import ConfigurationError
from repro.runtime.dependence import build_dependences
from repro.runtime.functional import run_chunked
from repro.runtime.graph import expand_program


@pytest.fixture
def app():
    return Cholesky(tile_size=24)


class TestStructure:
    def test_classified_mk_dag(self, app):
        assert classify_program(app.program(4)) is AppClass.MK_DAG

    def test_task_counts(self, app):
        # t potrf + t(t-1)/2 trsm + t(t-1)/2 syrk + t(t-1)(t-2)/6 gemm
        t = 5
        program = app.program(t)
        names = [inv.kernel.name for inv in program.invocations]
        assert names.count("potrf") == t
        assert names.count("trsm") == t * (t - 1) // 2
        assert names.count("syrk") == t * (t - 1) // 2
        assert names.count("gemm") == t * (t - 1) * (t - 2) // 6

    def test_dag_has_parallelism(self, app):
        # some invocations must be mutually unordered (that's the point)
        graph = expand_program(app.program(4),
                               lambda inv: [(0, inv.n, None, None)])
        build_dependences(graph)
        graph.validate_acyclic()
        roots = graph.roots()
        assert len(roots) == 1  # only potrf(0) is initially ready

    def test_rejects_iterations(self, app):
        with pytest.raises(ConfigurationError):
            app.program(4, iterations=3)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ConfigurationError):
            Cholesky(tile_size=0)


class TestNumerics:
    @pytest.mark.parametrize("t", [2, 4])
    def test_factorization_correct(self, app, t):
        b = app.tile_size
        arrays = app.arrays(t, seed=30)
        original = Cholesky.assemble_lower(arrays, t, b)
        full = original + np.tril(original, -1).T  # symmetrize
        out = run_chunked(app.program(t), arrays, n_chunks=1)
        L = Cholesky.assemble_lower(out, t, b)
        rel_err = np.abs(L @ L.T - full).max() / np.abs(full).max()
        assert rel_err < 1e-5

    def test_matches_numpy_cholesky(self, app):
        t, b = 3, app.tile_size
        arrays = app.arrays(t, seed=31)
        original = Cholesky.assemble_lower(arrays, t, b)
        full = original + np.tril(original, -1).T
        out = run_chunked(app.program(t), arrays, n_chunks=1)
        L = Cholesky.assemble_lower(out, t, b)
        ref = np.linalg.cholesky(full.astype(np.float64))
        np.testing.assert_allclose(L, ref, rtol=5e-3, atol=5e-3)


class TestScheduling:
    def test_dynamic_strategies_execute_dag(self, app, paper_platform):
        from repro.partition import get_strategy

        program = app.program(4)
        for name in ("DP-Perf", "DP-Dep"):
            result = get_strategy(name).run(program, paper_platform)
            computes = result.trace.by_category("compute")
            assert len(computes) == len(program.invocations)

    def test_dp_perf_not_worse_than_dp_dep_at_scale(self, paper_platform):
        """Proposition 1 on the MK-DAG class (cf. paper ref [20])."""
        from repro.partition import get_strategy

        program = Cholesky(tile_size=1024).program(8)
        t_perf = get_strategy("DP-Perf").run(program, paper_platform)
        t_dep = get_strategy("DP-Dep").run(program, paper_platform)
        assert t_perf.makespan_s <= t_dep.makespan_s * 1.12
