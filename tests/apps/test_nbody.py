"""Nbody: physics sanity and double-buffered structure."""

import numpy as np
import pytest

from repro.apps.nbody import Nbody
from repro.runtime.functional import run_chunked, run_sequential


@pytest.fixture
def app():
    return Nbody()


class TestMetadata:
    def test_table2_row(self, app):
        assert app.paper_class == "SK-Loop"
        assert app.needs_sync  # per-iteration combination at the host
        assert app.paper_n == 1_048_576

    def test_state_is_64mb_per_buffer_pair(self, app):
        program = app.program()
        pos_vel = sum(
            spec.nbytes for name, spec in program.arrays.items()
            if name.endswith("_a")
        )
        assert pos_vel == pytest.approx(64 * 2**20 / 2, rel=0.05)

    def test_single_kernel_despite_double_buffering(self, app):
        program = app.program(64, iterations=4)
        assert len(program.kernels) == 1

    def test_buffers_alternate_per_iteration(self, app):
        program = app.program(64, iterations=2)
        k_even = program.invocations[0].kernel
        k_odd = program.invocations[1].kernel
        writes_even = {a.array.name for a in k_even.accesses if a.mode.writes}
        writes_odd = {a.array.name for a in k_odd.accesses if a.mode.writes}
        assert writes_even == {"pos_b", "vel_b"}
        assert writes_odd == {"pos_a", "vel_a"}


class TestPhysics:
    def test_momentum_conserved(self, app):
        # symmetric pairwise forces conserve total momentum
        n = 64
        arrays = app.arrays(n, seed=11)
        out = run_sequential(app.program(n, iterations=2), arrays)
        p0 = Nbody.momentum(arrays, n, "a")
        p2 = Nbody.momentum(out, n, "a")  # after 2 steps state is back in a
        np.testing.assert_allclose(p2, p0, atol=5e-2)

    def test_bodies_attract(self, app):
        # two bodies at rest drift toward each other
        arrays = {
            "pos_a": np.array([[-1, 0, 0, 1], [1, 0, 0, 1]],
                              dtype=np.float32).ravel(),
            "vel_a": np.zeros(8, dtype=np.float32),
            "pos_b": np.zeros(8, dtype=np.float32),
            "vel_b": np.zeros(8, dtype=np.float32),
        }
        out = run_sequential(app.program(2, iterations=1), arrays)
        pos = out["pos_b"].reshape(2, 4)
        assert pos[0, 0] > -1.0  # moved right
        assert pos[1, 0] < 1.0   # moved left

    @pytest.mark.parametrize("chunks", [2, 7])
    def test_partitioning_is_exact(self, app, chunks):
        n = 48
        arrays = app.arrays(n, seed=12)
        whole = run_sequential(app.program(n, iterations=3), arrays)
        parts = run_chunked(app.program(n, iterations=3), arrays,
                            n_chunks=chunks)
        for name in ("pos_a", "vel_a", "pos_b", "vel_b"):
            np.testing.assert_array_equal(whole[name], parts[name])

    def test_masses_positive(self, app):
        arrays = app.arrays(100, seed=13)
        masses = arrays["pos_a"].reshape(100, 4)[:, 3]
        assert (masses > 0).all()
