"""BlackScholes: pricing correctness and transfer-boundedness."""

import numpy as np
import pytest

from repro.apps.blackscholes import BlackScholes, RISKFREE
from repro.runtime.functional import run_chunked, run_sequential
from repro.units import gb_to_bytes


@pytest.fixture
def app():
    return BlackScholes()


class TestMetadata:
    def test_table2_row(self, app):
        assert app.paper_class == "SK-One"
        assert app.paper_n == 80_530_632

    def test_dataset_is_15gb(self, app):
        program = app.program()
        total = sum(spec.nbytes for spec in program.arrays.values())
        assert total == pytest.approx(gb_to_bytes(1.5), rel=0.1)


class TestNumerics:
    def test_put_call_parity(self, app):
        n = 5000
        arrays = app.arrays(n, seed=7)
        out = run_sequential(app.program(n), arrays)
        gap = app.put_call_parity_gap(out)
        assert np.abs(gap).max() < 1e-2  # float32 storage of the prices

    def test_prices_nonnegative(self, app):
        n = 5000
        out = run_sequential(app.program(n), app.arrays(n, seed=8))
        assert (out["call"] >= -1e-5).all()
        assert (out["put"] >= -1e-5).all()

    def test_call_below_spot(self, app):
        # a call is never worth more than the underlying
        n = 5000
        arrays = app.arrays(n, seed=9)
        out = run_sequential(app.program(n), arrays)
        assert (out["call"] <= arrays["S"] + 1e-4).all()

    def test_deep_in_the_money_call(self, app):
        # S >> K, short expiry: call ~ S - K e^{-rT}
        arrays = {
            "S": np.full(4, 100.0, dtype=np.float32),
            "K": np.full(4, 1.0, dtype=np.float32),
            "T": np.full(4, 0.25, dtype=np.float32),
            "call": np.zeros(4, dtype=np.float32),
            "put": np.zeros(4, dtype=np.float32),
        }
        out = run_sequential(app.program(4), arrays)
        expected = 100.0 - 1.0 * np.exp(-RISKFREE * 0.25)
        np.testing.assert_allclose(out["call"], expected, rtol=1e-3)

    @pytest.mark.parametrize("chunks", [3, 11])
    def test_partitioning_is_exact(self, app, chunks):
        n = 4096
        arrays = app.arrays(n, seed=10)
        whole = run_sequential(app.program(n), arrays)
        parts = run_chunked(app.program(n), arrays, n_chunks=chunks)
        np.testing.assert_array_equal(whole["call"], parts["call"])
        np.testing.assert_array_equal(whole["put"], parts["put"])


class TestTransferBoundedness:
    def test_gpu_transfer_dwarfs_kernel(self, app, paper_platform):
        """Paper: transfers take ~37.5x the GPU kernel time."""
        program = app.program()
        kernel = program.kernels[0]
        n = program.invocations[0].n
        gpu = paper_platform.gpu
        t_kernel = kernel.chunk_time(gpu, n, n, include_launch=False)
        link = paper_platform.link_for("gpu0")
        t_transfer = link.transfer_time(kernel.input_bytes(0, n)) + \
            link.transfer_time(kernel.output_bytes(0, n))
        ratio = t_transfer / t_kernel
        assert 20 <= ratio <= 55  # paper: 37.5x
