"""Application characterization."""

import pytest

from repro.apps import get_application, paper_applications
from repro.apps.characterize import (
    characterize,
    format_characterization,
)


@pytest.fixture(scope="module")
def chars(request):
    from repro.platform import shen_icpp15_platform

    platform = shen_icpp15_platform()
    return {
        app.name: characterize(app, platform)
        for app in paper_applications()
    }


class TestKernelCharacter:
    def test_matrixmul_is_compute_intense(self, chars):
        gemm = chars["MatrixMul"].kernels[0]
        stream = chars["STREAM-Seq"].kernels[0]
        assert gemm.arithmetic_intensity > 100 * stream.arithmetic_intensity

    def test_blackscholes_is_transfer_bound(self, chars):
        bs = chars["BlackScholes"].kernels[0]
        assert bs.transfer_bound
        assert bs.compute_transfer_gap > 10

    def test_matrixmul_not_transfer_bound(self, chars):
        assert not chars["MatrixMul"].kernels[0].transfer_bound

    def test_hotspot_cpu_competitive(self, chars):
        hs = chars["HotSpot"].kernels[0]
        # per pass (with transfers) the CPU side wins, the Fig. 7b setup
        assert hs.cpu_time_s < hs.acc_time_s

    def test_nbody_gpu_dominant(self, chars):
        nb = chars["Nbody"].kernels[0]
        assert nb.relative_capability > 10
        assert nb.acc_time_s < nb.cpu_time_s

    def test_stream_has_four_kernels(self, chars):
        assert len(chars["STREAM-Seq"].kernels) == 4


class TestAppCharacter:
    def test_class_and_strategy_match_analyzer(self, chars):
        for app in paper_applications():
            char = chars[app.name]
            assert char.app_class.value == app.paper_class

    def test_dominant_kernel(self, chars):
        stream = chars["STREAM-Seq"]
        dom = stream.dominant_kernel
        assert dom.kernel in {"add", "triad"}  # the 3-array kernels

    def test_format_renders_all_apps(self, chars):
        text = format_characterization(list(chars.values()))
        for app in paper_applications():
            assert app.name in text
        assert "AI F/B" in text

    def test_imbalanced_app_uses_work_units(self):
        from repro.platform import shen_icpp15_platform

        platform = shen_icpp15_platform()
        char = characterize(get_application("SpMV"), platform, n=4096)
        k = char.kernels[0]
        assert k.cpu_time_s > 0 and k.acc_time_s > 0
