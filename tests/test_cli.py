"""Command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import SimulationError


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("MatrixMul", "SP-Single", "shen", "fig5"):
            assert expected in out

    def test_strategies_show_family_and_classes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        sp_single = next(l for l in out.splitlines() if "SP-Single" in l)
        assert "static" in sp_single and "SK-One" in sp_single
        hyb = next(l for l in out.splitlines() if "HYB-Static" in l)
        assert "hybrid" in hyb and "MK-DAG" not in hyb
        only_cpu = next(l for l in out.splitlines() if "Only-CPU" in l)
        assert "unranked" in only_cpu


class TestPlatform:
    def test_default_preset(self, capsys):
        assert main(["platform"]) == 0
        assert "Xeon E5-2620" in capsys.readouterr().out

    def test_other_preset(self, capsys):
        assert main(["platform", "--preset", "dual-gpu"]) == 0
        out = capsys.readouterr().out
        assert "GTX 680" in out

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["platform", "--preset", "laptop"])


class TestAnalyze:
    def test_analyze_app(self, capsys):
        assert main(["analyze", "HotSpot", "-n", "256"]) == 0
        out = capsys.readouterr().out
        assert "SK-Loop" in out and "SP-Single" in out

    def test_sync_flag_changes_ranking(self, capsys):
        main(["analyze", "STREAM-Seq", "-n", "4096", "--sync"])
        assert "SP-Varied" in capsys.readouterr().out.splitlines()[-1]
        main(["analyze", "STREAM-Seq", "-n", "4096", "--no-sync"])
        assert "SP-Unified" in capsys.readouterr().out.splitlines()[-1]

    def test_measured_ranker(self, capsys):
        assert main(["analyze", "HotSpot", "--ranker", "measured"]) == 0
        out = capsys.readouterr().out
        assert "(measured)" in out
        assert "best strategy:" in out.splitlines()[-1]


class TestRank:
    def test_prints_measured_rankings(self, capsys):
        assert main(["rank"]) == 0
        out = capsys.readouterr().out
        assert "tournament on" in out
        assert "SK-One" in out and "MK-DAG" in out
        assert "geomean ratio" in out

    def test_compare_confronts_table_one(self, capsys):
        assert main(["rank", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "measured vs Table I" in out
        assert "table:" in out and "measured:" in out


class TestRun:
    def test_matchmade_run(self, capsys):
        assert main(["run", "MatrixMul", "-n", "512"]) == 0
        out = capsys.readouterr().out
        assert "best strategy: SP-Single" in out
        assert "simulated makespan" in out

    def test_explicit_strategy(self, capsys):
        assert main(
            ["run", "MatrixMul", "-n", "512", "--strategy", "Only-CPU"]
        ) == 0
        assert "Only-CPU" in capsys.readouterr().out

    def test_profile_writes_pstats(self, capsys, tmp_path):
        out_file = tmp_path / "run.pstats"
        assert main(
            ["run", "MatrixMul", "-n", "512", "--strategy", "Only-CPU",
             "--profile", str(out_file)]
        ) == 0
        assert "Only-CPU" in capsys.readouterr().out
        import pstats

        stats = pstats.Stats(str(out_file))
        # the profile covers the simulate call: the engine's run loop
        # must appear in the recorded functions
        functions = {fn for _, _, fn in stats.stats}
        assert any("run" in fn for fn in functions)
        assert stats.total_calls > 100

    def test_profile_matchmade_run(self, tmp_path):
        out_file = tmp_path / "match.pstats"
        assert main(
            ["run", "MatrixMul", "-n", "512", "--profile", str(out_file)]
        ) == 0
        assert out_file.exists()

    def test_stats_and_gantt(self, capsys):
        assert main(
            ["run", "BlackScholes", "-n", "65536", "--stats", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "compute overlap" in out
        assert "|" in out  # gantt rows

    def test_thread_override(self, capsys):
        assert main(
            ["run", "MatrixMul", "-n", "512", "--strategy", "Only-CPU",
             "--threads", "3"]
        ) == 0

    def test_plan_eval_flag_routes_through_evaluator(self, capsys):
        """--plan-eval flips the evaluator on and preserves the output."""
        from repro.sim.plan import drain_stats

        argv = ["run", "HotSpot", "-n", "1024", "-i", "4", "--sync",
                "--strategy", "SP-Single", "--detail", "summary"]
        assert main(argv) == 0
        ref = capsys.readouterr().out

        before = drain_stats()["evaluations"]
        assert main(argv + ["--plan-eval"]) == 0
        assert capsys.readouterr().out == ref
        assert drain_stats()["evaluations"] > before

    def test_strategy_typo_suggests_and_exits_cleanly(self, capsys):
        assert main(
            ["run", "MatrixMul", "-n", "512", "--strategy", "DP-Prf"]
        ) == 2
        err = capsys.readouterr().err
        assert "did you mean 'DP-Perf'?" in err


class TestCacheDir:
    def test_second_run_warm_starts_from_snapshot(self, tmp_path, capsys):
        from repro.cache import clear_all

        cache_dir = tmp_path / "memo"
        clear_all()
        assert main(
            ["run", "MatrixMul", "-n", "512", "--cache-dir", str(cache_dir)]
        ) == 0
        first = capsys.readouterr().err
        assert "warm-started with 0 entries" in first
        assert "saved" in first and str(cache_dir) in first
        assert (cache_dir / "memo_snapshot.pkl").exists()

        clear_all()  # simulate a fresh process
        assert main(
            ["run", "MatrixMul", "-n", "512", "--cache-dir", str(cache_dir)]
        ) == 0
        second = capsys.readouterr().err
        # the snapshot replays the first run's memos as hits
        assert "warm-started with 0 entries" not in second
        assert "hits" in second
        clear_all()

    def test_without_cache_dir_no_report(self, capsys):
        assert main(["analyze", "HotSpot", "-n", "256"]) == 0
        assert "[cache]" not in capsys.readouterr().err

    def test_missing_snapshot_dir_is_created(self, tmp_path, capsys):
        from repro.cache import clear_all

        clear_all()
        nested = tmp_path / "a" / "b"
        assert main(
            ["run", "MatrixMul", "-n", "512", "--cache-dir", str(nested)]
        ) == 0
        capsys.readouterr()
        assert (nested / "memo_snapshot.pkl").exists()
        clear_all()


class TestMaxEvents:
    def test_exhausted_budget_names_both_knobs(self):
        with pytest.raises(SimulationError) as exc:
            main(["run", "MatrixMul", "-n", "512", "--strategy", "Only-CPU",
                  "--max-events", "5"])
        assert "max_events=5" in str(exc.value)
        assert "RuntimeConfig" in str(exc.value)
        assert "--max-events" in str(exc.value)

    def test_generous_budget_completes(self, capsys):
        assert main(
            ["run", "MatrixMul", "-n", "512", "--strategy", "Only-CPU",
             "--max-events", "1000000"]
        ) == 0
        assert "Only-CPU" in capsys.readouterr().out


class TestExperiment:
    def test_time_experiment(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "SP-Single" in out

    def test_fused_jobs_match_per_cell(self, capsys, tmp_path):
        per_cell = tmp_path / "per_cell.json"
        fused = tmp_path / "fused.json"
        assert main(["experiment", "fig5", "--scale", "0.02", "--jobs", "2",
                     "-o", str(per_cell)]) == 0
        assert main(["experiment", "fig5", "--scale", "0.02", "--jobs", "2",
                     "--fuse", "-o", str(fused)]) == 0
        assert json.loads(fused.read_text()) == json.loads(
            per_cell.read_text()
        )

    def test_ratio_experiment(self, capsys):
        assert main(["experiment", "fig8", "--scale", "0.02"]) == 0
        assert "%" in capsys.readouterr().out

    def test_progress_reports_cells_on_stderr(self, capsys):
        assert main(
            ["experiment", "fig5", "--scale", "0.02", "--progress"]
        ) == 0
        captured = capsys.readouterr()
        lines = [l for l in captured.err.splitlines()
                 if l.startswith("[sweep]")]
        assert lines, "no progress lines on stderr"
        total = len(lines)
        assert lines[-1] == f"[sweep] {total}/{total} cells"
        assert "Figure 5" in captured.out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "fig5.csv"
        assert main(
            ["experiment", "fig5", "--scale", "0.02", "-o", str(target)]
        ) == 0
        text = target.read_text()
        assert text.startswith("scenario,application")
        assert "SP-Single" in text

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "fig5.json"
        main(["experiment", "fig5", "--scale", "0.02", "-o", str(target)])
        records = json.loads(target.read_text())
        assert records[0]["application"] == "MatrixMul"

    def test_unknown_key_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestRegenerate:
    def test_writes_all_experiment_files(self, tmp_path, capsys):
        assert main(
            ["regenerate", "-o", str(tmp_path), "--scale", "0.02"]
        ) == 0
        names = {p.name for p in tmp_path.glob("*.csv")}
        for key in ("fig5", "fig9", "fig12", "mkdag", "spmv", "fdtd"):
            assert f"{key}.csv" in names


class TestCharacterize:
    def test_prints_table(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "MatrixMul" in out and "AI F/B" in out
        assert "SP-Unified" in out  # STREAM row


class TestCrossover:
    def test_stream_sweep(self, capsys):
        assert main(["crossover", "stream-iterations"]) == 0
        out = capsys.readouterr().out
        assert "Only-GPU wins" in out

    def test_invalid_sweep_rejected(self):
        with pytest.raises(SystemExit):
            main(["crossover", "nope"])


class TestBaseline:
    def test_save_then_check(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        assert main(["baseline", "--save", str(path)]) == 0
        assert path.exists()
        assert main(["baseline", "--check", str(path)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_requires_mode(self):
        with pytest.raises(SystemExit):
            main(["baseline"])


class TestSpeedup:
    def test_speedup_scaled(self, capsys, tmp_path):
        target = tmp_path / "fig12.json"
        assert main(
            ["speedup", "--scale", "0.02", "-o", str(target)]
        ) == 0
        out = capsys.readouterr().out
        assert "average" in out
        assert json.loads(target.read_text())
