"""Shared fixtures: platforms, small programs, and helper factories."""

from __future__ import annotations

import pytest

from repro.platform import (
    Device,
    DeviceKind,
    DeviceSpec,
    Link,
    Platform,
    shen_icpp15_platform,
)
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec


@pytest.fixture
def paper_platform() -> Platform:
    """The Table III platform (Xeon E5-2620 + Tesla K20m)."""
    return shen_icpp15_platform()


@pytest.fixture
def tiny_platform() -> Platform:
    """A small platform with round numbers for hand-checkable math.

    CPU: 4 cores, 100 GFLOPS, 40 GB/s.  GPU: 1000 GFLOPS, 200 GB/s.
    Link: 10 GB/s, zero latency.  No launch overheads.
    """
    cpu = DeviceSpec(
        name="tiny-cpu", kind=DeviceKind.CPU, cores=4, frequency_ghz=2.0,
        peak_gflops_sp=100.0, peak_gflops_dp=50.0, mem_bandwidth_gbs=40.0,
        mem_capacity_gb=16.0, launch_overhead_s=0.0,
    )
    gpu = DeviceSpec(
        name="tiny-gpu", kind=DeviceKind.GPU, cores=256, frequency_ghz=1.0,
        peak_gflops_sp=1000.0, peak_gflops_dp=500.0, mem_bandwidth_gbs=200.0,
        mem_capacity_gb=4.0, launch_overhead_s=0.0,
    )
    return Platform(
        host=Device("cpu", cpu),
        accelerators=[Device("gpu0", gpu)],
        links={"gpu0": Link(name="tiny-link", bandwidth_gbs=10.0, latency_s=0.0)},
    )


def make_kernel(
    name: str = "k",
    *,
    arrays: dict[str, ArraySpec] | None = None,
    reads: tuple[str, ...] = ("x",),
    writes: tuple[str, ...] = ("y",),
    full_reads: tuple[str, ...] = (),
    n: int = 1024,
    flops: float = 2.0,
    mem_bytes: float = 8.0,
    elems_per_index: int = 1,
) -> tuple[Kernel, dict[str, ArraySpec]]:
    """Build a simple kernel plus its array specs (uniform efficiencies)."""
    specs = dict(arrays or {})
    for arr in (*reads, *writes, *full_reads):
        specs.setdefault(arr, ArraySpec(arr, n * elems_per_index, 4))
    accesses = []
    for arr in reads:
        accesses.append(
            AccessSpec(specs[arr], AccessMode.IN,
                       AccessPattern.PARTITIONED, elems_per_index)
        )
    for arr in full_reads:
        accesses.append(AccessSpec(specs[arr], AccessMode.IN, AccessPattern.FULL))
    for arr in writes:
        accesses.append(
            AccessSpec(specs[arr], AccessMode.OUT,
                       AccessPattern.PARTITIONED, elems_per_index)
        )
    cost = KernelCostModel(
        flops_per_elem=flops,
        mem_bytes_per_elem=mem_bytes,
        compute_eff={DeviceKind.CPU: 1.0, DeviceKind.GPU: 1.0},
        mem_eff={DeviceKind.CPU: 1.0, DeviceKind.GPU: 1.0},
    )
    return Kernel(name, cost, tuple(accesses)), specs


def single_kernel_program(
    n: int = 1024,
    *,
    iterations: int = 1,
    sync: bool = False,
    **kwargs,
) -> Program:
    """A program with one kernel invoked ``iterations`` times."""
    kernel, specs = make_kernel(n=n, **kwargs)
    invocations = [
        KernelInvocation(
            invocation_id=i, kernel=kernel, n=n, iteration=i, sync_after=sync
        )
        for i in range(iterations)
    ]
    return Program(invocations=invocations, arrays=specs)


def chain_program(n_kernels: int = 3, n: int = 1024, *, sync: bool = False) -> Program:
    """k0: a->x1, k1: x1->x2, ... — a pure dependency chain."""
    specs = {f"x{i}": ArraySpec(f"x{i}", n, 4) for i in range(n_kernels + 1)}
    invocations = []
    for i in range(n_kernels):
        kernel, _ = make_kernel(
            f"k{i}", arrays=specs, reads=(f"x{i}",), writes=(f"x{i + 1}",), n=n
        )
        invocations.append(
            KernelInvocation(
                invocation_id=i, kernel=kernel, n=n, sync_after=sync
            )
        )
    return Program(invocations=invocations, arrays=specs)
