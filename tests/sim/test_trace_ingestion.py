"""Differential tests of the batched trace-ingestion paths.

``record_batch`` and :class:`TraceLane` staging exist purely for speed:
they must be observationally identical to row-at-a-time ``record()`` —
same pickle bytes for grouped streams, same ``analyze_trace`` output,
same labels and metadata — for randomized occupation streams, with and
without numpy (``REPRO_NO_NUMPY=1`` exercises the pure-Python
``lane_bounds`` and aggregate fallbacks).  ``occupy_stream`` must
additionally behave identically across the two simulation engines: one
completion event, one sequence number, byte-identical stores.
"""

import pickle

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import _vec
from repro.sim.analysis import analyze_trace
from repro.sim.engine import Simulator
from repro.sim.fast_engine import FastSimulator
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace
from repro.sim.tracestore import TraceStore

CATEGORIES = ("compute", "transfer", "overhead")
KINDS = ("cpu", "gpu")
KERNELS = ("copy", "scale", "triad")


def _random_runs(seed: int, runs: int = 12, max_rows: int = 40):
    """Randomized homogeneous (resource, category) occupation runs.

    Each run is ``(resource_id, category, starts, ends, labels, metas)``
    with a mix of plain-string and lazy-tuple labels and rows with and
    without metadata — the full shape space ``record`` accepts.
    """
    rng = np.random.default_rng(seed)
    out = []
    for r in range(runs):
        rid = f"{KINDS[int(rng.integers(2))]}:{int(rng.integers(3))}"
        category = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
        k = int(rng.integers(1, max_rows))
        starts, ends, labels, metas = [], [], [], []
        t = float(rng.uniform(0.0, 5.0))
        for i in range(k):
            dur = float(rng.uniform(0.0, 2.0))
            starts.append(t)
            ends.append(t + dur)
            t += dur
            if rng.random() < 0.4:
                labels.append(f"run{r} row{i}")
            else:
                labels.append(("{}[{}:{})#{}", rid, i, i + 1, r))
            if rng.random() < 0.3:
                metas.append(None)
            elif category == "compute":
                metas.append({
                    "size": int(rng.integers(1, 10_000)),
                    "device_kind": KINDS[int(rng.integers(2))],
                    "kernel": KERNELS[int(rng.integers(3))],
                    "iteration": i,
                })
            else:
                metas.append({
                    "direction": ("h2d", "d2h")[int(rng.integers(2))],
                    "bytes": int(rng.integers(1, 1 << 20)),
                })
        out.append((rid, category, starts, ends, labels, metas))
    return out


@pytest.fixture(params=[False, True], ids=["numpy", "no-numpy"])
def maybe_no_numpy(request, monkeypatch):
    if request.param:
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    return request.param


class TestRecordBatch:
    @pytest.mark.parametrize("seed", range(5))
    def test_pickle_and_analysis_identical_to_per_row(
        self, seed, maybe_no_numpy
    ):
        runs = _random_runs(seed)
        per_row, batched = TraceStore(), TraceStore()
        for rid, category, starts, ends, labels, metas in runs:
            for s, e, label, meta in zip(starts, ends, labels, metas):
                per_row.record(rid, label, category, s, e, meta)
            batched.record_batch(rid, category, starts, ends, labels, metas)
        assert pickle.dumps(per_row, 5) == pickle.dumps(batched, 5)

        a = ExecutionTrace(per_row)
        b = ExecutionTrace(batched)
        assert analyze_trace(a) == analyze_trace(b)
        assert [per_row.label_at(r) for r in per_row.iter_rows()] == \
               [batched.label_at(r) for r in batched.iter_rows()]

    def test_all_meta_none_fast_path(self):
        per_row, batched = TraceStore(), TraceStore()
        for i in range(4):
            per_row.record("r", f"l{i}", "compute", float(i), i + 1.0)
        batched.record_batch(
            "r", "compute", [0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0],
            ["l0", "l1", "l2", "l3"],
        )
        assert pickle.dumps(per_row, 5) == pickle.dumps(batched, 5)

    def test_returns_row_range(self):
        store = TraceStore()
        store.record("a", "x", "compute", 0.0, 1.0)
        rows = store.record_batch(
            "b", "compute", [1.0, 2.0], [2.0, 3.0], ["y", "z"]
        )
        assert rows == range(1, 3)
        assert store.record_batch("b", "compute", [], [], []) == range(3, 3)

    def test_length_validation(self):
        store = TraceStore()
        with pytest.raises(ValueError, match="column lengths differ"):
            store.record_batch("r", "c", [0.0], [1.0, 2.0], ["x"])
        with pytest.raises(ValueError, match="metas"):
            store.record_batch("r", "c", [0.0], [1.0], ["x"], [{}, {}])


class TestLaneParity:
    def test_grouped_streams_pickle_identical_to_record(self):
        """Lane ingestion == record() when rows arrive stream-grouped.

        Same rows, same order, full hot-metadata agreement: the staged
        path must produce byte-identical pickles, intern pools included.
        """
        runs = _random_runs(3, runs=6)
        recorded, laned = TraceStore(), TraceStore()
        for run_no, (rid, category, starts, ends, _, _) in enumerate(runs):
            kind = KINDS[run_no % 2]
            lane = laned.lane(
                rid, category, "{}#{}", device_kind=kind, device=rid,
            )
            # the record() side interns lane constants at first row; the
            # lane side at creation — grouped appends make the pool
            # first-appearance orders coincide
            for i, (s, e) in enumerate(zip(starts, ends)):
                meta = {
                    "size": i + 1, "device_kind": kind,
                    "kernel": KERNELS[i % 3], "device": rid,
                }
                recorded.record(rid, ("{}#{}", rid, i), category, s, e, meta)
                lane.append(
                    s, e, (rid, i),
                    size=i + 1, kernel=KERNELS[i % 3], meta=dict(meta),
                )
        assert pickle.dumps(recorded, 5) == pickle.dumps(laned, 5)

    def test_interleaved_streams_match_analytics(self, maybe_no_numpy):
        """Interleaved lane appends regroup rows but keep every query.

        Row order differs from chronological record() ingestion (staged
        rows land grouped by lane), so pickles legitimately differ; all
        aggregates, labels and metadata must not.
        """
        rng = np.random.default_rng(7)
        recorded, laned = TraceStore(), TraceStore()
        lanes = {
            rid: laned.lane(rid, "compute", "{} {}", device_kind="cpu")
            for rid in ("a", "b", "c")
        }
        rows = []
        t = 0.0
        for i in range(120):
            rid = ("a", "b", "c")[int(rng.integers(3))]
            dur = float(rng.uniform(0.0, 1.0))
            rows.append((rid, t, t + dur, i))
            t += dur
        for rid, s, e, i in rows:
            meta = {"size": i, "device_kind": "cpu", "idx": i}
            recorded.record(rid, ("{} {}", rid, i), "compute", s, e, meta)
            lanes[rid].append(s, e, (rid, i), size=i, meta=dict(meta))
        a, b = ExecutionTrace(recorded), ExecutionTrace(laned)
        assert analyze_trace(a) == analyze_trace(b)
        assert recorded.makespan() == laned.makespan()
        for rid in ("a", "b", "c"):
            assert recorded.busy_time(rid) == laned.busy_time(rid)
            assert (
                [recorded.label_at(r) for r in recorded.rows_by_resource(rid)]
                == [laned.label_at(r) for r in laned.rows_by_resource(rid)]
            )
            assert (
                [recorded.meta_at(r) for r in recorded.rows_by_resource(rid)]
                == [laned.meta_at(r) for r in laned.rows_by_resource(rid)]
            )

    def test_staged_rows_flush_on_any_read(self):
        store = TraceStore()
        lane = store.lane("r", "compute", "x {}")
        lane.append(0.0, 1.0, (1,))
        lane.append(1.0, 3.0, (2,))
        assert store.staged_rows() == 2
        assert len(store) == 2  # __len__ flushes
        assert store.staged_rows() == 0
        assert store.label_at(1) == "x 2"
        assert store.makespan() == 3.0
        # lanes stay usable after a flush
        lane.append(3.0, 4.0, (3,))
        assert store.makespan() == 4.0


class TestMetaOwnership:
    def test_shared_dict_defensively_copied_by_default(self):
        store = TraceStore()
        shared = {"size": 1, "device_kind": "cpu"}
        store.record("r", "x", "compute", 0.0, 1.0, shared)
        shared["size"] = 999
        shared["injected"] = True
        assert store.meta_at(0) == {"size": 1, "device_kind": "cpu"}

    def test_own_meta_skips_the_copy(self):
        store = TraceStore()
        handed_over = {"size": 1}
        store.record("r", "x", "compute", 0.0, 1.0, handed_over, True)
        assert store.meta_at(0) is handed_over

    def test_record_batch_own_meta(self):
        default, owned = TraceStore(), TraceStore()
        metas = [{"size": 1}, None, {"size": 2}]
        default.record_batch(
            "r", "c", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0], ["a", "b", "c"],
            metas,
        )
        owned.record_batch(
            "r", "c", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0], ["a", "b", "c"],
            metas, own_meta=True,
        )
        assert default.meta_at(0) is not metas[0]
        assert owned.meta_at(0) is metas[0]
        assert pickle.dumps(default, 5) == pickle.dumps(owned, 5)


def _stream_setup(engine_cls):
    trace = ExecutionTrace()
    sim = engine_cls()
    res = SimResource(sim, "res", trace)
    lane = trace.lane("res", "compute", "row {} {}", device_kind="cpu")
    return trace, sim, res, lane


class TestOccupyStream:
    @pytest.mark.parametrize("seed", range(3))
    def test_cross_engine_byte_parity(self, seed, maybe_no_numpy):
        rng = np.random.default_rng(seed)
        durations = [float(d) for d in rng.uniform(0.0, 2.0, size=50)]
        blobs = {}
        for engine_cls in (FastSimulator, Simulator):
            trace, sim, res, lane = _stream_setup(engine_cls)
            res.occupy_stream(
                durations, lane, str_arg="res", args=range(len(durations))
            )
            sim.run()
            blobs[engine_cls.__name__] = pickle.dumps(trace, 5)
        assert blobs["FastSimulator"] == blobs["Simulator"]

    def test_rows_identical_to_per_event_occupies(self, maybe_no_numpy):
        """The bulk intake writes the exact rows k occupy() calls would."""
        durations = [0.25, 1.5, 0.0, 3.125]
        per_event, sim_a, res_a, lane_a = _stream_setup(FastSimulator)
        for i, d in enumerate(durations):
            res_a.occupy(d, label="", category="compute", lane=lane_a,
                         args=("res", i))
        sim_a.run()
        bulk, sim_b, res_b, lane_b = _stream_setup(FastSimulator)
        res_b.occupy_stream(
            durations, lane_b, str_arg="res", args=range(len(durations))
        )
        sim_b.run()
        assert pickle.dumps(per_event, 5) == pickle.dumps(bulk, 5)
        assert sim_a.now == sim_b.now

    def test_numpy_and_fallback_bounds_bit_identical(self, monkeypatch):
        rng = np.random.default_rng(11)
        durations = [float(d) for d in rng.uniform(0.0, 1e-3, size=200)]
        vec = _vec.lane_bounds(1.0 / 3.0, durations)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        seq = _vec.lane_bounds(1.0 / 3.0, durations)
        assert list(vec) == list(seq)

    def test_one_event_one_seq(self):
        _, sim, res, lane = _stream_setup(FastSimulator)
        res.occupy_stream([1.0, 2.0, 3.0], lane)
        assert sim.pending == 1
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=0)
        # the whole stream fits a ONE-event budget on a fresh simulator
        _, sim, res, lane = _stream_setup(FastSimulator)
        res.occupy_stream([1.0, 2.0, 3.0], lane)
        assert sim.run(max_events=1) == 6.0

    def test_completion_callback_and_busy_bookkeeping(self):
        _, sim, res, lane = _stream_setup(FastSimulator)
        seen = []
        res.occupy_stream(
            [1.0, 1.0], lane, on_complete=lambda: seen.append(sim.now)
        )
        assert res.busy
        assert res.busy_until == 2.0
        sim.run()
        assert seen == [2.0]
        assert not res.busy

    def test_busy_resource_rejected(self):
        _, sim, res, lane = _stream_setup(FastSimulator)
        res.occupy(1.0, label="x", category="compute")
        with pytest.raises(SimulationError, match="idle"):
            res.occupy_stream([1.0], lane)

    def test_untraced_resource_rejected(self):
        sim = FastSimulator()
        res = SimResource(sim, "res", None)
        store = TraceStore()
        with pytest.raises(SimulationError, match="traced"):
            res.occupy_stream([1.0], store.lane("res", "compute", "x"))

    def test_negative_duration_rejected(self):
        _, sim, res, lane = _stream_setup(FastSimulator)
        with pytest.raises(SimulationError, match=">= 0"):
            res.occupy_stream([1.0, -0.5], lane)

    def test_length_validation(self):
        _, sim, res, lane = _stream_setup(FastSimulator)
        with pytest.raises(SimulationError, match="args length"):
            res.occupy_stream([1.0, 2.0], lane, args=[1])
        with pytest.raises(SimulationError, match="metas length"):
            res.occupy_stream([1.0], lane, metas=[{}, {}])

    def test_empty_stream_fires_callback_immediately(self):
        trace, sim, res, lane = _stream_setup(FastSimulator)
        seen = []
        res.occupy_stream([], lane, on_complete=lambda: seen.append(True))
        assert seen == [True]
        assert not res.busy
        assert sim.pending == 0
        assert len(trace) == 0

    def test_work_arriving_mid_stream_queues_behind(self):
        """occupy() during a stream waits for the whole run, both engines."""
        for engine_cls in (FastSimulator, Simulator):
            trace, sim, res, lane = _stream_setup(engine_cls)
            res.occupy_stream([1.0, 2.0], lane, str_arg="res")
            sim.at(0.5, lambda: res.occupy(
                0.25, label="tail", category="compute"
            ))
            assert sim.run() == 3.25
            assert trace.store.starts[-1] == 3.0
            assert not res.busy
