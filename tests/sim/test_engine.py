"""Discrete-event engine semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import PRIORITY_COMPLETION, PRIORITY_SCHEDULE, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_break_ties_by_priority(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("sched"), priority=PRIORITY_SCHEDULE)
        sim.at(1.0, lambda: log.append("done"), priority=PRIORITY_COMPLETION)
        sim.run()
        assert log == ["done", "sched"]

    def test_same_priority_preserves_insertion_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        times = []

        def first():
            sim.after(0.5, lambda: times.append(sim.now))

        sim.at(1.0, first)
        sim.run()
        assert times == [pytest.approx(1.5)]

    def test_cannot_schedule_into_the_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)


class TestRun:
    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.at(3.5, lambda: None)
        assert sim.run() == pytest.approx(3.5)

    def test_empty_run_stays_at_zero(self):
        assert Simulator().run() == 0.0

    def test_until_horizon_leaves_later_events_queued(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == pytest.approx(5.0)
        assert sim.pending == 1
        sim.run()
        assert log == [1, 10]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.at(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_events_may_schedule_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        assert sim.run() == pytest.approx(10.0)
        assert count[0] == 10

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.after(0.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_max_events_allows_exactly_that_many_callbacks(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(float(i), lambda i=i: log.append(i))
        sim.run(max_events=5)
        assert log == [0, 1, 2, 3, 4]

    def test_max_events_raises_before_the_extra_callback(self):
        sim = Simulator()
        log = []
        for i in range(6):
            sim.at(float(i), lambda i=i: log.append(i))
        with pytest.raises(SimulationError):
            sim.run(max_events=5)
        # the guard fires *before* event 6 runs, not after
        assert log == [0, 1, 2, 3, 4]

    def test_cancelled_events_do_not_count_against_max_events(self):
        sim = Simulator()
        log = []
        events = [sim.at(float(i), lambda i=i: log.append(i)) for i in range(10)]
        for event in events[:7]:
            event.cancel()
        sim.run(max_events=3)
        assert log == [7, 8, 9]

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1.0, inner)
        sim.run()
        assert len(errors) == 1


class TestPending:
    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        events = [sim.at(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending == 2

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_pending_drops_to_zero_after_run(self):
        sim = Simulator()
        event = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        event.cancel()
        sim.run()
        assert sim.pending == 0

    def test_mass_cancellation_compacts_the_heap(self):
        sim = Simulator()
        keep = sim.at(1000.0, lambda: None)
        events = [sim.at(float(i + 1), lambda: None) for i in range(200)]
        for event in events:
            event.cancel()
        # compaction kicked in: cancelled slots were physically removed
        assert sim.pending == 1
        assert len(sim._heap) < 200
        assert sim.run() == pytest.approx(1000.0)
        assert not keep.cancelled


class TestCancelRaces:
    """``pending`` stays exact when cancels race pops and compaction.

    A cancel of an event that already left the heap (it fired, or a
    compaction dropped its slot) must not inflate the cancelled-slot
    counter, or ``pending = len(heap) - cancelled`` goes negative.
    """

    def test_cancel_of_already_fired_event_is_inert(self):
        sim = Simulator()
        fired = []
        first = sim.at(1.0, lambda: fired.append("a"))
        sim.at(2.0, first.cancel)
        sim.at(3.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.pending == 0

    def test_callback_cancelling_its_own_event_keeps_pending_exact(self):
        sim = Simulator()
        handles = []
        handles.append(sim.at(1.0, lambda: handles[0].cancel()))
        sim.at(2.0, lambda: None)
        sim.run(until=1.5)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_stale_cancels_after_partial_run_stay_non_negative(self):
        # fire half the events, then cancel *every* handle — the fired
        # half are stale and must not count against live heap slots
        sim = Simulator()
        n = Simulator._COMPACT_MIN * 4
        keep = sim.at(float(n + 10), lambda: None)
        events = [sim.at(float(i + 1), lambda: None) for i in range(n)]
        sim.run(until=n / 2)
        for event in events:
            event.cancel()
            assert sim.pending >= 1
        assert sim.pending == 1
        assert sim.run() == pytest.approx(n + 10)
        assert not keep.cancelled

    def test_double_cancel_across_a_compaction_boundary(self):
        # compaction resets the counter; a second cancel of a slot the
        # compaction already removed must not decrement pending again
        sim = Simulator()
        keep = sim.at(1000.0, lambda: None)
        events = [
            sim.at(float(i + 1), lambda: None)
            for i in range(Simulator._COMPACT_MIN * 2)
        ]
        for event in events:
            event.cancel()
        # compaction ran at least once: cancelled slots were dropped
        assert len(sim._heap) < len(events)
        for event in events:
            event.cancel()  # all stale now
        assert sim.pending == 1
        assert sim.run() == pytest.approx(1000.0)
        assert not keep.cancelled
