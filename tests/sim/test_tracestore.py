"""Columnar TraceStore vs the list-of-records scans it replaced.

Every aggregate the store answers used to be a filtered linear scan over
``ExecutionTrace.records``.  These tests regenerate that scan naively from
the materialized records and demand *equality* — not approx — because the
store promises bit-identical accumulation order, and downstream reports
rely on it for byte-identical figure/table numbers.
"""

import pickle

import numpy as np
import pytest

from repro.sim.trace import ExecutionTrace, TraceRecord
from repro.sim.tracestore import TraceStore

CATEGORIES = ("compute", "transfer", "overhead")
KINDS = ("cpu", "gpu")
KERNELS = ("copy", "scale", "triad")


def random_trace(seed: int, n: int = 400) -> ExecutionTrace:
    """A generated trace mixing compute/transfer/overhead rows."""
    rng = np.random.default_rng(seed)
    trace = ExecutionTrace()
    for i in range(n):
        category = CATEGORIES[int(rng.integers(len(CATEGORIES)))]
        start = float(rng.uniform(0.0, 50.0))
        end = start + float(rng.uniform(1e-6, 3.0))
        resource = f"{KINDS[int(rng.integers(2))]}:{int(rng.integers(3))}"
        meta = {}
        if category == "compute":
            meta = {
                "size": int(rng.integers(1, 10_000)),
                "device_kind": KINDS[int(rng.integers(2))],
                "kernel": KERNELS[int(rng.integers(3))],
            }
        elif category == "transfer":
            meta = {"direction": ("h2d", "d2h")[int(rng.integers(2))]}
        if rng.random() < 0.1:
            meta = {}  # some rows carry no metadata at all
        trace.record(resource, f"t{i}", category, start, end, meta)
    return trace


# -- naive record-scan oracles (the pre-columnar implementations) --------


def scan_busy(records, resource, category=None):
    return sum(
        r.duration for r in records
        if r.resource_id == resource
        and (category is None or r.category == category)
    )


def scan_elements(records):
    out = {}
    for r in records:
        if r.category != "compute":
            continue
        kind, size = r.meta.get("device_kind"), r.meta.get("size")
        if kind is None or size is None:
            continue
        out[str(kind)] = out.get(str(kind), 0) + int(size)
    return out


def scan_ratio(records):
    out = {}
    for r in records:
        if r.category != "compute":
            continue
        kernel, kind, size = (
            r.meta.get("kernel"), r.meta.get("device_kind"), r.meta.get("size")
        )
        if kernel is None or kind is None or size is None:
            continue
        per = out.setdefault(str(kernel), {})
        per[str(kind)] = per.get(str(kind), 0) + int(size)
    return out


@pytest.mark.parametrize("seed", range(20))
class TestStoreMatchesRecordScans:
    def test_group_queries(self, seed):
        trace = random_trace(seed)
        records = list(trace)
        store = trace.store
        for rid in store.resource_ids_seen():
            assert [records[i] for i in store.rows_by_resource(rid)] == [
                r for r in records if r.resource_id == rid
            ]
        for cat in store.categories_seen():
            assert [records[i] for i in store.rows_by_category(cat)] == [
                r for r in records if r.category == cat
            ]

    def test_aggregates_bit_identical(self, seed):
        trace = random_trace(seed)
        records = list(trace)
        store = trace.store
        assert store.makespan() == max(r.end for r in records)
        for rid in store.resource_ids_seen():
            assert store.busy_time(rid) == scan_busy(records, rid)
            assert store.busy_time(rid, category="compute") == scan_busy(
                records, rid, "compute"
            )
        for cat in CATEGORIES:
            assert store.total_time(category=cat) == sum(
                r.duration for r in records if r.category == cat
            )
        assert store.elements_by_device() == scan_elements(records)
        assert store.ratio_by_kernel() == scan_ratio(records)

    def test_transfer_time_by_direction(self, seed):
        trace = random_trace(seed)
        records = list(trace)
        got = trace.store.transfer_time_by_direction()
        assert set(got) == {"h2d", "d2h"}
        for direction in ("h2d", "d2h"):
            assert got[direction] == sum(
                r.duration for r in records
                if r.category == "transfer"
                and r.meta.get("direction") == direction
            )

    def test_busy_by_resource(self, seed):
        trace = random_trace(seed)
        records = list(trace)
        got = trace.store.busy_by_resource()
        for rid, per_cat in got.items():
            for cat, seconds in per_cat.items():
                assert seconds == scan_busy(records, rid, cat)


class TestIncrementalIndexes:
    def test_queries_interleaved_with_appends(self):
        store = TraceStore()
        store.record("a", "t0", "compute", 0.0, 1.0)
        assert store.rows_by_resource("a") == [0]
        store.record("b", "t1", "compute", 1.0, 2.0)
        store.record("a", "t2", "transfer", 2.0, 3.0)
        # the index extends over the new rows instead of rescanning
        assert store.rows_by_resource("a") == [0, 2]
        assert store.rows_by_category("compute") == [0, 1]
        assert store.resource_ids_seen() == ["a", "b"]

    def test_meta_side_table(self):
        store = TraceStore()
        store.record("a", "t0", "compute", 0.0, 1.0, {"size": 5})
        store.record("a", "t1", "compute", 1.0, 2.0)
        assert store.meta_at(0) == {"size": 5}
        assert store.meta_at(1) == {}
        assert store.metas == [{"size": 5}]  # no dict per meta-less row


class TestArrayColumns:
    """The array('d')/array('q')/code-column representation itself."""

    def test_numeric_columns_are_arrays(self):
        import array

        store = random_trace(0, n=30).store
        assert isinstance(store.starts, array.array)
        assert store.starts.typecode == "d"
        assert isinstance(store.ends, array.array)
        assert store.ends.typecode == "d"
        assert store.meta_idx.typecode == "q"
        assert store.sizes.typecode == "q"
        for name in (
            "resource_codes", "label_codes", "category_codes",
            "kind_codes", "kernel_codes", "device_codes", "direction_codes",
        ):
            col = getattr(store, name)
            assert isinstance(col, array.array) and col.typecode == "i", name

    def test_string_columns_are_interned_codes(self):
        store = TraceStore()
        store.record("a", "t0", "compute", 0.0, 1.0)
        store.record("b", "t1", "transfer", 1.0, 2.0)
        store.record("a", "t2", "compute", 2.0, 3.0)
        # same string -> same small-int code over a side table
        assert list(store.resource_codes) == [0, 1, 0]
        assert store.resource_pool.table == ["a", "b"]
        assert list(store.category_codes) == [0, 1, 0]
        assert store.category_pool.table == ["compute", "transfer"]
        assert [store.resource_id_at(i) for i in range(3)] == ["a", "b", "a"]
        assert [store.label_at(i) for i in range(3)] == ["t0", "t1", "t2"]

    def test_hot_meta_keys_become_columns(self):
        store = TraceStore()
        store.record(
            "gpu:0", "t0", "compute", 0.0, 1.0,
            {"size": 7, "device_kind": "gpu", "kernel": "triad",
             "device": "gpu0"},
        )
        store.record("link:h", "t1", "transfer", 1.0, 2.0, {"direction": "h2d"})
        store.record("cpu:0", "t2", "overhead", 2.0, 3.0)
        assert list(store.sizes) == [7, -1, -1]
        assert store.kind_pool.table[store.kind_codes[0]] == "gpu"
        assert store.kernel_pool.table[store.kernel_codes[0]] == "triad"
        assert store.device_pool.table[store.device_codes[0]] == "gpu0"
        assert store.direction_pool.table[store.direction_codes[1]] == "h2d"
        # -1 marks absent on every code column
        assert store.kind_codes[1] == -1 and store.kind_codes[2] == -1
        assert store.direction_codes[0] == -1
        # the full dicts survive untouched in the side table
        assert store.meta_at(0)["device"] == "gpu0"
        assert store.meta_at(2) == {}

    def test_device_key_falls_back_to_resource_id(self):
        store = TraceStore()
        store.record("gpu:0", "t", "compute", 0.0, 1.0, {"device": "dev"})
        store.record("cpu:0", "t", "compute", 0.0, 1.0)
        assert store.device_key_at(0) == "dev"
        assert store.device_key_at(1) == "cpu:0"

    def test_bare_store_pickle_round_trip(self):
        store = random_trace(7, n=60).store
        store.rows_by_resource(store.resource_ids_seen()[0])  # warm indexes
        clone = pickle.loads(pickle.dumps(store))
        assert list(clone.starts) == list(store.starts)
        assert clone.resource_pool.table == store.resource_pool.table
        assert clone.makespan() == store.makespan()
        assert clone.busy_by_resource() == store.busy_by_resource()
        # appending after unpickling keeps columns and indexes coherent
        clone.record("fresh", "t", "compute", 100.0, 101.0)
        assert clone.rows_by_resource("fresh") == [len(store)]

    def test_column_nbytes_tracks_growth(self):
        small = random_trace(1, n=10).store
        big = random_trace(1, n=200).store
        assert 0 < small.column_nbytes() < big.column_nbytes()


class TestLazyLabels:
    """Tuple labels stay unformatted until someone materializes the row."""

    def test_packed_label_formats_like_str_format(self):
        store = TraceStore()
        store.record("gpu:0", ("{}[{}:{})#{}", "triad", 0, 512, 7),
                     "compute", 0.0, 1.0)
        store.record("cpu:0", ("taskwait#{}", 9), "overhead", 1.0, 2.0)
        assert store.label_at(0) == "triad[0:512)#7"
        assert store.label_at(1) == "taskwait#9"
        # lazily stored: nothing was interned into the eager label pool
        assert list(store.label_codes) == [-1, -1]
        assert store.label_pool.table == []
        assert store.label_tmpl_pool.table == [
            "{}[{}:{})#{}", "taskwait#{}"
        ]

    def test_templates_and_str_args_are_shared(self):
        store = TraceStore()
        for i in range(50):
            store.record("gpu:0", ("{}[{}:{}) h2d", "A", i, i + 1),
                         "transfer", float(i), float(i) + 0.5)
        # one template entry, one string-arg entry, 50 packed rows
        assert len(store.label_tmpl_pool.table) == 1
        assert store.label_arg_pool.table == ["A"]
        assert store.label_at(49) == "A[49:50) h2d"

    def test_unpackable_tuple_falls_back_to_eager(self):
        store = TraceStore()
        # a float arg cannot ride the int64 columns -> format at record time
        store.record("r", ("{} took {}", "k", 1.5), "compute", 0.0, 1.0)
        # four int args exceed the three packed slots
        store.record("r", ("{}{}{}{}{}", "k", 1, 2, 3, 4), "compute", 1.0, 2.0)
        assert store.label_at(0) == "k took 1.5"
        assert store.label_at(1) == "k1234"
        assert store.label_codes[0] >= 0 and store.label_codes[1] >= 0

    def test_mixed_eager_and_lazy_rows_coexist(self):
        store = TraceStore()
        store.record("r", "plain", "compute", 0.0, 1.0)
        store.record("r", ("lazy#{}", 3), "compute", 1.0, 2.0)
        store.record("r", "plain", "compute", 2.0, 3.0)
        assert [store.label_at(i) for i in range(3)] == [
            "plain", "lazy#3", "plain"
        ]

    def test_pickle_round_trip_keeps_labels_lazy(self):
        store = TraceStore()
        store.record("r", ("{}#{}", "k", 1), "compute", 0.0, 1.0)
        clone = pickle.loads(pickle.dumps(store))
        assert list(clone.label_codes) == [-1]
        assert clone.label_at(0) == "k#1"
        # appends after unpickling keep packing
        clone.record("r", ("{}#{}", "k", 2), "compute", 1.0, 2.0)
        assert clone.label_at(1) == "k#2"
        assert len(clone.label_tmpl_pool.table) == 1

    def test_facade_materializes_formatted_labels(self):
        trace = ExecutionTrace()
        trace.record("gpu:0", ("{}[{}:{})#{}", "copy", 0, 64, 1),
                     "compute", 0.0, 1.0)
        (record,) = list(trace)
        assert record.label == "copy[0:64)#1"
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone)[0].label == "copy[0:64)#1"

    def test_column_nbytes_counts_packed_columns(self):
        eager, lazy = TraceStore(), TraceStore()
        eager.record("r", "x", "compute", 0.0, 1.0)
        lazy.record("r", ("{}#{}", "x", 1), "compute", 0.0, 1.0)
        assert lazy.column_nbytes() > 0 and eager.column_nbytes() > 0


class TestFacade:
    def test_add_and_record_equivalent(self):
        via_add, via_record = ExecutionTrace(), ExecutionTrace()
        r = TraceRecord(
            resource_id="a", label="t", category="compute",
            start=0.0, end=1.0, meta={"size": 3},
        )
        via_add.add(r)
        via_record.record("a", "t", "compute", 0.0, 1.0, {"size": 3})
        assert list(via_add) == list(via_record)

    def test_pickle_round_trip(self):
        trace = random_trace(3, n=50)
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone) == list(trace)
        assert clone.makespan() == trace.makespan()

    def test_materialized_records_are_cached(self):
        trace = random_trace(4, n=10)
        assert list(trace)[0] is list(trace)[0]
