"""Unit coverage of plan compilation and its vector/trace primitives.

``compile_plan``'s gates and flag computation, ``_vec.chain_bounds``'s
numpy/scalar bit parity, and ``TraceLane.extend_rows``'s equivalence to
row-at-a-time appends.  The end-to-end drain exactness lives in
``tests/integration/test_plan_eval_differential.py``.
"""

from array import array

import pytest

from repro.apps import get_application
from repro.errors import PlanCompileError
from repro.partition.base import PlanConfig, get_strategy
from repro.sim import _vec
from repro.sim.plan import compile_plan, plan_eval_enabled
from repro.sim.tracestore import TraceStore


def _static_plan(platform, app="STREAM-Loop", n=2048, strategy="SP-Unified"):
    prog = get_application(app).program(n, iterations=2, sync=False)
    return get_strategy(strategy).plan(prog, platform)


class TestCompileGates:
    def test_static_plan_compiles(self, paper_platform):
        plan = _static_plan(paper_platform)
        compiled = compile_plan(plan, paper_platform)
        assert compiled.drainable
        assert compiled.n_compute + compiled.n_barriers == len(
            plan.graph.instances
        )
        assert len(compiled.durations) == len(plan.graph.instances)
        # every compute instance got a positive duration and a resource
        for inst in plan.graph.instances:
            if inst.is_barrier:
                continue
            i = inst.instance_id
            assert compiled.durations[i] > 0
            assert compiled.resource_ids[i] is not None

    def test_dynamic_scheduler_rejected(self, paper_platform):
        prog = get_application("STREAM-Loop").program(2048, iterations=2)
        plan = get_strategy("DP-Perf").plan(prog, paper_platform)
        with pytest.raises(PlanCompileError):
            compile_plan(plan, paper_platform)

    def test_runtime_overrides_applied(self, paper_platform):
        prog = get_application("STREAM-Loop").program(2048, iterations=2)
        plan = get_strategy("Only-GPU").plan(prog, paper_platform)
        assert plan.runtime_overrides  # zeroes OmpSs overheads
        compiled = compile_plan(plan, paper_platform)
        for key, value in plan.runtime_overrides.items():
            assert getattr(compiled.config, key) == value

    def test_writeback_flags_only_on_synced_device_writers(
        self, paper_platform
    ):
        plan = _static_plan(paper_platform)
        compiled = compile_plan(plan, paper_platform)
        host = paper_platform.host.device_id
        for inst in plan.graph.instances:
            if inst.is_barrier:
                continue
            if compiled.writeback_flags[inst.instance_id]:
                rid = compiled.resource_ids[inst.instance_id]
                assert not rid.startswith(host)

    def test_env_seam(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_EVAL", raising=False)
        assert not plan_eval_enabled()
        monkeypatch.setenv("REPRO_PLAN_EVAL", "1")
        assert plan_eval_enabled()
        monkeypatch.setenv("REPRO_PLAN_EVAL", "0")
        assert not plan_eval_enabled()


class TestChainBounds:
    CASES = [
        ([0.5], [array("d", [0.25, 0.125, 1.5])]),
        ([1.0, 2.0], [array("d", [0.1] * 7), array("d", [])]),
        ([0.0, 3.5, 7.25], [array("d", [1e-9, 2.5]), array("d", [0.125]),
                            array("d", [0.3, 0.7, 0.11, 1e3])]),
        ([], []),
    ]

    @pytest.mark.parametrize("t0s,rows", CASES)
    def test_matches_scalar_lane_bounds(self, t0s, rows):
        got = _vec.chain_bounds(t0s, rows)
        want = [_vec.lane_bounds(t0, row) for t0, row in zip(t0s, rows)]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert list(g) == list(w)  # bit-exact, == not approx

    @pytest.mark.parametrize("t0s,rows", CASES)
    def test_scalar_fallback_identical(self, t0s, rows, monkeypatch):
        got = [list(b) for b in _vec.chain_bounds(t0s, rows)]
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        fallback = [list(b) for b in _vec.chain_bounds(t0s, rows)]
        assert got == fallback


class TestExtendRows:
    def _rowwise(self, lane, rows):
        for start, end, sa, a, b, c, size, kern in rows:
            lane.append(start, end, args=(sa, a, b, c), size=size,
                        kernel=kern)

    def test_matches_per_row_appends(self):
        rows = [
            (0.0, 1.0, "k1", 0, 10, 7, 40, "k1"),
            (1.0, 2.5, "k2", 10, 20, 8, 40, "k2"),
            (2.5, 2.75, "k1", 20, 30, 9, 40, "k1"),
        ]
        stores = TraceStore(), TraceStore()
        lanes = [
            s.lane("r0", "compute", "", device="gpu", device_kind="gpu")
            for s in stores
        ]
        self._rowwise(lanes[0], rows)
        lanes[1].extend_rows(
            [r[0] for r in rows], [r[1] for r in rows],
            str_args=[r[2] for r in rows], args_a=[r[3] for r in rows],
            args_b=[r[4] for r in rows], args_c=[r[5] for r in rows],
            sizes=[r[6] for r in rows], kernels=[r[7] for r in rows],
        )
        import pickle

        assert stores[0].makespan() == stores[1].makespan()
        assert pickle.dumps(stores[0], 5) == pickle.dumps(stores[1], 5)

    def test_defaults_for_omitted_columns(self):
        store = TraceStore()
        lane = store.lane("r0", "compute", "", device="gpu",
                          device_kind="gpu")
        lane.extend_rows([0.0, 1.0], [1.0, 2.0])
        assert len(list(store.iter_rows())) == 2
        assert store.makespan() == 2.0

    def test_length_mismatch_rejected(self):
        store = TraceStore()
        lane = store.lane("r0", "compute", "", device="gpu",
                          device_kind="gpu")
        with pytest.raises(ValueError):
            lane.extend_rows([0.0, 1.0], [1.0])
