"""Vectorized analytics vs the pure-Python column scans, bit for bit.

``repro.sim._vec`` promises that every float the numpy view computes is
bit-identical to the pure-Python fallback, because downstream reports
must not depend on whether numpy is installed.  These tests force both
paths on the same stores — ``vec_view(force=True)`` for the vectorized
side, ``REPRO_NO_NUMPY`` for the scalar side — and demand ``==``, never
approx.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.sim import _vec
from repro.sim.analysis import analyze_trace, compute_overlap_fraction
from repro.sim.tracestore import TraceStore

from tests.sim.test_tracestore import random_trace


@pytest.fixture
def no_numpy_env(monkeypatch):
    """Force the pure-Python path for code under this fixture."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")


def force_vec(store):
    view = store.vec_view(force=True)
    assert view is not None, "vec view must build when numpy is available"
    return view


def python_aggregates(store, monkeypatch):
    """Every public aggregate, computed on the scalar path."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    try:
        return {
            "busy": {
                rid: store.busy_time(rid) for rid in store.resource_ids_seen()
            },
            "busy_compute": {
                rid: store.busy_time(rid, category="compute")
                for rid in store.resource_ids_seen()
            },
            "total": {
                cat: store.total_time(category=cat)
                for cat in store.categories_seen()
            },
            "by_resource": store.busy_by_resource(),
            "transfer": store.transfer_time_by_direction(),
            "elements": store.elements_by_device(),
            "instances": store.instance_count_by_device(),
            "ratio": store.ratio_by_kernel(),
        }
    finally:
        monkeypatch.delenv("REPRO_NO_NUMPY")


@pytest.mark.parametrize("seed", range(10))
class TestVecMatchesPython:
    def test_aggregates_bit_identical(self, seed, monkeypatch):
        store = random_trace(seed).store
        oracle = python_aggregates(store, monkeypatch)
        vec = force_vec(store)
        assert {r: vec.busy_time(r) for r in store.resource_ids_seen()} == oracle["busy"]
        assert {
            r: vec.busy_time(r, "compute") for r in store.resource_ids_seen()
        } == oracle["busy_compute"]
        assert {
            c: vec.total_time(c) for c in store.categories_seen()
        } == oracle["total"]
        assert vec.busy_by_resource() == oracle["by_resource"]
        assert vec.transfer_time_by_direction() == oracle["transfer"]
        assert vec.elements_by_kind("compute") == oracle["elements"]
        assert vec.instance_count_by_kind() == oracle["instances"]
        assert vec.ratio_by_kernel("compute") == oracle["ratio"]

    def test_store_queries_route_identically(self, seed, monkeypatch):
        """The store's own query methods agree across both routes."""
        store = random_trace(seed).store
        oracle = python_aggregates(store, monkeypatch)
        monkeypatch.setattr(_vec, "VEC_MIN_ROWS", 1)  # route via the view
        assert {
            r: store.busy_time(r) for r in store.resource_ids_seen()
        } == oracle["busy"]
        assert store.busy_by_resource() == oracle["by_resource"]
        assert store.transfer_time_by_direction() == oracle["transfer"]
        assert store.elements_by_device() == oracle["elements"]
        assert store.instance_count_by_device() == oracle["instances"]
        assert store.ratio_by_kernel() == oracle["ratio"]

    def test_analysis_bit_identical(self, seed, monkeypatch):
        store = random_trace(seed, n=700).store
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        overlap_py = compute_overlap_fraction(store)
        stats_py = analyze_trace(store)
        monkeypatch.delenv("REPRO_NO_NUMPY")
        assert store.vec_view() is not None  # 700 rows >= VEC_MIN_ROWS
        assert compute_overlap_fraction(store) == overlap_py
        assert analyze_trace(store) == stats_py


class TestEdgeCases:
    def test_empty_store(self):
        store = TraceStore()
        assert store.vec_view(force=True) is not None or not _vec.enabled()
        vec = force_vec(store)
        assert vec.busy_by_resource() == {}
        assert vec.transfer_time_by_direction() == {"h2d": 0.0, "d2h": 0.0}
        assert vec.elements_by_kind("compute") == {}
        assert vec.ratio_by_kernel("compute") == {}
        assert compute_overlap_fraction(store) == 0.0

    def test_single_row(self):
        store = TraceStore()
        store.record("a", "t", "compute", 0.5, 1.5, {"size": 3, "device_kind": "cpu"})
        vec = force_vec(store)
        assert vec.busy_time("a") == store.busy_time("a") == 1.0
        assert vec.elements_by_kind("compute") == {"cpu": 3}
        assert compute_overlap_fraction(store) == 0.0  # one device only

    def test_zero_duration_rows(self, monkeypatch):
        store = TraceStore()
        store.record("a", "t", "compute", 1.0, 1.0, {"device": "d0"})
        store.record("b", "t", "compute", 1.0, 1.0, {"device": "d1"})
        store.record("a", "t", "compute", 1.0, 2.0, {"device": "d0"})
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        overlap_py = compute_overlap_fraction(store)
        monkeypatch.delenv("REPRO_NO_NUMPY")
        vec = force_vec(store)
        assert vec.overlap_seconds(vec.compute_device_intervals()) / store.makespan() == overlap_py

    def test_tied_timestamps(self, monkeypatch):
        """Identical starts and touching intervals: tie-break must match."""
        store = TraceStore()
        rows = [
            ("x", 0.0, 2.0, "d0"), ("y", 0.0, 2.0, "d1"),
            ("x", 2.0, 3.0, "d0"), ("y", 2.0, 3.0, "d1"),
            ("x", 3.0, 3.0, "d0"), ("y", 3.0, 4.0, "d1"),
        ]
        for rid, start, end, device in rows:
            store.record(rid, "t", "compute", start, end, {"device": device})
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        overlap_py = compute_overlap_fraction(store)
        stats_py = analyze_trace(store)
        monkeypatch.delenv("REPRO_NO_NUMPY")
        monkeypatch.setattr(_vec, "VEC_MIN_ROWS", 1)
        assert compute_overlap_fraction(store) == overlap_py
        assert analyze_trace(store) == stats_py

    def test_device_tag_and_resource_id_share_a_group(self, monkeypatch):
        """A device string reached via meta and via resource id is one group."""
        store = TraceStore()
        store.record("gpu:0", "t", "compute", 0.0, 1.0, {"device": "cpu:0"})
        store.record("cpu:0", "t", "compute", 0.0, 1.0)  # no device meta
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        overlap_py = compute_overlap_fraction(store)
        monkeypatch.delenv("REPRO_NO_NUMPY")
        assert overlap_py == 0.0  # both rows belong to group "cpu:0"
        vec = force_vec(store)
        assert vec.compute_device_intervals() is None
        monkeypatch.setattr(_vec, "VEC_MIN_ROWS", 1)
        assert compute_overlap_fraction(store) == overlap_py


class TestGating:
    def test_env_gate_disables_view(self, no_numpy_env):
        store = random_trace(0, n=600).store
        assert not _vec.enabled()
        assert store.vec_view() is None
        assert store.vec_view(force=True) is None

    def test_small_stores_stay_scalar(self):
        store = random_trace(0, n=20).store
        assert store.vec_view() is None  # under VEC_MIN_ROWS
        assert store.vec_view(force=True) is not None

    def test_view_invalidated_by_append(self):
        store = random_trace(0, n=30).store
        first = store.vec_view(force=True)
        assert store.vec_view(force=True) is first  # cached per row count
        store.record("new", "t", "compute", 0.0, 1.0)
        second = store.vec_view(force=True)
        assert second is not first
        assert second.n == len(store)
