"""Execution trace queries and Gantt rendering."""

import pytest

from repro.sim.trace import ExecutionTrace, TraceRecord, render_gantt


def rec(resource, start, end, *, category="compute", label="t", **meta):
    return TraceRecord(
        resource_id=resource, label=label, category=category,
        start=start, end=end, meta=meta,
    )


@pytest.fixture
def trace():
    t = ExecutionTrace()
    t.add(rec("cpu:0", 0.0, 1.0, size=100, device_kind="cpu", kernel="k"))
    t.add(rec("gpu0", 0.0, 0.5, size=300, device_kind="gpu", kernel="k"))
    t.add(rec("link", 0.5, 0.8, category="transfer", direction="h2d"))
    t.add(rec("gpu0", 0.8, 1.4, size=200, device_kind="gpu", kernel="j"))
    return t


class TestQueries:
    def test_len_and_iter(self, trace):
        assert len(trace) == 4
        assert len(list(trace)) == 4

    def test_makespan(self, trace):
        assert trace.makespan() == pytest.approx(1.4)

    def test_makespan_empty(self):
        assert ExecutionTrace().makespan() == 0.0

    def test_by_category(self, trace):
        assert len(trace.by_category("compute")) == 3
        assert len(trace.by_category("transfer")) == 1

    def test_by_resource(self, trace):
        assert len(trace.by_resource("gpu0")) == 2

    def test_busy_time(self, trace):
        assert trace.busy_time("gpu0") == pytest.approx(1.1)
        assert trace.busy_time("gpu0", category="compute") == pytest.approx(1.1)
        assert trace.busy_time("link", category="transfer") == pytest.approx(0.3)

    def test_total_time_per_category(self, trace):
        assert trace.total_time(category="compute") == pytest.approx(2.1)

    def test_elements_by_device(self, trace):
        assert trace.elements_by_device() == {"cpu": 100, "gpu": 500}

    def test_instance_count_by_device(self, trace):
        assert trace.instance_count_by_device() == {"cpu": 1, "gpu": 2}

    def test_duration_property(self):
        r = rec("x", 1.0, 3.5)
        assert r.duration == pytest.approx(2.5)


class TestGantt:
    def test_empty_trace(self):
        assert render_gantt(ExecutionTrace()) == "(empty trace)"

    def test_rows_per_resource(self, trace):
        out = render_gantt(trace, width=40)
        lines = out.splitlines()
        assert any(line.startswith("cpu:0") for line in lines)
        assert any(line.startswith("gpu0") for line in lines)
        assert any(line.startswith("link") for line in lines)

    def test_glyphs(self, trace):
        out = render_gantt(trace, width=40)
        assert "#" in out  # compute
        assert "=" in out  # transfer

    def test_resource_filter(self, trace):
        out = render_gantt(trace, width=40, resources=["gpu0"])
        assert "cpu:0" not in out

    def test_resource_filter_accepts_generator(self, trace):
        # regression: the renderer walks ``resources`` twice (name-width
        # pass, then row pass); a generator used to come back empty on the
        # second pass and render a chart with no rows at all
        gen = (rid for rid in ("gpu0", "link"))
        out = render_gantt(trace, width=40, resources=gen)
        assert out == render_gantt(trace, width=40, resources=["gpu0", "link"])
        lines = out.splitlines()
        assert any(line.startswith("gpu0") for line in lines)
        assert any(line.startswith("link") for line in lines)
