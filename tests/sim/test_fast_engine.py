"""The slot-dispatched fast engine: same contract as the oracle Simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim import ExecutionTrace, SimResource
from repro.sim.engine import PRIORITY_COMPLETION, PRIORITY_SCHEDULE, Simulator
from repro.sim.fast_engine import (
    FastEvent,
    FastSimulator,
    fast_engine_enabled,
    make_simulator,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = FastSimulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_break_ties_by_priority(self):
        sim = FastSimulator()
        log = []
        sim.at(1.0, lambda: log.append("sched"), priority=PRIORITY_SCHEDULE)
        sim.at(1.0, lambda: log.append("done"), priority=PRIORITY_COMPLETION)
        sim.run()
        assert log == ["done", "sched"]

    def test_same_priority_preserves_insertion_order(self):
        sim = FastSimulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_is_relative_to_now(self):
        sim = FastSimulator()
        times = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [pytest.approx(1.5)]

    def test_cannot_schedule_into_the_past(self):
        sim = FastSimulator()
        sim.at(5.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = FastSimulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_handle_is_api_compatible_with_oracle_events(self):
        sim = FastSimulator()
        handle = sim.at(2.0, lambda: None, priority=3)
        assert isinstance(handle, FastEvent)
        assert handle.time == 2.0
        assert handle.priority == 3
        assert handle.seq == 0
        assert not handle.cancelled


class TestRun:
    def test_run_returns_final_time(self):
        sim = FastSimulator()
        sim.at(3.5, lambda: None)
        assert sim.run() == pytest.approx(3.5)

    def test_empty_run_stays_at_zero(self):
        assert FastSimulator().run() == 0.0

    def test_until_horizon_leaves_later_events_queued(self):
        sim = FastSimulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == pytest.approx(5.0)
        assert sim.pending == 1
        sim.run()
        assert log == [1, 10]

    def test_cancelled_events_do_not_fire(self):
        sim = FastSimulator()
        log = []
        event = sim.at(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_events_may_schedule_events(self):
        sim = FastSimulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        assert sim.run() == pytest.approx(10.0)
        assert count[0] == 10

    def test_runaway_guard(self):
        sim = FastSimulator()

        def forever():
            sim.after(0.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_max_events_error_names_the_config_knob(self):
        sim = FastSimulator()

        def forever():
            sim.after(0.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError, match="max_events=7") as exc:
            sim.run(max_events=7)
        assert "RuntimeConfig" in str(exc.value)
        assert "--max-events" in str(exc.value)

    def test_cancelled_events_do_not_count_against_max_events(self):
        sim = FastSimulator()
        log = []
        events = [sim.at(float(i), lambda i=i: log.append(i)) for i in range(10)]
        for event in events[:7]:
            event.cancel()
        sim.run(max_events=3)
        assert log == [7, 8, 9]

    def test_not_reentrant(self):
        sim = FastSimulator()
        errors = []

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.at(1.0, inner)
        sim.run()
        assert len(errors) == 1


class TestPending:
    def test_pending_counts_only_live_events(self):
        sim = FastSimulator()
        events = [sim.at(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending == 2

    def test_double_cancel_counted_once(self):
        sim = FastSimulator()
        event = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_never_goes_negative(self):
        sim = FastSimulator()
        fired = []
        first = sim.at(1.0, lambda: fired.append("a"))
        sim.at(2.0, first.cancel)  # cancels an event that already popped
        sim.run()
        assert fired == ["a"]
        assert sim.pending == 0

    def test_mass_cancellation_compacts_the_heap(self):
        sim = FastSimulator()
        keep = sim.at(1000.0, lambda: None)
        events = [sim.at(float(i + 1), lambda: None) for i in range(200)]
        for event in events:
            event.cancel()
        assert sim.pending == 1
        assert len(sim._heap) < 200
        assert sim.run() == pytest.approx(1000.0)
        assert not keep.cancelled


class TestReplayLanes:
    def test_lane_final_time_is_duration_sum(self):
        sim = FastSimulator()
        lane = sim.replay_lane([1.0, 2.0, 0.5])
        assert sim.run() == pytest.approx(3.5)
        assert lane.drained
        assert lane.remaining == 0

    def test_lanes_drain_concurrently(self):
        # two serial resources replay side by side: the makespan is the
        # longest lane, not the sum of both
        sim = FastSimulator()
        sim.replay_lane([1.0] * 10)
        sim.replay_lane([3.0, 3.0])
        assert sim.run() == pytest.approx(10.0)

    def test_empty_lane_schedules_nothing(self):
        sim = FastSimulator()
        lane = sim.replay_lane([])
        assert lane.drained
        assert sim.pending == 0
        assert sim.run() == 0.0

    def test_negative_duration_rejected(self):
        sim = FastSimulator()
        with pytest.raises(SimulationError):
            sim.replay_lane([1.0, -0.5])

    def test_lane_max_events_budget_applies(self):
        sim = FastSimulator()
        sim.replay_lane([1.0] * 50)
        with pytest.raises(SimulationError, match="max_events=10"):
            sim.run(max_events=10)

    def test_lanes_mix_with_callback_events(self):
        # once a callback event exists, the general loop drains both and
        # callbacks observe lane completions advancing the clock
        sim = FastSimulator()
        seen = []
        lane = sim.replay_lane([1.0, 1.0, 1.0])
        sim.at(2.5, lambda: seen.append((sim.now, lane.remaining)))
        assert sim.run() == pytest.approx(3.0)
        assert seen == [(2.5, 0)]  # third occupation already in flight

    def test_until_horizon_pauses_a_lane(self):
        sim = FastSimulator()
        lane = sim.replay_lane([1.0] * 6)
        sim.run(until=2.5)
        assert sim.now == pytest.approx(2.5)
        assert not lane.drained
        assert sim.run() == pytest.approx(6.0)
        assert lane.drained


class TestInlineCompletions:
    def test_schedule_completion_consumes_one_seq_like_the_oracle_closure(self):
        # identical seq consumption is what keeps interleaving (and thus
        # artifacts) byte-identical between the two engines
        sim = FastSimulator()
        res = SimResource(sim, "cpu0", ExecutionTrace())
        res.occupy(1.0, label="a", category="compute")
        assert sim._seq == 1
        sim.at(0.5, lambda: None)
        assert sim._seq == 2

    def test_resource_trace_identical_across_engines(self):
        def drive(sim):
            trace = ExecutionTrace()
            res = SimResource(sim, "r0", trace)
            done = []
            res.occupy(1.0, label="first", category="compute",
                       on_complete=lambda: done.append(sim.now))
            res.occupy(0.5, label=("second {}", 1), category="transfer",
                       meta={"k": 1})
            sim.run()
            return done, [
                (r.resource_id, r.label, r.category, r.start, r.end, r.meta)
                for r in trace
            ]

        assert drive(FastSimulator()) == drive(Simulator())

    def test_tuple_on_complete_dispatch(self):
        # the executor passes (fn, arg) pairs to skip closure allocation
        sim = FastSimulator()
        res = SimResource(sim, "r0", None)
        got = []
        res.occupy(1.0, label="x", category="compute",
                   on_complete=(got.append, "payload"))
        sim.run()
        assert got == ["payload"]


class TestEngineSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FAST_ENGINE", raising=False)
        assert fast_engine_enabled()
        assert isinstance(make_simulator(), FastSimulator)

    @pytest.mark.parametrize("value", ["1", "true", "on"])
    def test_env_flag_selects_the_oracle(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_FAST_ENGINE", value)
        assert not fast_engine_enabled()
        sim = make_simulator()
        assert isinstance(sim, Simulator)
        assert not isinstance(sim, FastSimulator)

    def test_zero_means_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FAST_ENGINE", "0")
        assert fast_engine_enabled()

    def test_capability_flag_only_on_fast_engine(self):
        assert FastSimulator.inline_completions
        assert not hasattr(Simulator, "inline_completions")
