"""Serial resource semantics (FIFO queueing, completion callbacks)."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace


@pytest.fixture
def rig():
    sim = Simulator()
    trace = ExecutionTrace()
    return sim, trace, SimResource(sim, "r0", trace)


class TestOccupy:
    def test_single_occupation_records_interval(self, rig):
        sim, trace, res = rig
        res.occupy(2.0, label="work", category="compute")
        sim.run()
        (rec,) = trace.records
        assert (rec.start, rec.end) == (0.0, 2.0)
        assert rec.resource_id == "r0"

    def test_fifo_serialization(self, rig):
        sim, trace, res = rig
        res.occupy(1.0, label="a", category="compute")
        res.occupy(2.0, label="b", category="compute")
        res.occupy(0.5, label="c", category="compute")
        sim.run()
        assert [(r.label, r.start, r.end) for r in trace.records] == [
            ("a", 0.0, 1.0), ("b", 1.0, 3.0), ("c", 3.0, 3.5),
        ]

    def test_completion_callbacks_fire_in_order(self, rig):
        sim, _, res = rig
        log = []
        res.occupy(1.0, label="a", category="c",
                   on_complete=lambda: log.append(("a", sim.now)))
        res.occupy(1.0, label="b", category="c",
                   on_complete=lambda: log.append(("b", sim.now)))
        sim.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_zero_duration_occupation_allowed(self, rig):
        sim, trace, res = rig
        fired = []
        res.occupy(0.0, label="z", category="c",
                   on_complete=lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_duration_rejected(self, rig):
        _, _, res = rig
        with pytest.raises(SimulationError):
            res.occupy(-1.0, label="bad", category="c")

    def test_occupation_enqueued_mid_run(self, rig):
        sim, trace, res = rig

        def chain():
            res.occupy(1.0, label="late", category="c")

        res.occupy(1.0, label="early", category="c", on_complete=chain)
        sim.run()
        assert [r.label for r in trace.records] == ["early", "late"]
        assert trace.records[1].start == pytest.approx(1.0)


class TestBusyState:
    def test_busy_until_tracks_queue(self, rig):
        sim, _, res = rig
        assert res.busy_until == 0.0
        res.occupy(1.0, label="a", category="c")
        res.occupy(2.0, label="b", category="c")
        assert res.busy
        assert res.queued == 1
        assert res.busy_until == pytest.approx(3.0)
        sim.run()
        assert not res.busy
        assert res.queued == 0

    def test_idle_busy_until_is_now(self, rig):
        sim, _, res = rig
        sim.at(5.0, lambda: None)
        sim.run()
        assert res.busy_until == pytest.approx(5.0)
