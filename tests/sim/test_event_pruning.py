"""Cancelled-event pruning: the configurable compaction threshold.

Both engines drop cancelled slots by rebuilding the heap once cancelled
entries dominate.  The rebuild trigger (``compact_min``) used to be a
fixed class constant; cancel-heavy workloads (schedule-then-reschedule
churn over a small live set) paid one O(n) heapify per 64 cancels no
matter what.  The threshold is now a constructor knob on both engines
and on :func:`make_simulator`.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.fast_engine import FastSimulator, make_simulator

ENGINES = [Simulator, FastSimulator]


def _noop() -> None:
    pass


def _churn(sim, *, cancels: int, live: int = 8) -> None:
    """Schedule/cancel ``cancels`` far-future events over a small live set.

    The cancelled slots sit beyond the run horizon, so they linger in the
    heap until a compaction drops them — the reschedule-churn shape that
    used to pay one O(n) heapify per 64 cancels, fixed threshold or not.
    """
    horizon = float(cancels + 1)
    for i in range(cancels):
        t = float(i + 1)
        handle = sim.at(horizon + i, _noop)
        for _ in range(live):
            sim.at(t, _noop)
        handle.cancel()
        sim.run(until=t)


class TestCompactMin:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_default_matches_class_constant(self, engine):
        sim = engine()
        assert sim.compact_min == engine._COMPACT_MIN == 64

    @pytest.mark.parametrize("engine", ENGINES)
    def test_low_threshold_compacts_eagerly(self, engine):
        sim = engine(compact_min=4)
        events = [sim.at(1.0, _noop) for _ in range(16)]
        for e in events[:12]:
            e.cancel()
        assert sim.compactions >= 1
        # the rebuild really dropped the cancelled slots
        assert sim.pending == 4
        assert len(sim._heap) < 16

    @pytest.mark.parametrize("engine", ENGINES)
    def test_high_threshold_never_rebuilds(self, engine):
        sim = engine(compact_min=10**9)
        events = [sim.at(1.0, _noop) for _ in range(256)]
        for e in events[:255]:
            e.cancel()
        assert sim.compactions == 0
        # cancelled slots stay queued but the live accounting is exact
        assert sim.pending == 1
        assert len(sim._heap) == 256
        assert sim.run() == 1.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_minority_cancels_never_trigger_rebuild(self, engine):
        # dominance gate: a big live heap absorbs a burst of cancels
        # without any O(n) rebuild, whatever the threshold
        sim = engine(compact_min=4)
        live = [sim.at(2.0, _noop) for _ in range(1000)]
        for e in live[:400]:
            e.cancel()
        assert sim.compactions == 0
        assert sim.pending == 600


class TestCancelHeavyChurn:
    """The heapify-storm regression the knob exists for."""

    CANCELS = 512

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rebuilds_bounded_by_threshold(self, engine):
        eager = engine(compact_min=8)
        _churn(eager, cancels=self.CANCELS)
        lazy = engine(compact_min=256)
        _churn(lazy, cancels=self.CANCELS)
        # each rebuild consumes >= compact_min cancellations, so raising
        # the threshold provably amortizes the O(n) rebuild passes
        assert eager.compactions <= self.CANCELS // 8
        assert lazy.compactions <= self.CANCELS // 256
        assert lazy.compactions < eager.compactions

    @pytest.mark.parametrize("engine", ENGINES)
    def test_behavior_identical_across_thresholds(self, engine):
        fired: dict[int, list] = {}
        for threshold in (2, 64, 10**9):
            order: list = []
            sim = engine(compact_min=threshold)
            keep = []
            for i in range(64):
                handle = sim.at(
                    float(i % 7 + 1), (lambda i=i: order.append(i))
                )
                if i % 3 == 0:
                    handle.cancel()
                else:
                    keep.append(handle)
            sim.run()
            fired[threshold] = order
        assert fired[2] == fired[64] == fired[10**9]
        assert len(fired[64]) == sum(1 for i in range(64) if i % 3)


class TestSeamPassthrough:
    @pytest.mark.parametrize("env", ["0", "1"])
    def test_make_simulator_forwards_threshold(self, env, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FAST_ENGINE", env)
        sim = make_simulator(compact_min=7)
        assert sim.compact_min == 7
        expected = Simulator if env == "1" else FastSimulator
        assert type(sim) is expected

    def test_make_simulator_default_keeps_engine_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FAST_ENGINE", raising=False)
        assert make_simulator().compact_min == FastSimulator._COMPACT_MIN
