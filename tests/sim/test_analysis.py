"""Trace analysis: utilization, overlap, transfer shares."""

import pytest

from repro.sim.analysis import (
    analyze_trace,
    compute_overlap_fraction,
    format_stats,
)
from repro.sim.trace import ExecutionTrace, TraceRecord


def rec(resource, start, end, *, category="compute", device=None, **meta):
    if device is not None:
        meta["device"] = device
    return TraceRecord(
        resource_id=resource, label="t", category=category,
        start=start, end=end, meta=meta,
    )


def trace_of(*records):
    t = ExecutionTrace()
    for r in records:
        t.add(r)
    return t


class TestOverlapFraction:
    def test_disjoint_devices_zero_overlap(self):
        t = trace_of(
            rec("cpu:0", 0, 1, device="cpu"),
            rec("gpu0", 1, 2, device="gpu0"),
        )
        assert compute_overlap_fraction(t) == 0.0

    def test_full_overlap(self):
        t = trace_of(
            rec("cpu:0", 0, 2, device="cpu"),
            rec("gpu0", 0, 2, device="gpu0"),
        )
        assert compute_overlap_fraction(t) == pytest.approx(1.0)

    def test_partial_overlap(self):
        t = trace_of(
            rec("cpu:0", 0, 3, device="cpu"),
            rec("gpu0", 2, 4, device="gpu0"),
        )
        # overlap [2,3) of makespan 4
        assert compute_overlap_fraction(t) == pytest.approx(0.25)

    def test_cpu_threads_count_as_one_device(self):
        t = trace_of(
            rec("cpu:0", 0, 2, device="cpu"),
            rec("cpu:1", 0, 2, device="cpu"),
        )
        assert compute_overlap_fraction(t) == 0.0

    def test_transfers_do_not_count(self):
        t = trace_of(
            rec("cpu:0", 0, 2, device="cpu"),
            rec("link:gpu0:h2d", 0, 2, category="transfer"),
        )
        assert compute_overlap_fraction(t) == 0.0

    def test_three_devices_sweep(self):
        t = trace_of(
            rec("cpu:0", 0, 4, device="cpu"),
            rec("gpu0", 1, 3, device="gpu0"),
            rec("gpu1", 2, 5, device="gpu1"),
        )
        # >=2 active: [1,3) and [3,4) -> 3 of makespan 5
        assert compute_overlap_fraction(t) == pytest.approx(0.6)

    def test_empty_trace(self):
        assert compute_overlap_fraction(ExecutionTrace()) == 0.0


class TestAnalyzeTrace:
    def test_resource_stats(self):
        t = trace_of(
            rec("gpu0", 0, 2, device="gpu0"),
            rec("gpu0", 3, 4, device="gpu0"),
            rec("link:gpu0:h2d", 0, 1, category="transfer"),
        )
        stats = analyze_trace(t)
        gpu = stats.resource("gpu0")
        assert gpu.busy_s == pytest.approx(3.0)
        assert gpu.utilization == pytest.approx(0.75)
        assert gpu.records == 2
        assert gpu.by_category == {"compute": 3.0}

    def test_transfer_share(self):
        t = trace_of(
            rec("gpu0", 0, 10, device="gpu0"),
            rec("link:gpu0:h2d", 0, 9, category="transfer"),
        )
        stats = analyze_trace(t)
        assert stats.transfer_share["link:gpu0:h2d"] == pytest.approx(0.9)

    def test_unknown_resource_raises(self):
        stats = analyze_trace(trace_of(rec("gpu0", 0, 1, device="gpu0")))
        with pytest.raises(KeyError):
            stats.resource("nope")

    def test_format_contains_resources(self):
        stats = analyze_trace(trace_of(rec("gpu0", 0, 1, device="gpu0")))
        text = format_stats(stats)
        assert "gpu0" in text and "makespan" in text


class TestOnRealRuns:
    def test_static_split_overlaps_processors(self, paper_platform):
        """Glinda's raison d'être: the split overlaps CPU and GPU compute.

        MatrixMul is the compute-bound case where both processors crunch
        for most of the run; transfer-bound apps (BlackScholes) overlap
        CPU compute with GPU *transfers* instead, which this metric
        deliberately does not count.
        """
        from repro.apps import get_application
        from repro.partition import get_strategy

        program = get_application("MatrixMul").program()
        result = get_strategy("SP-Single").run(program, paper_platform)
        stats = analyze_trace(result.trace)
        assert stats.overlap_fraction > 0.8

    def test_only_cpu_has_no_overlap_or_transfers(self, paper_platform):
        from repro.apps import get_application
        from repro.partition import get_strategy

        program = get_application("BlackScholes").program()
        result = get_strategy("Only-CPU").run(program, paper_platform)
        stats = analyze_trace(result.trace)
        assert stats.overlap_fraction == 0.0
        assert not stats.transfer_share

    def test_stream_only_gpu_link_share(self, paper_platform):
        """The 88%-transfer observation through the analysis module."""
        from repro.apps import get_application
        from repro.partition import get_strategy

        program = get_application("STREAM-Seq").program()
        result = get_strategy("Only-GPU").run(program, paper_platform)
        stats = analyze_trace(result.trace)
        total_link = sum(stats.transfer_share.values())
        assert total_link > 0.75
