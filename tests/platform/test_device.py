"""Device specs and the roofline cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.device import (
    Device,
    DeviceKind,
    DeviceSpec,
    RooflineCostModel,
)


def spec(**overrides) -> DeviceSpec:
    base = dict(
        name="dev", kind=DeviceKind.CPU, cores=4, frequency_ghz=2.0,
        peak_gflops_sp=100.0, peak_gflops_dp=50.0,
        mem_bandwidth_gbs=40.0, mem_capacity_gb=8.0,
        launch_overhead_s=0.0,
    )
    base.update(overrides)
    return DeviceSpec(**base)


class TestDeviceSpec:
    def test_unit_conversions(self):
        s = spec()
        assert s.peak_flops_sp == 100e9
        assert s.peak_flops_dp == 50e9
        assert s.mem_bandwidth == 40e9
        assert s.mem_capacity_bytes == 8e9

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ConfigurationError):
            spec(cores=0)

    def test_rejects_nonpositive_rates(self):
        for attr in ("peak_gflops_sp", "peak_gflops_dp",
                     "mem_bandwidth_gbs", "mem_capacity_gb"):
            with pytest.raises(ConfigurationError):
                spec(**{attr: 0.0})

    def test_rejects_negative_launch_overhead(self):
        with pytest.raises(ConfigurationError):
            spec(launch_overhead_s=-1e-6)


class TestRooflineCostModel:
    def test_compute_bound(self):
        model = RooflineCostModel()
        # 100 GFLOP at 100 GFLOPS -> 1 s; memory side is negligible
        t = model.compute_time(spec(), flops=100e9, mem_bytes=1.0)
        assert t == pytest.approx(1.0)

    def test_memory_bound(self):
        model = RooflineCostModel()
        # 40 GB at 40 GB/s -> 1 s; compute side negligible
        t = model.compute_time(spec(), flops=1.0, mem_bytes=40e9)
        assert t == pytest.approx(1.0)

    def test_takes_the_max_of_both_roofs(self):
        model = RooflineCostModel()
        t = model.compute_time(spec(), flops=50e9, mem_bytes=40e9)
        assert t == pytest.approx(1.0)  # memory roof dominates 0.5 s compute

    def test_efficiency_scales_time(self):
        model = RooflineCostModel()
        t_full = model.compute_time(spec(), flops=100e9, mem_bytes=0.0)
        t_half = model.compute_time(
            spec(), flops=100e9, mem_bytes=0.0, compute_eff=0.5
        )
        assert t_half == pytest.approx(2 * t_full)

    def test_double_precision_uses_dp_peak(self):
        model = RooflineCostModel()
        t_sp = model.compute_time(spec(), flops=50e9, mem_bytes=0.0)
        t_dp = model.compute_time(
            spec(), flops=50e9, mem_bytes=0.0, double_precision=True
        )
        assert t_dp == pytest.approx(2 * t_sp)

    def test_launch_overhead_added_once(self):
        model = RooflineCostModel()
        t = model.compute_time(
            spec(launch_overhead_s=1e-3), flops=100e9, mem_bytes=0.0
        )
        assert t == pytest.approx(1.0 + 1e-3)

    def test_launch_overhead_can_be_excluded_at_model_level(self):
        model = RooflineCostModel(include_launch_overhead=False)
        t = model.compute_time(
            spec(launch_overhead_s=1e-3), flops=100e9, mem_bytes=0.0
        )
        assert t == pytest.approx(1.0)

    def test_rejects_negative_work(self):
        model = RooflineCostModel()
        with pytest.raises(ConfigurationError):
            model.compute_time(spec(), flops=-1.0, mem_bytes=0.0)

    def test_rejects_bad_efficiency(self):
        model = RooflineCostModel()
        for eff in (0.0, 1.5, -0.1):
            with pytest.raises(ConfigurationError):
                model.compute_time(
                    spec(), flops=1.0, mem_bytes=0.0, compute_eff=eff
                )

    def test_zero_work_costs_only_launch(self):
        model = RooflineCostModel()
        t = model.compute_time(
            spec(launch_overhead_s=5e-6), flops=0.0, mem_bytes=0.0
        )
        assert t == pytest.approx(5e-6)


class TestDevice:
    def test_kernel_time_exclude_launch(self):
        dev = Device("d0", spec(launch_overhead_s=1e-3))
        with_launch = dev.kernel_time(flops=100e9, mem_bytes=0.0)
        without = dev.kernel_time(
            flops=100e9, mem_bytes=0.0, include_launch=False
        )
        assert with_launch - without == pytest.approx(1e-3)

    def test_throughput_inverse_of_per_element_time(self):
        dev = Device("d0", spec())
        # 2 flops/elem at 100 GFLOPS -> 50e9 elems/s
        thr = dev.throughput(flops_per_elem=2.0, bytes_per_elem=0.0)
        assert thr == pytest.approx(50e9)

    def test_throughput_memory_limited(self):
        dev = Device("d0", spec())
        # 8 B/elem at 40 GB/s -> 5e9 elems/s
        thr = dev.throughput(flops_per_elem=0.0, bytes_per_elem=8.0)
        assert thr == pytest.approx(5e9)

    def test_throughput_rejects_zero_work(self):
        dev = Device("d0", spec())
        with pytest.raises(ConfigurationError):
            dev.throughput(flops_per_elem=0.0, bytes_per_elem=0.0)
