"""Xeon Phi preset: the analyzer is accelerator-agnostic (§I/§VII)."""

from repro.apps import get_application, paper_applications
from repro.core.analyzer import analyze
from repro.core.matchmaker import match
from repro.partition import get_strategy
from repro.platform import phi_platform
from repro.platform.device import DeviceKind


class TestPhiPreset:
    def test_kind_is_accelerator_not_gpu(self):
        platform = phi_platform()
        assert platform.accelerators[0].kind is DeviceKind.ACCELERATOR

    def test_resource_view(self):
        platform = phi_platform()
        resources = platform.compute_resources()
        assert len(resources) == 13  # 12 SMP threads + the Phi
        assert resources[-1].resource_id == "phi0"

    def test_memory_spaces(self):
        assert phi_platform().memory_spaces() == ["host", "phi0"]


class TestAnalyzerOnPhi:
    def test_classification_is_platform_independent(self):
        # the class depends on kernel structure only
        for app in paper_applications():
            n = max(256, app.paper_n // 512)
            assert analyze(app, n=n).app_class.value == app.paper_class

    def test_matchmaking_runs_end_to_end(self):
        platform = phi_platform()
        outcome = match(get_application("MatrixMul"), platform, n=2048)
        assert outcome.strategy == "SP-Single"
        assert outcome.result.makespan_s > 0
        # the Phi receives a share: ratios count any accelerator
        assert outcome.result.accelerator_fraction > 0

    def test_every_strategy_executes_on_phi(self):
        platform = phi_platform()
        program = get_application("STREAM-Seq").program(1 << 20)
        for name in ("Only-GPU", "Only-CPU", "SP-Unified", "SP-Varied",
                     "DP-Perf", "DP-Dep"):
            result = get_strategy(name).run(program, platform)
            assert result.makespan_s > 0

    def test_decision_step_collapses_to_phi_only(self):
        # at default accelerator efficiency the Phi is so far ahead of the
        # sequential CPU code that Glinda's decision step picks Only-GPU
        # (the Phi); the plan then matches the baseline up to OmpSs
        # task-management costs
        platform = phi_platform()
        program = get_application("MatrixMul").program()
        sp = get_strategy("SP-Single").run(program, platform)
        acc_only = get_strategy("Only-GPU").run(program, platform)
        assert sp.accelerator_fraction == 1.0
        assert sp.makespan_s <= acc_only.makespan_s * 1.02
