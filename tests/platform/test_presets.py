"""Platform presets — Table III fidelity."""

import pytest

from repro.platform.device import DeviceKind
from repro.platform.presets import (
    balanced_platform,
    fusion_platform,
    shen_icpp15_platform,
)


class TestShenPlatform:
    """The preset must match the paper's Table III verbatim."""

    def test_cpu_table3(self):
        cpu = shen_icpp15_platform().host.spec
        assert cpu.name == "Intel Xeon E5-2620"
        assert cpu.cores == 12  # 6 physical, HT enabled
        assert cpu.frequency_ghz == 2.0
        assert cpu.peak_gflops_sp == 384.0
        assert cpu.peak_gflops_dp == 192.0
        assert cpu.mem_bandwidth_gbs == 42.6
        assert cpu.mem_capacity_gb == 64.0

    def test_gpu_table3(self):
        gpu = shen_icpp15_platform().gpu.spec
        assert gpu.name == "Nvidia Tesla K20m"
        assert gpu.kind is DeviceKind.GPU
        assert gpu.cores == 2496
        assert gpu.frequency_ghz == 0.705
        assert gpu.peak_gflops_sp == 3519.3
        assert gpu.peak_gflops_dp == 1173.1
        assert gpu.mem_bandwidth_gbs == 208.0
        assert gpu.mem_capacity_gb == 5.0

    def test_pcie2_effective_bandwidth(self):
        link = shen_icpp15_platform().link_for("gpu0")
        assert link.bandwidth_gbs == pytest.approx(6.0)

    def test_resource_view(self):
        resources = shen_icpp15_platform().compute_resources()
        assert len(resources) == 13  # 12 SMP threads + 1 GPU


@pytest.mark.parametrize("factory", [balanced_platform, fusion_platform])
def test_other_presets_are_valid_platforms(factory):
    p = factory()
    assert p.host.kind is DeviceKind.CPU
    assert len(p.accelerators) == 1
    assert p.link_for(p.gpu.device_id).bandwidth_gbs > 0


def test_fusion_platform_has_fast_link():
    fusion = fusion_platform()
    shen = shen_icpp15_platform()
    assert (
        fusion.link_for("gpu0").bandwidth_gbs
        > 5 * shen.link_for("gpu0").bandwidth_gbs
    )
