"""Platform topology and the compute-resource view."""

import pytest

from repro.errors import PlatformError
from repro.platform.device import Device, DeviceKind, DeviceSpec
from repro.platform.interconnect import Link
from repro.platform.topology import HOST_SPACE, Platform


def cpu_spec(cores=4) -> DeviceSpec:
    return DeviceSpec(
        name="c", kind=DeviceKind.CPU, cores=cores, frequency_ghz=2.0,
        peak_gflops_sp=100.0, peak_gflops_dp=50.0,
        mem_bandwidth_gbs=40.0, mem_capacity_gb=8.0,
    )


def gpu_spec() -> DeviceSpec:
    return DeviceSpec(
        name="g", kind=DeviceKind.GPU, cores=512, frequency_ghz=1.0,
        peak_gflops_sp=1000.0, peak_gflops_dp=500.0,
        mem_bandwidth_gbs=200.0, mem_capacity_gb=4.0,
    )


def make_platform(accelerators=1) -> Platform:
    accs = [Device(f"gpu{i}", gpu_spec()) for i in range(accelerators)]
    return Platform(
        host=Device("cpu", cpu_spec()),
        accelerators=accs,
        links={a.device_id: Link(name="l", bandwidth_gbs=10.0) for a in accs},
    )


class TestPlatformValidation:
    def test_host_must_be_cpu(self):
        with pytest.raises(PlatformError):
            Platform(host=Device("x", gpu_spec()))

    def test_accelerator_must_not_be_cpu(self):
        with pytest.raises(PlatformError):
            Platform(
                host=Device("cpu", cpu_spec()),
                accelerators=[Device("cpu2", cpu_spec())],
                links={"cpu2": Link(name="l", bandwidth_gbs=1.0)},
            )

    def test_accelerator_needs_link(self):
        with pytest.raises(PlatformError):
            Platform(
                host=Device("cpu", cpu_spec()),
                accelerators=[Device("gpu0", gpu_spec())],
                links={},
            )

    def test_duplicate_device_ids_rejected(self):
        with pytest.raises(PlatformError):
            Platform(
                host=Device("cpu", cpu_spec()),
                accelerators=[
                    Device("gpu0", gpu_spec()), Device("gpu0", gpu_spec())
                ],
                links={"gpu0": Link(name="l", bandwidth_gbs=1.0)},
            )

    def test_link_to_unknown_device_rejected(self):
        with pytest.raises(PlatformError):
            Platform(
                host=Device("cpu", cpu_spec()),
                accelerators=[Device("gpu0", gpu_spec())],
                links={
                    "gpu0": Link(name="l", bandwidth_gbs=1.0),
                    "nope": Link(name="l2", bandwidth_gbs=1.0),
                },
            )


class TestPlatformQueries:
    def test_devices_host_first(self):
        p = make_platform()
        assert [d.device_id for d in p.devices] == ["cpu", "gpu0"]

    def test_device_lookup(self):
        p = make_platform()
        assert p.device("gpu0").kind is DeviceKind.GPU
        with pytest.raises(PlatformError):
            p.device("missing")

    def test_gpu_shortcut_single_accelerator_only(self):
        assert make_platform(1).gpu.device_id == "gpu0"
        with pytest.raises(PlatformError):
            make_platform(2).gpu

    def test_link_for(self):
        p = make_platform()
        assert p.link_for("gpu0").bandwidth_gbs == 10.0
        with pytest.raises(PlatformError):
            p.link_for("cpu")

    def test_memory_spaces(self):
        assert make_platform(2).memory_spaces() == [HOST_SPACE, "gpu0", "gpu1"]

    def test_describe_mentions_devices(self):
        text = make_platform().describe()
        assert "cpu" in text and "gpu0" in text and "GB/s" in text


class TestComputeResources:
    def test_default_thread_count_is_core_count(self):
        p = make_platform()
        resources = p.compute_resources()
        cpu_res = [r for r in resources if not r.is_accelerator]
        assert len(cpu_res) == 4
        assert all(r.share == pytest.approx(0.25) for r in cpu_res)

    def test_explicit_thread_count(self):
        p = make_platform()
        resources = p.compute_resources(cpu_threads=8)
        cpu_res = [r for r in resources if not r.is_accelerator]
        assert len(cpu_res) == 8
        assert all(r.share == pytest.approx(1 / 8) for r in cpu_res)

    def test_accelerator_is_one_whole_resource(self):
        p = make_platform(2)
        accs = [r for r in p.compute_resources() if r.is_accelerator]
        assert [r.resource_id for r in accs] == ["gpu0", "gpu1"]
        assert all(r.share == 1.0 for r in accs)

    def test_resource_ids_unique(self):
        ids = [r.resource_id for r in make_platform(2).compute_resources()]
        assert len(ids) == len(set(ids))

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(PlatformError):
            make_platform().compute_resources(cpu_threads=0)
