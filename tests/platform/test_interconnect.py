"""PCIe link model."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.interconnect import Link, TransferDirection


class TestLink:
    def test_transfer_time_bandwidth(self):
        link = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)
        assert link.transfer_time(10e9) == pytest.approx(1.0)

    def test_latency_charged_per_message(self):
        link = Link(name="l", bandwidth_gbs=10.0, latency_s=1e-5)
        one_big = link.transfer_time(10e9)
        many = sum(link.transfer_time(1e9) for _ in range(10))
        assert many == pytest.approx(one_big + 9e-5)

    def test_zero_bytes_is_free(self):
        link = Link(name="l", bandwidth_gbs=10.0, latency_s=1e-5)
        assert link.transfer_time(0) == 0.0

    def test_bandwidth_property_in_bytes(self):
        assert Link(name="l", bandwidth_gbs=6.0).bandwidth == 6e9

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            Link(name="l", bandwidth_gbs=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            Link(name="l", bandwidth_gbs=1.0, latency_s=-1.0)

    def test_rejects_negative_size(self):
        link = Link(name="l", bandwidth_gbs=1.0)
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1)


class TestTransferDirection:
    def test_short_labels(self):
        assert TransferDirection.HOST_TO_DEVICE.short == "h2d"
        assert TransferDirection.DEVICE_TO_HOST.short == "d2h"
