"""Critical-path and work lower bounds."""

import pytest

from repro.runtime.critical_path import (
    bound_report,
    critical_path_s,
    work_bound_s,
)
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler

from tests.conftest import chain_program, single_kernel_program

EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def build(program, chunks=4):
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
        ],
    )
    build_dependences(graph)
    return graph


class TestCriticalPath:
    def test_independent_chunks_path_is_one_chunk(self, tiny_platform):
        # 4 independent chunks: the path is a single chunk at GPU speed
        program = single_kernel_program(n=4_000_000, flops=100.0,
                                        mem_bytes=0.0)
        graph = build(program)
        expected = 1_000_000 * 100.0 / 1e12  # GPU: 1 TFLOPS
        assert critical_path_s(graph, tiny_platform) == pytest.approx(expected)

    def test_chain_accumulates(self, tiny_platform):
        program = chain_program(3, n=1_000_000)
        graph = build(program, chunks=1)
        single = critical_path_s(build(chain_program(1, n=1_000_000),
                                       chunks=1), tiny_platform)
        assert critical_path_s(graph, tiny_platform) == pytest.approx(
            3 * single
        )

    def test_barriers_do_not_add_time(self, tiny_platform):
        free = build(single_kernel_program(n=1000, iterations=2))
        synced = build(single_kernel_program(n=1000, iterations=2, sync=True))
        assert critical_path_s(synced, tiny_platform) == pytest.approx(
            critical_path_s(free, tiny_platform)
        )

    def test_work_bound_divides_by_device_count(self, tiny_platform):
        program = single_kernel_program(n=4_000_000, flops=100.0,
                                        mem_bytes=0.0)
        graph = build(program)
        total_best = 4_000_000 * 100.0 / 1e12
        assert work_bound_s(graph, tiny_platform) == pytest.approx(
            total_best / 2
        )


class TestBounds:
    @pytest.mark.parametrize("kernels,chunks", [(1, 4), (3, 2), (2, 8)])
    def test_simulated_makespan_respects_bounds(self, tiny_platform,
                                                kernels, chunks):
        program = chain_program(kernels, n=2_000_000)
        graph = build(program, chunks=chunks)
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, PerfAwareScheduler()
        )
        report = bound_report(graph, tiny_platform, result.makespan_s)
        assert report.makespan_s >= report.lower_bound_s * 0.999
        assert 0.0 < report.efficiency <= 1.001

    def test_weighted_kernels_use_work_units(self, tiny_platform):
        from repro.apps.spmv import SpMV

        app = SpMV()
        graph = build(app.program(1024), chunks=4)
        # the heaviest chunk (first rows, degree-ordered) dominates the path
        cp = critical_path_s(graph, tiny_platform)
        assert cp > 0
        first = graph.instances[0]
        others = graph.instances[1:4]
        assert first.kernel.work_units(first.lo, first.hi) > max(
            i.kernel.work_units(i.lo, i.hi) for i in others
        )
