"""Differential tests: the frontier fast path vs the reference builder.

`build_dependences` replaces the full-history O(n^2) scan with per-array
writer/reader frontiers.  It intentionally drops transitively-implied
edges, so the graphs are not edge-identical — they are *reachability
equivalent*: same instances, fast edges are a subset of reference edges,
and every reference edge is covered by a fast-graph ancestor path.  That
equivalence is exactly what the executor depends on (an instance becomes
ready when all ancestors completed), so makespans must match too.
"""

import numpy as np
import pytest

from repro.runtime.dependence import (
    build_dependences,
    build_dependences_reference,
    dependence_chains,
)
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.generate import GeneratorConfig, random_program
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.base import StaticScheduler

from tests.conftest import tiny_platform

PLATFORM = tiny_platform.__wrapped__()
EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)

#: differential seeds — the ISSUE asks for at least 200 generated programs
SEEDS = list(range(200))
#: subset run through the simulated executor (it is much slower per case)
EXECUTOR_SEEDS = list(range(12))


def _expand(program, chunks, *, pin=False):
    """Expand with ``chunks`` instances per invocation, optionally pinned.

    Pinned expansion alternates chunks between the two devices so the
    executor exercises cross-device readiness, not just one queue.
    """
    devices = [d.device_id for d in PLATFORM.devices]

    def chunker(inv):
        out = []
        for i, (lo, hi) in enumerate(chunk_ranges(inv.n, chunks)):
            dev = devices[i % len(devices)] if pin else None
            out.append((lo, hi, dev, None))
        return out

    return expand_program(program, chunker)


def _edges(graph):
    return {
        (dep, inst.instance_id)
        for inst in graph.instances
        for dep in inst.deps
    }


def _ancestors(graph):
    """Transitive dependence closure; deps always point backward in id."""
    anc = {}
    for inst in graph.instances:
        s = set()
        for dep in inst.deps:
            s.add(dep)
            s |= anc[dep]
        anc[inst.instance_id] = s
    return anc


@pytest.mark.parametrize("seed", SEEDS)
def test_fastpath_reachability_equivalent(seed):
    rng = np.random.default_rng(seed)
    program = random_program(rng, GeneratorConfig(n=64))
    chunks = int(rng.integers(1, 6))

    fast = build_dependences(_expand(program, chunks))
    ref = build_dependences_reference(_expand(program, chunks))

    assert len(fast.instances) == len(ref.instances)
    fast.validate_acyclic()

    # the fast builder never invents an edge the reference lacks
    assert _edges(fast) <= _edges(ref)

    # ...and never loses ordering: both closures are identical
    assert _ancestors(fast) == _ancestors(ref)


@pytest.mark.parametrize("seed", EXECUTOR_SEEDS)
def test_fastpath_makespan_equal_through_executor(seed):
    rng = np.random.default_rng(1000 + seed)
    program = random_program(rng, GeneratorConfig(n=128))
    chunks = int(rng.integers(2, 6))

    # pinned instances + static scheduler: the simulated timeline depends
    # only on readiness times, which reachability equivalence preserves
    fast = build_dependences(_expand(program, chunks, pin=True))
    ref = build_dependences_reference(_expand(program, chunks, pin=True))

    engine = RuntimeEngine(PLATFORM, config=EXACT)
    r_fast = engine.execute(fast, StaticScheduler())
    r_ref = engine.execute(ref, StaticScheduler())

    assert r_fast.makespan_s == pytest.approx(r_ref.makespan_s, rel=1e-12)
    assert r_fast.elements_by_device == r_ref.elements_by_device
    assert r_fast.instance_count == r_ref.instance_count


class _FlatReaders:
    """The pre-interval-index reader bookkeeping, kept as a test oracle."""

    def __init__(self):
        self.readers = []

    def add(self, start, end, instance_id):
        self.readers.append((start, end, instance_id))

    def subtract(self, start, end):
        keep = []
        for rs, re, rid in self.readers:
            if re <= start or rs >= end:
                keep.append((rs, re, rid))
                continue
            if rs < start:
                keep.append((rs, start, rid))
            if re > end:
                keep.append((end, re, rid))
        self.readers = keep

    def overlapping(self, start, end):
        seen = {}
        for rs, re, rid in self.readers:
            if rs < end and start < re:
                seen.setdefault(rid, None)
        return list(seen)


@pytest.mark.parametrize("seed", range(50))
def test_reader_index_matches_flat_oracle(seed):
    """The interval-indexed WAR reader structure vs the flat-list scan."""
    from repro.runtime.dependence import _ReaderIndex

    rng = np.random.default_rng(5000 + seed)
    idx, oracle = _ReaderIndex(), _FlatReaders()
    for step in range(300):
        lo = int(rng.integers(0, 96))
        hi = lo + int(rng.integers(1, 32))
        op = rng.random()
        if op < 0.55:
            idx.add(lo, hi, step)
            oracle.add(lo, hi, step)
        elif op < 0.8:
            idx.subtract(lo, hi)
            oracle.subtract(lo, hi)
        else:
            assert set(idx.overlapping(lo, hi)) == set(oracle.overlapping(lo, hi))
    # invariant: segments stay sorted, disjoint, and non-empty
    for i in range(len(idx.starts)):
        assert idx.starts[i] < idx.ends[i]
        if i:
            assert idx.ends[i - 1] <= idx.starts[i]
    # full-range query sees exactly the oracle's surviving readers
    assert set(idx.overlapping(0, 1 << 20)) == set(oracle.overlapping(0, 1 << 20))


def test_chains_cover_every_compute_instance():
    rng = np.random.default_rng(7)
    program = random_program(rng, GeneratorConfig(n=64, max_kernels=3))
    graph = build_dependences(_expand(program, 4))
    chains = dependence_chains(graph)
    from repro.runtime.graph import InstanceKind

    compute = [i for i in graph.instances if i.kind is InstanceKind.COMPUTE]
    assert set(chains) == {i.instance_id for i in compute}
    # an instance always shares its chain with its lowest compute dep
    for inst in compute:
        deps = [d for d in inst.deps if d in chains]
        if deps:
            assert chains[inst.instance_id] == chains[min(deps)]
