"""Multi-memory-space coherence: ensure / write / writeback / flush."""

import pytest

from repro.errors import MemoryModelError
from repro.platform.topology import HOST_SPACE
from repro.runtime.memory import MemoryManager
from repro.runtime.regions import ArraySpec, Region


@pytest.fixture
def mm(tiny_platform):
    arrays = {"a": ArraySpec("a", 1000, 4), "b": ArraySpec("b", 500, 8)}
    return MemoryManager(tiny_platform, arrays)


class TestInitialState:
    def test_host_holds_everything(self, mm):
        assert mm.is_valid("a", HOST_SPACE, 0, 1000)
        assert mm.is_valid("b", HOST_SPACE, 0, 500)

    def test_devices_start_empty(self, mm):
        assert not mm.is_valid("a", "gpu0", 0, 1)

    def test_unknown_array_or_space(self, mm):
        with pytest.raises(MemoryModelError):
            mm.is_valid("zzz", HOST_SPACE, 0, 1)
        with pytest.raises(MemoryModelError):
            mm.is_valid("a", "gpu9", 0, 1)


class TestEnsure:
    def test_h2d_transfer_generated(self, mm):
        ops = mm.ensure(Region("a", 0, 100), "gpu0")
        assert len(ops) == 1
        op = ops[0]
        assert op.is_h2d and op.src_space == HOST_SPACE and op.dst_space == "gpu0"
        assert op.nbytes == 400
        assert mm.is_valid("a", "gpu0", 0, 100)

    def test_already_valid_is_free(self, mm):
        mm.ensure(Region("a", 0, 100), "gpu0")
        assert mm.ensure(Region("a", 0, 100), "gpu0") == []
        assert mm.ensure(Region("a", 20, 80), "gpu0") == []

    def test_partial_validity_transfers_delta_only(self, mm):
        mm.ensure(Region("a", 0, 100), "gpu0")
        ops = mm.ensure(Region("a", 50, 200), "gpu0")
        assert [(o.start, o.end) for o in ops] == [(100, 200)]

    def test_host_read_of_host_data_is_free(self, mm):
        assert mm.ensure(Region("a", 0, 1000), HOST_SPACE) == []

    def test_device_to_device_stages_through_host(self, mm):
        # write on gpu0 makes host stale; a host read must flush first
        mm.write(Region("a", 0, 100), "gpu0")
        ops = mm.ensure(Region("a", 0, 100), HOST_SPACE)
        assert len(ops) == 1
        assert ops[0].is_d2h and ops[0].src_space == "gpu0"

    def test_elem_bytes_respected(self, mm):
        ops = mm.ensure(Region("b", 0, 100), "gpu0")
        assert ops[0].nbytes == 800  # 8-byte elements


class TestWrite:
    def test_write_invalidates_other_spaces(self, mm):
        mm.ensure(Region("a", 0, 100), "gpu0")
        mm.write(Region("a", 0, 100), "gpu0")
        assert not mm.is_valid("a", HOST_SPACE, 0, 100)
        assert mm.is_valid("a", HOST_SPACE, 100, 1000)
        assert mm.is_valid("a", "gpu0", 0, 100)

    def test_dirty_bytes_accounting(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        assert mm.dirty_bytes() == 400
        mm.write(Region("b", 0, 50), "gpu0")
        assert mm.dirty_bytes() == 400 + 400

    def test_host_write_invalidates_device(self, mm):
        mm.ensure(Region("a", 0, 100), "gpu0")
        mm.write(Region("a", 0, 100), HOST_SPACE)
        assert not mm.is_valid("a", "gpu0", 0, 1)


class TestWriteback:
    def test_writeback_copies_dirty_region(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        ops = mm.writeback(Region("a", 0, 100), "gpu0")
        assert len(ops) == 1 and ops[0].is_d2h
        assert mm.is_valid("a", HOST_SPACE, 0, 100)
        # device copy stays valid
        assert mm.is_valid("a", "gpu0", 0, 100)

    def test_writeback_from_host_is_noop(self, mm):
        assert mm.writeback(Region("a", 0, 100), HOST_SPACE) == []

    def test_writeback_clean_region_is_noop(self, mm):
        mm.ensure(Region("a", 0, 100), "gpu0")  # clean copy
        assert mm.writeback(Region("a", 0, 100), "gpu0") == []


class TestFlush:
    def test_flush_returns_all_dirty(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        mm.write(Region("b", 100, 200), "gpu0")
        ops = mm.flush_to_host()
        moved = {(o.array, o.start, o.end) for o in ops}
        assert moved == {("a", 0, 100), ("b", 100, 200)}
        assert mm.dirty_bytes() == 0

    def test_flush_without_invalidate_keeps_device_copies(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        mm.flush_to_host(invalidate=False)
        assert mm.is_valid("a", "gpu0", 0, 100)

    def test_flush_with_invalidate_empties_devices(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        mm.ensure(Region("a", 500, 600), "gpu0")
        mm.flush_to_host(invalidate=True)
        assert not mm.is_valid("a", "gpu0", 0, 1)
        assert not mm.is_valid("a", "gpu0", 500, 501)
        assert mm.is_valid("a", HOST_SPACE, 0, 1000)

    def test_flush_idempotent(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        assert mm.flush_to_host()
        assert mm.flush_to_host() == []

    def test_invalidate_requires_coherent_host(self, mm):
        mm.write(Region("a", 0, 100), "gpu0")
        with pytest.raises(MemoryModelError):
            mm.invalidate_device_copies()
