"""DOT export of task graphs."""

from repro.runtime.dependence import build_dependences
from repro.runtime.dot import to_dot
from repro.runtime.graph import chunk_ranges, expand_program

from tests.conftest import chain_program, single_kernel_program


def graph_of(program, chunks=3, pins=None):
    def chunker(inv):
        ranges = chunk_ranges(inv.n, chunks)
        return [
            (lo, hi, *(pins or (None, None))) for lo, hi in ranges
        ]

    graph = expand_program(program, chunker)
    return build_dependences(graph)


class TestToDot:
    def test_valid_digraph_skeleton(self):
        dot = to_dot(graph_of(chain_program(2)))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_one_node_per_instance(self):
        graph = graph_of(chain_program(2), chunks=3)
        dot = to_dot(graph)
        for inst in graph.instances:
            assert f"n{inst.instance_id} [" in dot

    def test_edges_rendered(self):
        graph = graph_of(chain_program(2), chunks=2)
        dot = to_dot(graph)
        assert "->" in dot
        # k1 chunk 0 depends on k0 chunk 0
        assert "n0 -> n2;" in dot

    def test_invocation_clusters(self):
        dot = to_dot(graph_of(chain_program(3)))
        assert dot.count("subgraph cluster_inv") == 3
        assert "k0" in dot and "k2" in dot

    def test_barriers_are_diamonds(self):
        dot = to_dot(graph_of(single_kernel_program(iterations=2, sync=True)))
        assert "taskwait" in dot
        assert "diamond" in dot

    def test_pins_colored_and_labelled(self):
        graph = graph_of(single_kernel_program(), chunks=1,
                         pins=("gpu0", None))
        dot = to_dot(graph)
        assert "@gpu0" in dot
        assert "#79b6f2" in dot

    def test_truncation(self):
        graph = graph_of(single_kernel_program(n=1000), chunks=500)
        dot = to_dot(graph, max_instances=10)
        assert "more instances" in dot
        assert dot.count("shape=box") == 10

    def test_quotes_escaped(self):
        dot = to_dot(graph_of(chain_program(1)), name='my "graph"')
        assert 'digraph "my \\"graph\\""' in dot
