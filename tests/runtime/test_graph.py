"""Programs, chunking helpers, and task-graph expansion."""

import pytest

from repro.errors import ConfigurationError, DependenceError
from repro.runtime.graph import (
    InstanceKind,
    KernelInvocation,
    Program,
    TaskInstance,
    chunk_ranges,
    expand_program,
    split_sizes,
)

from tests.conftest import chain_program, make_kernel, single_kernel_program


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_remainder_goes_to_first_chunks(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_more_chunks_than_elements(self):
        ranges = chunk_ranges(3, 10)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_single_chunk(self):
        assert chunk_ranges(7, 1) == [(0, 7)]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            chunk_ranges(0, 4)
        with pytest.raises(ConfigurationError):
            chunk_ranges(10, 0)

    def test_covers_everything_exactly(self):
        for n, k in [(1000, 7), (13, 13), (97, 10)]:
            ranges = chunk_ranges(n, k)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            for (a, b), (c, _) in zip(ranges, ranges[1:]):
                assert b == c


class TestSplitSizes:
    def test_basic(self):
        assert split_sizes(10, [4, 6]) == [(0, 4), (4, 10)]

    def test_zero_sizes_skipped(self):
        assert split_sizes(10, [0, 10, 0]) == [(0, 10)]

    def test_must_sum_to_n(self):
        with pytest.raises(ConfigurationError):
            split_sizes(10, [4, 4])

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            split_sizes(0, [-5, 5])


class TestProgram:
    def test_kernels_deduplicated_by_name(self):
        program = single_kernel_program(iterations=3)
        assert len(program.kernels) == 1

    def test_total_indices(self):
        program = single_kernel_program(n=100, iterations=3)
        assert program.total_indices() == 300

    def test_rejects_undeclared_arrays(self):
        kernel, specs = make_kernel(n=10)
        inv = KernelInvocation(invocation_id=0, kernel=kernel, n=10)
        with pytest.raises(ConfigurationError):
            Program(invocations=[inv], arrays={})

    def test_rejects_unordered_ids(self):
        kernel, specs = make_kernel(n=10)
        invs = [
            KernelInvocation(invocation_id=1, kernel=kernel, n=10),
            KernelInvocation(invocation_id=0, kernel=kernel, n=10),
        ]
        with pytest.raises(ConfigurationError):
            Program(invocations=invs, arrays=specs)

    def test_invocation_rejects_nonpositive_size(self):
        kernel, _ = make_kernel(n=10)
        with pytest.raises(ConfigurationError):
            KernelInvocation(invocation_id=0, kernel=kernel, n=0)


class TestTaskInstance:
    def test_chunk_must_fit_invocation(self):
        kernel, _ = make_kernel(n=10)
        inv = KernelInvocation(invocation_id=0, kernel=kernel, n=10)
        with pytest.raises(ConfigurationError):
            TaskInstance(instance_id=0, kind=InstanceKind.COMPUTE,
                         invocation=inv, lo=5, hi=15)

    def test_barrier_has_no_size(self):
        barrier = TaskInstance(instance_id=0, kind=InstanceKind.BARRIER)
        assert barrier.size == 0
        assert barrier.is_barrier
        assert barrier.regions() == []

    def test_labels(self):
        kernel, _ = make_kernel("mykernel", n=10)
        inv = KernelInvocation(invocation_id=0, kernel=kernel, n=10)
        inst = TaskInstance(instance_id=3, kind=InstanceKind.COMPUTE,
                            invocation=inv, lo=0, hi=5)
        assert "mykernel" in inst.label()
        barrier = TaskInstance(instance_id=4, kind=InstanceKind.BARRIER)
        assert "taskwait" in barrier.label()


class TestExpandProgram:
    def test_one_instance_per_chunk(self):
        program = single_kernel_program(n=100)
        graph = expand_program(
            program,
            lambda inv: [(lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, 4)],
        )
        assert len(graph.instances) == 4
        assert all(i.kind is InstanceKind.COMPUTE for i in graph.instances)

    def test_sync_appends_barriers(self):
        program = single_kernel_program(n=100, iterations=3, sync=True)
        graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
        kinds = [i.kind for i in graph.instances]
        assert kinds == [
            InstanceKind.COMPUTE, InstanceKind.BARRIER,
            InstanceKind.COMPUTE, InstanceKind.BARRIER,
            InstanceKind.COMPUTE, InstanceKind.BARRIER,
        ]

    def test_instance_ids_sequential(self):
        program = chain_program(3)
        graph = expand_program(
            program,
            lambda inv: [(lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, 2)],
        )
        assert [i.instance_id for i in graph.instances] == list(range(6))

    def test_pins_preserved(self):
        program = single_kernel_program(n=100)
        graph = expand_program(
            program, lambda inv: [(0, 50, "gpu0", None), (50, 100, None, "cpu:0")]
        )
        assert graph.instances[0].pinned_device == "gpu0"
        assert graph.instances[1].pinned_resource == "cpu:0"


class TestValidateAcyclic:
    def test_accepts_dag(self):
        program = chain_program(3)
        graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
        from repro.runtime.dependence import build_dependences

        build_dependences(graph)
        graph.validate_acyclic()  # must not raise

    def test_detects_cycle(self):
        program = single_kernel_program(n=10)
        graph = expand_program(
            program,
            lambda inv: [(0, 5, None, None), (5, 10, None, None)],
        )
        a, b = graph.instances
        a.deps.add(b.instance_id); b.succs.add(a.instance_id)
        b.deps.add(a.instance_id); a.succs.add(b.instance_id)
        with pytest.raises(DependenceError):
            graph.validate_acyclic()
