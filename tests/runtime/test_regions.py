"""Regions, arrays, and interval-set arithmetic."""

import pytest

from repro.errors import DependenceError
from repro.runtime.regions import AccessMode, ArraySpec, IntervalSet, Region


class TestAccessMode:
    def test_reads_writes(self):
        assert AccessMode.IN.reads and not AccessMode.IN.writes
        assert AccessMode.OUT.writes and not AccessMode.OUT.reads
        assert AccessMode.INOUT.reads and AccessMode.INOUT.writes


class TestArraySpec:
    def test_nbytes(self):
        assert ArraySpec("a", 100, 4).nbytes == 400

    def test_full_region(self):
        region = ArraySpec("a", 100, 4).full_region()
        assert (region.start, region.end) == (0, 100)

    def test_rejects_negative_elems(self):
        with pytest.raises(DependenceError):
            ArraySpec("a", -1, 4)

    def test_rejects_nonpositive_elem_bytes(self):
        with pytest.raises(DependenceError):
            ArraySpec("a", 1, 0)


class TestRegion:
    def test_overlap_same_array(self):
        a = Region("x", 0, 10)
        assert a.overlaps(Region("x", 5, 15))
        assert not a.overlaps(Region("x", 10, 20))  # half-open
        assert not a.overlaps(Region("y", 0, 10))

    def test_intersection(self):
        inter = Region("x", 0, 10).intersection(Region("x", 5, 15))
        assert (inter.start, inter.end) == (5, 10)
        assert Region("x", 0, 5).intersection(Region("x", 5, 10)) is None

    def test_size_and_bytes(self):
        r = Region("x", 10, 30)
        assert r.size == 20
        assert r.nbytes(8) == 160

    def test_invalid_region_rejected(self):
        with pytest.raises(DependenceError):
            Region("x", 5, 3)
        with pytest.raises(DependenceError):
            Region("x", -1, 3)

    def test_empty_region_allowed(self):
        assert Region("x", 3, 3).empty


class TestIntervalSet:
    def test_add_disjoint(self):
        s = IntervalSet([(0, 5), (10, 15)])
        assert s.intervals == [(0, 5), (10, 15)]
        assert s.total == 10

    def test_add_merges_overlap(self):
        s = IntervalSet([(0, 5)])
        s.add(3, 8)
        assert s.intervals == [(0, 8)]

    def test_add_merges_adjacent(self):
        s = IntervalSet([(0, 5)])
        s.add(5, 8)
        assert s.intervals == [(0, 8)]

    def test_add_bridges_multiple(self):
        s = IntervalSet([(0, 2), (4, 6), (8, 10)])
        s.add(1, 9)
        assert s.intervals == [(0, 10)]

    def test_add_empty_noop(self):
        s = IntervalSet([(0, 5)])
        s.add(7, 7)
        assert s.intervals == [(0, 5)]

    def test_remove_middle_splits(self):
        s = IntervalSet([(0, 10)])
        s.remove(3, 7)
        assert s.intervals == [(0, 3), (7, 10)]

    def test_remove_edges(self):
        s = IntervalSet([(0, 10)])
        s.remove(0, 3)
        s.remove(8, 12)
        assert s.intervals == [(3, 8)]

    def test_remove_everything(self):
        s = IntervalSet([(0, 10), (20, 30)])
        s.remove(0, 30)
        assert not s

    def test_contains(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.contains(2, 8)
        assert s.contains(0, 10)
        assert not s.contains(5, 25)
        assert s.contains(7, 7)  # empty range always contained

    def test_intersect(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.intersect(5, 25).intervals == [(5, 10), (20, 25)]

    def test_missing(self):
        s = IntervalSet([(0, 10), (20, 30)])
        assert s.missing(5, 25).intervals == [(10, 20)]
        assert s.missing(0, 10).intervals == []
        assert s.missing(40, 50).intervals == [(40, 50)]

    def test_copy_is_independent(self):
        s = IntervalSet([(0, 10)])
        c = s.copy()
        c.add(20, 30)
        assert s.intervals == [(0, 10)]

    def test_equality(self):
        assert IntervalSet([(0, 5), (5, 10)]) == IntervalSet([(0, 10)])
        assert IntervalSet([(0, 5)]) != IntervalSet([(0, 6)])

    def test_clear(self):
        s = IntervalSet([(0, 5)])
        s.clear()
        assert not s and s.total == 0
