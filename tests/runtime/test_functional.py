"""Functional (NumPy) execution: ordering and numerical equivalence."""

import numpy as np
import pytest

from repro.errors import DependenceError
from repro.runtime.functional import (
    assert_equivalent,
    run_chunked,
    run_functional,
    run_sequential,
    topological_order,
)
from repro.runtime.graph import (
    KernelInvocation,
    Program,
    chunk_ranges,
    expand_program,
)
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec


def saxpy_program(n=100, *, chunks_mutate_scale=2.0) -> tuple[Program, dict]:
    specs = {"x": ArraySpec("x", n, 8), "y": ArraySpec("y", n, 8)}

    def impl(arrays, lo, hi, total, *, scale):
        arrays["y"][lo:hi] += scale * arrays["x"][lo:hi]

    kernel = Kernel(
        "saxpy", KernelCostModel(flops_per_elem=2),
        (AccessSpec(specs["x"], AccessMode.IN),
         AccessSpec(specs["y"], AccessMode.INOUT)),
        impl=impl, params={"scale": chunks_mutate_scale},
    )
    program = Program(
        invocations=[KernelInvocation(invocation_id=0, kernel=kernel, n=n)],
        arrays=specs,
    )
    arrays = {
        "x": np.arange(n, dtype=np.float64),
        "y": np.ones(n, dtype=np.float64),
    }
    return program, arrays


class TestTopologicalOrder:
    def test_respects_dependences(self):
        program, _ = saxpy_program()
        graph = expand_program(
            program,
            lambda inv: [
                (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, 4)
            ],
        )
        # fabricate a reversed dependency: 3 -> 0
        graph.instances[0].deps.add(3)
        graph.instances[3].succs.add(0)
        order = topological_order(graph)
        assert order.index(3) < order.index(0)

    def test_detects_cycles(self):
        program, _ = saxpy_program()
        graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
        graph.instances[0].deps.add(0)
        graph.instances[0].succs.add(0)
        with pytest.raises(DependenceError):
            topological_order(graph)


class TestRunFunctional:
    def test_computes_correct_result(self):
        program, arrays = saxpy_program(50)
        out = run_sequential(program, arrays)
        np.testing.assert_allclose(out["y"], 1.0 + 2.0 * np.arange(50))

    def test_inputs_untouched_by_default(self):
        program, arrays = saxpy_program(50)
        run_sequential(program, arrays)
        np.testing.assert_allclose(arrays["y"], np.ones(50))

    def test_copy_false_mutates_in_place(self):
        program, arrays = saxpy_program(50)
        graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
        run_functional(graph, arrays, copy=False)
        assert arrays["y"][10] == 21.0

    def test_size_mismatch_rejected(self):
        program, arrays = saxpy_program(50)
        arrays["x"] = arrays["x"][:10]
        with pytest.raises(DependenceError):
            run_sequential(program, arrays)

    def test_missing_array_rejected(self):
        program, arrays = saxpy_program(50)
        del arrays["x"]
        with pytest.raises(DependenceError):
            run_sequential(program, arrays)

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7, 50])
    def test_chunked_equivalent_to_sequential(self, n_chunks):
        program, arrays = saxpy_program(50)
        a = run_sequential(program, arrays)
        b = run_chunked(program, arrays, n_chunks=n_chunks)
        assert_equivalent(a, b)


class TestAssertEquivalent:
    def test_detects_difference(self):
        a = {"x": np.zeros(5)}
        b = {"x": np.ones(5)}
        with pytest.raises(AssertionError):
            assert_equivalent(a, b)

    def test_array_subset(self):
        a = {"x": np.zeros(5), "y": np.zeros(5)}
        b = {"x": np.zeros(5), "y": np.ones(5)}
        assert_equivalent(a, b, arrays=["x"])  # y ignored
