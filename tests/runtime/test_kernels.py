"""Kernel access specs and cost models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.device import Device, DeviceKind, DeviceSpec
from repro.runtime.kernels import AccessPattern, AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec

from tests.conftest import make_kernel


def device(kind=DeviceKind.CPU, gflops=100.0, bw=40.0, cores=4):
    return Device(
        "d0",
        DeviceSpec(
            name="d", kind=kind, cores=cores, frequency_ghz=2.0,
            peak_gflops_sp=gflops, peak_gflops_dp=gflops / 2,
            mem_bandwidth_gbs=bw, mem_capacity_gb=8.0,
        ),
    )


class TestAccessSpec:
    def test_partitioned_region_scales_with_chunk(self):
        spec = AccessSpec(ArraySpec("a", 1000, 4), AccessMode.IN,
                          AccessPattern.PARTITIONED, 10)
        region = spec.region(3, 7)
        assert (region.start, region.end) == (30, 70)

    def test_partitioned_region_clamped_to_array(self):
        spec = AccessSpec(ArraySpec("a", 55, 4), AccessMode.IN,
                          AccessPattern.PARTITIONED, 10)
        assert spec.region(4, 6).end == 55

    def test_full_region_ignores_chunk(self):
        spec = AccessSpec(ArraySpec("a", 1000, 4), AccessMode.IN,
                          AccessPattern.FULL)
        assert spec.region(3, 7) == ArraySpec("a", 1000, 4).full_region()

    def test_full_writes_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessSpec(ArraySpec("a", 10, 4), AccessMode.OUT, AccessPattern.FULL)

    def test_nonpositive_elems_per_index_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessSpec(ArraySpec("a", 10, 4), AccessMode.IN,
                       AccessPattern.PARTITIONED, 0)


class TestKernelCostModel:
    def test_flops_linear_in_chunk(self):
        cost = KernelCostModel(flops_per_elem=3.0)
        assert cost.flops(100, 1000) == pytest.approx(300.0)

    def test_flops_per_n_term(self):
        # O(n^2) kernels: per-element flops grow with the problem size
        cost = KernelCostModel(flops_per_elem=0.0, flops_per_elem_per_n=2.0)
        assert cost.flops(10, 1000) == pytest.approx(20_000.0)

    def test_mem_bytes(self):
        cost = KernelCostModel(mem_bytes_per_elem=8.0, mem_bytes_per_elem_per_n=1.0)
        assert cost.mem_bytes(10, 100) == pytest.approx(1080.0)

    def test_effs_default(self):
        cost = KernelCostModel()
        ce, me = cost.effs(DeviceKind.ACCELERATOR)
        assert (ce, me) == (0.5, 0.6)


class TestKernel:
    def test_requires_accesses(self):
        with pytest.raises(ConfigurationError):
            Kernel("k", KernelCostModel(), ())

    def test_requires_a_write(self):
        spec = ArraySpec("a", 10, 4)
        with pytest.raises(ConfigurationError):
            Kernel("k", KernelCostModel(flops_per_elem=1),
                   (AccessSpec(spec, AccessMode.IN),))

    def test_chunk_time_scales_with_share(self):
        kernel, _ = make_kernel(flops=2.0, mem_bytes=0.0)
        dev = device()
        whole = kernel.chunk_time(dev, 1000, 1000)
        quarter = kernel.chunk_time(dev, 1000, 1000, share=0.25)
        assert quarter == pytest.approx(4 * whole)

    def test_chunk_time_zero_chunk(self):
        kernel, _ = make_kernel()
        assert kernel.chunk_time(device(), 0, 1000) == 0.0

    def test_device_throughput(self):
        kernel, _ = make_kernel(flops=2.0, mem_bytes=0.0)
        # 2 flops/elem on 100 GFLOPS at eff 1.0 -> 50e9 elems/s
        assert kernel.device_throughput(device(), 1000) == pytest.approx(50e9)

    def test_input_output_bytes(self):
        kernel, _ = make_kernel(reads=("x",), writes=("y",), full_reads=("z",),
                                n=100)
        # chunk of 10 indices: x 40 B partitioned + z 400 B full
        assert kernel.input_bytes(0, 10) == 40 + 400
        assert kernel.output_bytes(0, 10) == 40

    def test_run_impl_without_body_raises(self):
        kernel, _ = make_kernel()
        with pytest.raises(ConfigurationError):
            kernel.run_impl({}, 0, 10, 100)

    def test_run_impl_invokes_body_with_params(self):
        calls = []

        def body(arrays, lo, hi, n, *, scale):
            calls.append((lo, hi, n, scale))
            arrays["y"][lo:hi] = scale * arrays["x"][lo:hi]

        spec_x = ArraySpec("x", 10, 4)
        spec_y = ArraySpec("y", 10, 4)
        kernel = Kernel(
            "k", KernelCostModel(flops_per_elem=1),
            (AccessSpec(spec_x, AccessMode.IN),
             AccessSpec(spec_y, AccessMode.OUT)),
            impl=body, params={"scale": 3.0},
        )
        arrays = {"x": np.arange(10.0), "y": np.zeros(10)}
        kernel.run_impl(arrays, 2, 5, 10)
        assert calls == [(2, 5, 10, 3.0)]
        assert arrays["y"][2:5].tolist() == [6.0, 9.0, 12.0]
