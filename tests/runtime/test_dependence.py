"""Region-based dependence analysis: RAW, WAW, WAR, barriers, chains."""

from repro.runtime.dependence import build_dependences, dependence_chains
from repro.runtime.graph import InstanceKind, chunk_ranges, expand_program

from tests.conftest import chain_program, single_kernel_program


def expanded(program, n_chunks=1):
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, n_chunks)
        ],
    )
    return build_dependences(graph)


class TestEdgeKinds:
    def test_raw_across_kernels(self):
        # k0 writes x1; k1 reads x1 -> RAW edge
        graph = expanded(chain_program(2))
        k0, k1 = graph.instances
        assert k0.instance_id in k1.deps

    def test_same_invocation_chunks_independent(self):
        graph = expanded(single_kernel_program(n=100), n_chunks=4)
        assert graph.n_edges == 0

    def test_waw_between_invocations(self):
        # same kernel twice: second write to y depends on first (WAW),
        # plus WAR against nothing (reads of x don't conflict)
        graph = expanded(single_kernel_program(n=100, iterations=2))
        first, second = graph.instances
        assert first.instance_id in second.deps

    def test_war_edge(self):
        from tests.conftest import make_kernel
        from repro.runtime.graph import KernelInvocation, Program

        # k0 reads a, writes b ; k1 writes a -> WAR on a
        k0, specs = make_kernel("k0", reads=("a",), writes=("b",), n=10)
        k1, _ = make_kernel("k1", arrays=specs, reads=("b",), writes=("a",), n=10)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=k0, n=10),
                KernelInvocation(invocation_id=1, kernel=k1, n=10),
            ],
            arrays=specs,
        )
        graph = expanded(program)
        assert graph.instances[0].instance_id in graph.instances[1].deps

    def test_disjoint_chunks_no_cross_edges(self):
        # chunk i of k1 depends only on chunk i of k0 (regions align)
        graph = expanded(chain_program(2, n=100), n_chunks=4)
        k0 = graph.instances[:4]
        k1 = graph.instances[4:]
        for i, inst in enumerate(k1):
            assert inst.deps == {k0[i].instance_id}

    def test_full_read_depends_on_all_writer_chunks(self):
        from tests.conftest import make_kernel
        from repro.runtime.graph import KernelInvocation, Program

        k0, specs = make_kernel("k0", reads=("a",), writes=("b",), n=100)
        k1, specs = make_kernel(
            "k1", arrays=specs, reads=(), full_reads=("b",), writes=("c",), n=100
        )
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=k0, n=100),
                KernelInvocation(invocation_id=1, kernel=k1, n=100),
            ],
            arrays=specs,
        )
        graph = expanded(program, n_chunks=4)
        writers = {i.instance_id for i in graph.instances[:4]}
        for reader in graph.instances[4:]:
            assert writers <= reader.deps


class TestBarriers:
    def test_barrier_joins_and_anchors(self):
        graph = expanded(single_kernel_program(n=100, iterations=2, sync=True),
                         n_chunks=3)
        computes = [i for i in graph.instances if i.kind is InstanceKind.COMPUTE]
        barriers = [i for i in graph.instances if i.kind is InstanceKind.BARRIER]
        assert len(barriers) == 2
        first_iter = computes[:3]
        second_iter = computes[3:]
        b0 = barriers[0]
        # barrier depends on all earlier computes
        assert {i.instance_id for i in first_iter} <= b0.deps
        # all later computes depend on the barrier
        for inst in second_iter:
            assert b0.instance_id in inst.deps

    def test_barrier_resets_analysis_state(self):
        graph = expanded(single_kernel_program(n=100, iterations=2, sync=True),
                         n_chunks=2)
        computes = [i for i in graph.instances if i.kind is InstanceKind.COMPUTE]
        # iteration-2 chunks depend ONLY on the barrier, not directly on
        # iteration-1 chunks (the barrier subsumes the WAW edges)
        for inst in computes[2:]:
            assert all(
                graph.instances[d].kind is InstanceKind.BARRIER
                for d in inst.deps
            )

    def test_consecutive_barriers_chained(self):
        from tests.conftest import make_kernel
        from repro.runtime.graph import (
            InstanceKind as IK, Program, KernelInvocation, TaskGraph, TaskInstance,
        )

        kernel, specs = make_kernel(n=10)
        program = Program(
            invocations=[KernelInvocation(invocation_id=0, kernel=kernel,
                                          n=10, sync_after=True)],
            arrays=specs,
        )
        graph = TaskGraph(program=program)
        graph.instances = [
            TaskInstance(instance_id=0, kind=IK.BARRIER),
            TaskInstance(instance_id=1, kind=IK.BARRIER),
        ]
        build_dependences(graph)
        assert 0 in graph.instances[1].deps


class TestChains:
    def test_chain_ids_follow_dependences(self):
        graph = expanded(chain_program(3, n=100), n_chunks=4)
        chains = dependence_chains(graph)
        # chunk i of every kernel shares chain i
        for kernel_idx in range(3):
            for chunk in range(4):
                assert chains[kernel_idx * 4 + chunk] == chains[chunk]

    def test_independent_instances_get_distinct_chains(self):
        graph = expanded(single_kernel_program(n=100), n_chunks=4)
        chains = dependence_chains(graph)
        assert len(set(chains.values())) == 4

    def test_chains_reset_at_barriers(self):
        graph = expanded(single_kernel_program(n=100, iterations=2, sync=True),
                         n_chunks=2)
        chains = dependence_chains(graph)
        computes = [
            i.instance_id for i in graph.instances
            if i.kind is InstanceKind.COMPUTE
        ]
        # iteration-2 chunks depend on the barrier only, so they start
        # fresh chains
        first = {chains[c] for c in computes[:2]}
        second = {chains[c] for c in computes[2:]}
        assert first.isdisjoint(second)
