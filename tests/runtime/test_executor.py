"""Runtime engine: timing, transfers, barriers, overheads, deadlocks."""

import pytest

from repro.errors import SimulationError
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.base import StaticScheduler
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler

from tests.conftest import chain_program, single_kernel_program

#: zero-overhead config for exact hand-computed timings
EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def build(program, chunker):
    graph = expand_program(program, chunker)
    build_dependences(graph)
    return graph


def whole_chunker(device=None, resource=None):
    return lambda inv: [(0, inv.n, device, resource)]


class TestBasicTiming:
    def test_cpu_compute_time_exact(self, tiny_platform):
        # 1 M elems x 2 flops on one core (100 GFLOPS / 4) = 2e6/25e9 = 80 us
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        graph = build(program, whole_chunker(resource="cpu:0"))
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        assert result.makespan_s == pytest.approx(80e-6)

    def test_gpu_includes_h2d_and_final_flush(self, tiny_platform):
        # reads x (4 MB) -> H2D 4e6/10e9 = 0.4 ms; writes y -> final D2H 0.4 ms
        # compute: 2e6 flops / 1 TFLOPS = 2 us
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        graph = build(program, whole_chunker(device="gpu0"))
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        assert result.makespan_s == pytest.approx(0.4e-3 + 2e-6 + 0.4e-3)
        assert result.transfer_bytes == {"h2d": 4_000_000, "d2h": 4_000_000}

    def test_final_flush_can_be_disabled(self, tiny_platform):
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        graph = build(program, whole_chunker(device="gpu0"))
        config = RuntimeConfig(
            task_creation_overhead_s=0.0, dynamic_decision_overhead_s=0.0,
            barrier_overhead_s=0.0, final_flush=False,
        )
        result = RuntimeEngine(tiny_platform, config=config).execute(
            graph, StaticScheduler()
        )
        assert result.makespan_s == pytest.approx(0.4e-3 + 2e-6)

    def test_cpu_threads_share_device_rate(self, tiny_platform):
        # 4 equal chunks on 4 cores run in parallel: same time as 1 chunk
        # on 1 core of a quarter of the device
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        graph = build(
            program,
            lambda inv: [
                (lo, hi, None, f"cpu:{i}")
                for i, (lo, hi) in enumerate(chunk_ranges(inv.n, 4))
            ],
        )
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        assert result.makespan_s == pytest.approx(80e-6 / 4)

    def test_makespan_equals_trace_makespan(self, tiny_platform):
        program = chain_program(3)
        graph = build(program, whole_chunker(resource="cpu:0"))
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        assert result.makespan_s == result.trace.makespan()


class TestDependencesRespected:
    def test_chain_serializes(self, tiny_platform):
        program = chain_program(3, n=1_000_000)
        graph = build(program, whole_chunker(resource="cpu:0"))
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        computes = result.trace.by_category("compute")
        for earlier, later in zip(computes, computes[1:]):
            assert later.start >= earlier.end - 1e-12

    def test_chain_across_devices_transfers_between(self, tiny_platform):
        # k0 on GPU writes x1; k1 on CPU reads x1 -> must wait for D2H
        program = chain_program(2, n=1_000_000)

        def chunker(inv):
            if inv.kernel.name == "k0":
                return [(0, inv.n, "gpu0", None)]
            return [(0, inv.n, None, "cpu:0")]

        graph = build(program, chunker)
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        transfers = result.trace.by_category("transfer")
        d2h = [t for t in transfers if t.meta["direction"] == "d2h"]
        assert d2h, "expected a device-to-host transfer for the chain hop"
        k1 = next(
            r for r in result.trace.by_category("compute")
            if "k1" in r.label
        )
        assert k1.start >= max(t.end for t in d2h) - 1e-12

    def test_reader_waits_for_inflight_transfer(self, tiny_platform):
        # two GPU chunks read the SAME full array region; the second must
        # not start before the wire delivers it (no optimistic-free ride)
        from tests.conftest import make_kernel
        from repro.runtime.graph import KernelInvocation, Program

        kernel, specs = make_kernel(
            "k", reads=(), full_reads=("x",), writes=("y",), n=1_000_000
        )
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=kernel, n=1_000_000)
            ],
            arrays=specs,
        )
        graph = build(
            program,
            lambda inv: [(0, inv.n // 2, "gpu0", None),
                         (inv.n // 2, inv.n, "gpu0", None)],
        )
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        h2d_end = max(
            t.end for t in result.trace.by_category("transfer")
            if t.meta["direction"] == "h2d"
        )
        for rec in result.trace.by_category("compute"):
            assert rec.start >= h2d_end - 1e-12


class TestBarriers:
    def test_barrier_overhead_charged_except_trailing(self, tiny_platform):
        # 3 iterations with sync = 3 barriers, but the trailing one is the
        # program's exit sync (team torn down, not restarted): 2 charged
        program = single_kernel_program(
            n=1_000_000, iterations=3, sync=True, flops=2.0, mem_bytes=0.0
        )
        graph = build(program, whole_chunker(resource="cpu:0"))
        base = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        graph2 = build(program, whole_chunker(resource="cpu:0"))
        with_barrier = RuntimeEngine(
            tiny_platform,
            config=RuntimeConfig(
                task_creation_overhead_s=0.0, dynamic_decision_overhead_s=0.0,
                barrier_overhead_s=1e-3,
            ),
        ).execute(graph2, StaticScheduler())
        assert with_barrier.makespan_s - base.makespan_s == pytest.approx(2e-3)

    def test_barrier_invalidation_forces_refetch(self, tiny_platform):
        # GPU kernel iterated with sync: every iteration re-uploads inputs
        program = single_kernel_program(
            n=1_000_000, iterations=3, sync=True, flops=2.0, mem_bytes=0.0
        )
        graph = build(program, whole_chunker(device="gpu0"))
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        h2d = [
            t for t in result.trace.by_category("transfer")
            if t.meta["direction"] == "h2d"
        ]
        assert len(h2d) == 3  # x re-uploaded every iteration

    def test_no_invalidation_keeps_residency(self, tiny_platform):
        program = single_kernel_program(
            n=1_000_000, iterations=3, sync=True, flops=2.0, mem_bytes=0.0
        )
        graph = build(program, whole_chunker(device="gpu0"))
        config = RuntimeConfig(
            task_creation_overhead_s=0.0, dynamic_decision_overhead_s=0.0,
            barrier_overhead_s=0.0, barrier_invalidates_devices=False,
        )
        result = RuntimeEngine(tiny_platform, config=config).execute(
            graph, StaticScheduler()
        )
        h2d = [
            t for t in result.trace.by_category("transfer")
            if t.meta["direction"] == "h2d"
        ]
        assert len(h2d) == 1  # x uploaded once, stays resident

    def test_eager_writeback_overlaps_and_covers_flush(self, tiny_platform):
        # GPU chunk + CPU chunk under sync: the GPU writeback starts at
        # GPU-compute end, not at the barrier
        program = single_kernel_program(
            n=2_000_000, iterations=1, sync=True, flops=100.0, mem_bytes=0.0
        )
        graph = build(
            program,
            lambda inv: [(0, inv.n // 2, "gpu0", None),
                         (inv.n // 2, inv.n, None, "cpu:0")],
        )
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        gpu_end = next(
            r.end for r in result.trace.by_category("compute")
            if r.meta["device_kind"] == "gpu"
        )
        cpu_end = next(
            r.end for r in result.trace.by_category("compute")
            if r.meta["device_kind"] == "cpu"
        )
        wb = [
            t for t in result.trace.by_category("transfer")
            if t.meta["direction"] == "d2h"
        ]
        assert wb[0].start == pytest.approx(gpu_end)
        assert wb[0].start < cpu_end  # overlaps the CPU's remaining work


class TestOverheads:
    def test_dynamic_overhead_only_for_dynamic_unpinned(self, tiny_platform):
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        config = RuntimeConfig(
            cpu_threads=4,
            task_creation_overhead_s=0.0,
            dynamic_decision_overhead_s=10e-3,
            barrier_overhead_s=0.0,
        )
        static_graph = build(program, whole_chunker(resource="cpu:0"))
        t_static = RuntimeEngine(tiny_platform, config=config).execute(
            static_graph, StaticScheduler()
        ).makespan_s
        dyn_graph = build(program, lambda inv: [(0, inv.n, None, None)])
        t_dyn = RuntimeEngine(tiny_platform, config=config).execute(
            dyn_graph, BreadthFirstScheduler()
        ).makespan_s
        assert t_dyn - t_static >= 10e-3 - 1e-9

    def test_task_creation_overhead_for_everyone(self, tiny_platform):
        program = single_kernel_program(n=1_000_000, flops=2.0, mem_bytes=0.0)
        config = RuntimeConfig(
            task_creation_overhead_s=5e-3,
            dynamic_decision_overhead_s=0.0,
            barrier_overhead_s=0.0,
        )
        graph = build(program, whole_chunker(resource="cpu:0"))
        t = RuntimeEngine(tiny_platform, config=config).execute(
            graph, StaticScheduler()
        ).makespan_s
        assert t == pytest.approx(80e-6 + 5e-3)


class TestResultAccounting:
    def test_ratio_and_counts(self, tiny_platform):
        program = single_kernel_program(n=1000, flops=2.0, mem_bytes=0.0)
        graph = build(
            program,
            lambda inv: [(0, 250, "gpu0", None), (250, 1000, None, "cpu:0")],
        )
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        assert result.gpu_fraction == pytest.approx(0.25)
        assert result.cpu_fraction == pytest.approx(0.75)
        assert result.instances_by_device == {"gpu": 1, "cpu": 1}

    def test_ratio_by_kernel(self, tiny_platform):
        program = chain_program(2, n=1000)

        def chunker(inv):
            if inv.kernel.name == "k0":
                return [(0, 500, "gpu0", None), (500, 1000, None, "cpu:0")]
            return [(0, 1000, None, "cpu:0")]

        graph = build(program, chunker)
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        ratios = result.ratio_by_kernel()
        assert ratios["k0"] == {"gpu": 500, "cpu": 500}
        assert ratios["k1"] == {"cpu": 1000}


class TestDeadlockDetection:
    def test_unsatisfiable_dependence_raises(self, tiny_platform):
        program = single_kernel_program(n=1000)
        graph = build(program, whole_chunker(resource="cpu:0"))
        # dependence on a nonexistent instance id never resolves
        graph.instances[0].deps.add(999)
        run = RuntimeEngine(tiny_platform, config=EXACT)
        with pytest.raises((SimulationError, KeyError)):
            run.execute(graph, StaticScheduler())
