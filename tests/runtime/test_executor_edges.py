"""Executor edge cases: non-duplex links, multi-accelerator traffic."""

from repro.platform.device import Device, DeviceKind, DeviceSpec
from repro.platform.interconnect import Link
from repro.platform.topology import Platform
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import expand_program
from repro.runtime.schedulers.base import StaticScheduler

from tests.conftest import chain_program, single_kernel_program

EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def platform_with(duplex: bool) -> Platform:
    cpu = DeviceSpec(
        name="c", kind=DeviceKind.CPU, cores=2, frequency_ghz=2.0,
        peak_gflops_sp=100.0, peak_gflops_dp=50.0,
        mem_bandwidth_gbs=40.0, mem_capacity_gb=8.0,
    )
    gpu = DeviceSpec(
        name="g", kind=DeviceKind.GPU, cores=128, frequency_ghz=1.0,
        peak_gflops_sp=1000.0, peak_gflops_dp=500.0,
        mem_bandwidth_gbs=200.0, mem_capacity_gb=4.0,
    )
    return Platform(
        host=Device("cpu", cpu),
        accelerators=[Device("gpu0", gpu)],
        links={"gpu0": Link(name="l", bandwidth_gbs=10.0, latency_s=0.0,
                            duplex=duplex)},
    )


def run_on(platform, program, chunker):
    graph = expand_program(program, chunker)
    build_dependences(graph)
    return RuntimeEngine(platform, config=EXACT).execute(
        graph, StaticScheduler()
    )


    # 4 GPU chunks under per-iteration sync: chunk write-backs (d2h)
    # overlap later chunks' uploads (h2d) only when the link is duplex
def four_chunks(inv):
    quarter = inv.n // 4
    return [
        (i * quarter, (i + 1) * quarter if i < 3 else inv.n, "gpu0", None)
        for i in range(4)
    ]


class TestDuplex:
    def test_half_duplex_serializes_directions(self):
        program = single_kernel_program(
            n=2_000_000, iterations=2, sync=True, flops=1.0, mem_bytes=0.0
        )
        full = run_on(platform_with(True), program, four_chunks)
        half = run_on(platform_with(False), program, four_chunks)
        assert half.makespan_s > full.makespan_s

    def test_same_bytes_either_way(self):
        program = single_kernel_program(
            n=1_000_000, iterations=2, sync=True, flops=1.0, mem_bytes=0.0
        )
        full = run_on(platform_with(True), program, four_chunks)
        half = run_on(platform_with(False), program, four_chunks)
        assert full.transfer_bytes == half.transfer_bytes


class TestMultiAcceleratorTraffic:
    def test_each_gpu_pays_its_own_link(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        program = single_kernel_program(n=1_000_000, flops=1.0, mem_bytes=0.0)

        def chunker(inv):
            return [(0, inv.n // 2, "gpu0", None),
                    (inv.n // 2, inv.n, "gpu1", None)]

        graph = expand_program(program, chunker)
        build_dependences(graph)
        result = RuntimeEngine(platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        devices = {
            t.meta["device"] for t in result.trace.by_category("transfer")
        }
        assert devices == {"gpu0", "gpu1"}

    def test_cross_gpu_chain_stages_through_host(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        program = chain_program(2, n=1_000_000)

        def chunker(inv):
            device = "gpu0" if inv.kernel.name == "k0" else "gpu1"
            return [(0, inv.n, device, None)]

        graph = expand_program(program, chunker)
        build_dependences(graph)
        result = RuntimeEngine(platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        transfers = result.trace.by_category("transfer")
        # x1 leaves gpu0 (d2h) and enters gpu1 (h2d): host staging
        d2h_gpu0 = [t for t in transfers
                    if t.meta["device"] == "gpu0"
                    and t.meta["direction"] == "d2h"
                    and t.meta["array"] == "x1"]
        h2d_gpu1 = [t for t in transfers
                    if t.meta["device"] == "gpu1"
                    and t.meta["direction"] == "h2d"
                    and t.meta["array"] == "x1"]
        assert d2h_gpu0 and h2d_gpu1
        assert min(t.start for t in h2d_gpu1) >= max(t.end for t in d2h_gpu0) - 1e-12
