"""Failure injection: misbehaving schedulers and corrupted graphs."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.base import Scheduler

from tests.conftest import single_kernel_program

EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def graph_of(n=1000, chunks=4):
    graph = expand_program(
        single_kernel_program(n=n),
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
        ],
    )
    return build_dependences(graph)


class UnknownResourceScheduler(Scheduler):
    name = "broken-unknown"

    def assign(self, ready, ctx):
        return [(inst, "warp-drive") for inst in ready]


class DoubleAssignScheduler(Scheduler):
    name = "broken-double"

    def assign(self, ready, ctx):
        if not ready:
            return []
        inst = ready[0]
        rid = ctx.resources[0].resource_id
        return [(inst, rid), (inst, rid)]


class LazyScheduler(Scheduler):
    """Never assigns anything: the run must end in a deadlock error."""

    name = "broken-lazy"

    def assign(self, ready, ctx):
        return []


class TestFaultySchedulers:
    def test_unknown_resource_raises(self, tiny_platform):
        with pytest.raises(SchedulingError):
            RuntimeEngine(tiny_platform, config=EXACT).execute(
                graph_of(), UnknownResourceScheduler()
            )

    def test_double_assignment_raises(self, tiny_platform):
        with pytest.raises(SchedulingError):
            RuntimeEngine(tiny_platform, config=EXACT).execute(
                graph_of(), DoubleAssignScheduler()
            )

    def test_lazy_scheduler_detected_as_deadlock(self, tiny_platform):
        with pytest.raises(SimulationError, match="deadlock"):
            RuntimeEngine(tiny_platform, config=EXACT).execute(
                graph_of(), LazyScheduler()
            )


class TestCorruptedGraphs:
    def test_dangling_dependence_is_a_deadlock(self, tiny_platform):
        graph = graph_of()
        graph.instances[0].deps.add(999)
        with pytest.raises((SimulationError, KeyError)):
            RuntimeEngine(tiny_platform, config=EXACT).execute(
                graph, LazyScheduler()
            )

    def test_engine_reusable_after_failure(self, tiny_platform):
        """A failed run must not poison the engine for the next one."""
        from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler

        engine = RuntimeEngine(tiny_platform, config=EXACT)
        with pytest.raises(SchedulingError):
            engine.execute(graph_of(), UnknownResourceScheduler())
        result = engine.execute(graph_of(), BreadthFirstScheduler())
        assert result.makespan_s > 0
