"""Scheduler policies: static pinning, breadth-first, perf-aware EFT."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import chunk_ranges, expand_program
from repro.runtime.schedulers.base import (
    Scheduler,
    SchedulingContext,
    StaticScheduler,
)
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler, ProfileTable

from tests.conftest import chain_program, single_kernel_program

EXACT = RuntimeConfig(
    task_creation_overhead_s=0.0,
    dynamic_decision_overhead_s=0.0,
    barrier_overhead_s=0.0,
)


def run(platform, program, scheduler, *, n_chunks=4, config=EXACT):
    graph = expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, n_chunks)
        ],
    )
    build_dependences(graph)
    return RuntimeEngine(platform, config=config).execute(graph, scheduler)


class TestStaticScheduler:
    def test_rejects_unpinned(self, tiny_platform):
        program = single_kernel_program(n=100)
        with pytest.raises(SchedulingError):
            run(tiny_platform, program, StaticScheduler(), n_chunks=1)

    def test_device_pin_spreads_over_cores(self, tiny_platform):
        program = single_kernel_program(n=100, flops=2.0, mem_bytes=0.0)
        graph = expand_program(
            program,
            lambda inv: [
                (lo, hi, "cpu", None) for lo, hi in chunk_ranges(inv.n, 4)
            ],
        )
        build_dependences(graph)
        result = RuntimeEngine(tiny_platform, config=EXACT).execute(
            graph, StaticScheduler()
        )
        used = {r.resource_id for r in result.trace.by_category("compute")}
        assert used == {"cpu:0", "cpu:1", "cpu:2", "cpu:3"}

    def test_is_not_dynamic(self):
        assert StaticScheduler.dynamic is False


class TestBreadthFirst:
    def test_accelerator_served_first(self, tiny_platform):
        # m chunks over m cpu threads + 1 gpu: GPU gets exactly one
        program = single_kernel_program(n=400, flops=2.0, mem_bytes=8.0)
        result = run(tiny_platform, program, BreadthFirstScheduler(), n_chunks=4)
        assert result.instances_by_device.get("gpu") == 1
        assert result.instances_by_device.get("cpu") == 3

    def test_capability_blind_imbalance(self, tiny_platform):
        # GPU is 10x the CPU, yet BF leaves most work on the CPU cores —
        # makespan tracks a CPU core's single chunk, like Only-CPU
        program = single_kernel_program(n=4_000_000, flops=100.0, mem_bytes=0.0)
        result = run(tiny_platform, program, BreadthFirstScheduler(), n_chunks=4)
        core_chunk = 1_000_000 * 100.0 / 25e9
        assert result.makespan_s >= core_chunk * 0.99

    def test_chain_affinity_keeps_device(self, tiny_platform):
        # 3-kernel chain, 4 chunks: each chunk's chain stays on one device
        program = chain_program(3, n=400)
        result = run(tiny_platform, program, BreadthFirstScheduler(), n_chunks=4)
        chain_devices: dict[int, set[str]] = {}
        for rec in result.trace.by_category("compute"):
            lo = int(rec.label.split("[")[1].split(":")[0])
            chain_devices.setdefault(lo, set()).add(rec.meta["device"])
        for devices in chain_devices.values():
            assert len(devices) == 1

    def test_all_instances_complete(self, tiny_platform):
        program = chain_program(4, n=1000)
        result = run(tiny_platform, program, BreadthFirstScheduler(), n_chunks=5)
        assert len(result.trace.by_category("compute")) == 20


class TestPerfAware:
    def test_eft_prefers_fast_device_for_compute_bound(self, tiny_platform):
        # compute-heavy kernel, tiny transfers: everything lands on the GPU
        program = single_kernel_program(n=4_000_000, flops=1000.0, mem_bytes=0.0)
        result = run(tiny_platform, program, PerfAwareScheduler(), n_chunks=4)
        assert result.gpu_fraction == pytest.approx(1.0)

    def test_eft_avoids_gpu_for_transfer_bound(self, tiny_platform):
        # ~zero flops, three arrays crossing the link per index: the
        # billed transfers make the GPU unattractive; most work stays on
        # the CPU
        program = single_kernel_program(
            n=4_000_000, flops=0.001, mem_bytes=8.0,
            reads=("x", "z"), writes=("y",),
        )
        result = run(tiny_platform, program, PerfAwareScheduler(), n_chunks=8)
        assert result.gpu_fraction < 0.5

    def test_profile_seeding_used(self, tiny_platform):
        # seed a profile claiming the GPU is 1000x slower than reality:
        # EFT must then keep everything on the CPU
        program = single_kernel_program(n=4_000_000, flops=1000.0, mem_bytes=0.0)
        table = ProfileTable()
        table.set("k", "gpu0", 1.0)      # 1 s per index: terrible
        table.set("k", "cpu", 1e-9)
        scheduler = PerfAwareScheduler(table, ewma_alpha=0.0)  # never learn
        result = run(tiny_platform, program, scheduler, n_chunks=4)
        assert result.gpu_fraction == 0.0

    def test_ewma_learning_corrects_bad_seed(self, tiny_platform):
        # same terrible GPU seed, but with learning enabled and many
        # sequential rounds the estimates converge back to reality
        program = chain_program(6, n=4_000_000)
        table = ProfileTable()
        table.set("k0", "gpu0", 1e-3)  # pessimistic but not absurd
        scheduler = PerfAwareScheduler(table, ewma_alpha=0.9)
        run(tiny_platform, program, scheduler, n_chunks=4)
        # after the run, the learned gpu rate is far below the seed
        learned = min(
            rate for (kernel, dev), rate
            in scheduler.profile.rate_s_per_index.items()
            if dev == "gpu0"
        )
        assert learned < 1e-3

    def test_rate_table_validation(self):
        table = ProfileTable()
        with pytest.raises(SchedulingError):
            table.set("k", "gpu0", 0.0)

    def test_alpha_validation(self):
        with pytest.raises(SchedulingError):
            PerfAwareScheduler(ewma_alpha=1.5)

    def test_assignment_immediate_queues_on_busy_device(self, tiny_platform):
        # all chunks assigned at t=0; GPU executes them back-to-back
        program = single_kernel_program(n=4_000_000, flops=1000.0, mem_bytes=0.0)
        result = run(tiny_platform, program, PerfAwareScheduler(), n_chunks=4)
        gpu_recs = sorted(
            result.trace.by_resource("gpu0"), key=lambda r: r.start
        )
        computes = [r for r in gpu_recs if r.category == "compute"]
        assert len(computes) == 4
        for earlier, later in zip(computes, computes[1:]):
            assert later.start == pytest.approx(earlier.end)


class TestSchedulingContext:
    def test_idle_resources(self, tiny_platform):
        resources = tiny_platform.compute_resources(cpu_threads=2)
        ctx = SchedulingContext(
            now=0.0, resources=resources,
            inflight={"cpu:0": 1, "cpu:1": 0, "gpu0": 0},
        )
        idle = {r.resource_id for r in ctx.idle_resources()}
        assert idle == {"cpu:1", "gpu0"}

    def test_resource_lookup(self, tiny_platform):
        resources = tiny_platform.compute_resources()
        ctx = SchedulingContext(now=0.0, resources=resources, inflight={})
        assert ctx.resource("gpu0").is_accelerator
        with pytest.raises(SchedulingError):
            ctx.resource("nope")


def test_base_scheduler_assign_abstract(tiny_platform):
    with pytest.raises(NotImplementedError):
        Scheduler().assign([], SchedulingContext(
            now=0.0, resources=tiny_platform.compute_resources(), inflight={}
        ))
