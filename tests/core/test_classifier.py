"""Classification of programs into the five classes (Table II + suite)."""

import pytest

from repro.apps import paper_applications
from repro.apps.cholesky import Cholesky
from repro.apps.suite import realize_program, synthetic_suite
from repro.core.classes import AppClass
from repro.core.classifier import classify_program

from tests.conftest import chain_program, single_kernel_program


class TestBasicClassification:
    def test_sk_one(self):
        assert classify_program(single_kernel_program()) is AppClass.SK_ONE

    def test_sk_loop(self):
        assert (
            classify_program(single_kernel_program(iterations=4))
            is AppClass.SK_LOOP
        )

    def test_mk_seq(self):
        assert classify_program(chain_program(3)) is AppClass.MK_SEQ

    def test_mk_dag(self):
        assert (
            classify_program(Cholesky(tile_size=32).program(3))
            is AppClass.MK_DAG
        )


class TestTableII:
    """Every evaluation application classifies as the paper's Table II says."""

    @pytest.mark.parametrize(
        "app", paper_applications(), ids=lambda a: a.name
    )
    def test_paper_class(self, app):
        # small problem sizes: classification is structural, not size-based
        program = app.program(max(64, app.paper_n // 1024))
        assert classify_program(program) is AppClass.from_label(app.paper_class)


class TestSyntheticSuite:
    """The [18]-style coverage study: all 86 applications classify."""

    def test_suite_has_86_applications(self):
        assert len(synthetic_suite()) == 86

    def test_five_suites_represented(self):
        assert len({d.suite for d in synthetic_suite()}) == 5

    def test_all_five_classes_present(self):
        assert {d.expected_class for d in synthetic_suite()} == {
            "SK-One", "SK-Loop", "MK-Seq", "MK-Loop", "MK-DAG",
        }

    @pytest.mark.parametrize(
        "desc", synthetic_suite(), ids=lambda d: f"{d.suite}:{d.name}"
    )
    def test_every_descriptor_classifies_as_expected(self, desc):
        program = realize_program(desc, n=256)
        assert classify_program(program) is AppClass.from_label(
            desc.expected_class
        )
