"""Tournament engine: measured rankings, persistence, provider seam."""

import pytest

from repro.cache import get_cache, load_snapshot, save_snapshot
from repro.core.classes import AppClass
from repro.core.ranking import (
    RankingProvider,
    TableRankingProvider,
    resolve_ranker,
)
from repro.core.tournament import (
    MeasuredRankingProvider,
    TournamentResult,
    default_scenarios,
    format_tournament,
    run_tournament,
)
from repro.bench.matchup import (
    check_propositions,
    compare_to_table,
    format_matchup,
)
from repro.errors import ClassificationError, ConfigurationError
from repro.partition.base import list_strategies, strategy_info
from repro.platform.presets import shen_icpp15_platform


@pytest.fixture(scope="module")
def paper_tournament():
    """One tournament on the Table III machine, shared by the module."""
    return run_tournament(shen_icpp15_platform())


class TestScenarios:
    def test_mk_apps_play_both_sync_variants(self):
        scenarios = default_scenarios()
        stream_seq = [s for s in scenarios if s.app == "STREAM-Seq"]
        assert sorted(s.needs_sync for s in stream_seq) == [False, True]

    def test_sk_apps_play_once(self):
        scenarios = default_scenarios()
        assert len([s for s in scenarios if s.app == "MatrixMul"]) == 1


class TestTournament:
    def test_covers_every_class_and_sync_case(self, paper_tournament):
        assert set(paper_tournament.rankings) == {
            ("SK-One", False), ("SK-Loop", False),
            ("MK-Seq", False), ("MK-Seq", True),
            ("MK-Loop", False), ("MK-Loop", True),
            ("MK-DAG", False),
        }

    def test_rankings_are_well_formed(self, paper_tournament):
        registered = set(list_strategies())
        for (app_class, sync), cell in paper_tournament.rankings.items():
            names = cell.ranking
            assert set(names) <= registered
            assert len(names) == len(set(names)), f"duplicates in {names}"
            for name in names:
                info = strategy_info(name)
                assert info.ranked, f"baseline {name} ranked in {app_class}"
                assert info.applicable(app_class), (
                    f"{name} ranked for {app_class} but not applicable"
                )

    def test_scores_are_ratios_to_winner(self, paper_tournament):
        for cell in paper_tournament.rankings.values():
            ordered = [cell.scores[n] for n in cell.ranking]
            assert ordered == sorted(ordered)
            # per-scenario ratios are to the scenario winner, so every
            # geometric mean is >= 1 (== 1 only for an all-scenario winner)
            assert all(score >= 1.0 for score in ordered)

    def test_reproduces_table_one_on_paper_platform(self, paper_tournament):
        """The acceptance check: Table I holds cell by cell — and any cell
        that diverges must carry makespan evidence for the broken
        proposition."""
        report = compare_to_table(paper_tournament)
        for cell in report.cells:
            assert cell.agrees or cell.violations, (
                f"{cell.label} diverges without evidence: {cell.scores}"
            )
        assert report.agreement == 1.0

    def test_warm_replay_simulates_nothing(self, paper_tournament):
        replay = run_tournament(shen_icpp15_platform())
        assert replay.simulated == 0
        assert {k: v.ranking for k, v in replay.rankings.items()} == {
            k: v.ranking for k, v in paper_tournament.rankings.items()
        }

    def test_snapshot_round_trip(self, paper_tournament, tmp_path):
        path = tmp_path / "memo.pkl"
        save_snapshot(path)
        get_cache("tournament").clear()
        assert run_tournament(shen_icpp15_platform()).simulated > 0
        get_cache("tournament").clear()
        load_snapshot(path)
        assert run_tournament(shen_icpp15_platform()).simulated == 0

    def test_ranking_for_missing_class_raises(self, paper_tournament):
        empty = TournamentResult(
            platform="x", scale=1.0, matches=(), rankings={}
        )
        with pytest.raises(ClassificationError):
            empty.ranking_for(AppClass.SK_ONE)

    def test_format_lists_every_cell(self, paper_tournament):
        text = format_tournament(paper_tournament)
        for label in ("SK-One", "SK-Loop", "MK-Seq", "MK-Loop", "MK-DAG"):
            assert label in text
        assert "geomean ratio" in text


class TestMeasuredProvider:
    def test_is_a_ranking_provider(self):
        assert issubclass(MeasuredRankingProvider, RankingProvider)

    def test_lazily_plays_and_answers(self, paper_tournament):
        provider = MeasuredRankingProvider()  # Table III default platform
        ranked = provider.ranking(AppClass.SK_ONE)
        assert set(ranked) <= set(list_strategies())
        assert ranked == paper_tournament.ranking_for(AppClass.SK_ONE)

    def test_sync_selects_the_sub_case(self, paper_tournament):
        provider = MeasuredRankingProvider()
        nosync = provider.ranking(AppClass.MK_SEQ, needs_sync=False)
        sync = provider.ranking(AppClass.MK_SEQ, needs_sync=True)
        assert nosync != sync
        assert nosync[0] == "SP-Unified"
        assert sync[0] == "SP-Varied"


class TestResolveRanker:
    def test_default_is_the_table(self):
        assert resolve_ranker(None) is resolve_ranker("table")
        assert isinstance(resolve_ranker("table"), TableRankingProvider)

    def test_measured_builds_a_provider(self):
        provider = resolve_ranker("measured")
        assert isinstance(provider, MeasuredRankingProvider)

    def test_instances_pass_through(self):
        provider = MeasuredRankingProvider()
        assert resolve_ranker(provider) is provider

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_ranker("vibes")


class TestMatchup:
    def test_prop1_violation_carries_evidence(self):
        scores = {"DP-Perf": 2.0, "DP-Dep": 1.0}
        violations = check_propositions("MK-DAG", False, scores)
        assert len(violations) == 1
        assert "Prop 1" in violations[0]
        assert "DP-Perf 2.000" in violations[0]
        assert "DP-Dep 1.000" in violations[0]

    def test_ties_within_tolerance_hold(self):
        scores = {"DP-Perf": 1.05, "DP-Dep": 1.0}
        assert check_propositions("MK-DAG", False, scores) == ()

    def test_prop3_selects_the_sync_chain(self):
        scores = {
            "SP-Varied": 1.0, "DP-Perf": 1.2, "DP-Dep": 1.3,
            "SP-Unified": 5.0,
        }
        assert check_propositions("MK-Seq", True, scores) == ()
        broken = check_propositions("MK-Seq", False, scores)
        assert broken and "w/o sync" in broken[0]

    def test_upsets_name_the_new_family(self, paper_tournament):
        report = compare_to_table(paper_tournament)
        sk_one = next(c for c in report.cells if c.app_class == "SK-One")
        assert any("HYB-Static" in u for u in sk_one.upsets)

    def test_format_names_divergent_cells(self, paper_tournament):
        text = format_matchup(compare_to_table(paper_tournament))
        assert "measured vs Table I" in text
        assert "table:" in text and "measured:" in text
