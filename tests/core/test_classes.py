"""The five application classes."""

import pytest

from repro.core.classes import AppClass


class TestAppClass:
    def test_labels(self):
        assert AppClass.SK_ONE.value == "SK-One"
        assert AppClass.MK_DAG.value == "MK-DAG"

    def test_roman_numerals(self):
        assert [c.roman for c in AppClass] == ["I", "II", "III", "IV", "V"]

    def test_single_vs_multi(self):
        assert AppClass.SK_ONE.single_kernel
        assert AppClass.SK_LOOP.single_kernel
        assert AppClass.MK_SEQ.multi_kernel
        assert AppClass.MK_LOOP.multi_kernel
        assert AppClass.MK_DAG.multi_kernel

    def test_from_label_roundtrip(self):
        for member in AppClass:
            assert AppClass.from_label(member.value) is member

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            AppClass.from_label("SK-Two")
