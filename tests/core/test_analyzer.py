"""The analyzer: program/application -> class -> ranked strategies."""

import pytest

from repro.apps import get_application
from repro.core.analyzer import analyze, analyze_program
from repro.core.classes import AppClass

from tests.conftest import chain_program, single_kernel_program


class TestAnalyzeProgram:
    def test_single_kernel(self):
        report = analyze_program(single_kernel_program(), name="toy")
        assert report.application == "toy"
        assert report.app_class is AppClass.SK_ONE
        assert report.best_strategy == "SP-Single"

    def test_sync_inferred_from_program(self):
        report = analyze_program(chain_program(3, sync=True))
        assert report.needs_sync
        assert report.best_strategy == "SP-Varied"

    def test_sync_override_wins(self):
        # the code has no taskwaits yet, but the analyst knows the app
        # needs host-side post-processing between kernels
        report = analyze_program(chain_program(3), needs_sync=True)
        assert report.best_strategy == "SP-Varied"

    def test_no_sync_gives_unified(self):
        report = analyze_program(chain_program(3))
        assert report.best_strategy == "SP-Unified"


class TestAnalyzeApplication:
    @pytest.mark.parametrize(
        "name,expected_class,expected_best",
        [
            ("MatrixMul", AppClass.SK_ONE, "SP-Single"),
            ("BlackScholes", AppClass.SK_ONE, "SP-Single"),
            ("Nbody", AppClass.SK_LOOP, "SP-Single"),
            ("HotSpot", AppClass.SK_LOOP, "SP-Single"),
            ("STREAM-Seq", AppClass.MK_SEQ, "SP-Unified"),
            ("STREAM-Loop", AppClass.MK_LOOP, "SP-Unified"),
            ("Cholesky", AppClass.MK_DAG, "DP-Perf"),
        ],
    )
    def test_matchmaking_table(self, name, expected_class, expected_best):
        app = get_application(name)
        n = max(64, min(app.paper_n, 1024))
        if name == "Cholesky":
            n = 4
        report = analyze(app, n=n)
        assert report.app_class is expected_class
        assert report.best_strategy == expected_best

    def test_stream_with_sync_prefers_varied(self):
        report = analyze(get_application("STREAM-Seq"), n=1024, sync=True)
        assert report.needs_sync
        assert report.best_strategy == "SP-Varied"

    def test_report_carries_structure(self):
        report = analyze(get_application("STREAM-Seq"), n=1024)
        assert report.structure.n_kernels == 4
        assert report.structure.kernel_names == ("copy", "scale", "add", "triad")
