"""Table I: suitable strategies and performance rankings."""

from repro.core.classes import AppClass
from repro.core.ranking import (
    PROPOSITIONS,
    best_strategy,
    ranking,
    suitable_strategies,
)


class TestTableI:
    def test_sk_classes(self):
        for cls in (AppClass.SK_ONE, AppClass.SK_LOOP):
            assert ranking(cls) == ("SP-Single", "DP-Perf", "DP-Dep")

    def test_mk_without_sync(self):
        for cls in (AppClass.MK_SEQ, AppClass.MK_LOOP):
            assert ranking(cls, needs_sync=False) == (
                "SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied"
            )

    def test_mk_with_sync(self):
        for cls in (AppClass.MK_SEQ, AppClass.MK_LOOP):
            assert ranking(cls, needs_sync=True) == (
                "SP-Varied", "DP-Perf", "DP-Dep", "SP-Unified"
            )

    def test_mk_dag(self):
        assert ranking(AppClass.MK_DAG) == ("DP-Perf", "DP-Dep")
        # sync is irrelevant for the DAG class
        assert ranking(AppClass.MK_DAG, needs_sync=True) == (
            "DP-Perf", "DP-Dep"
        )

    def test_sync_irrelevant_for_sk(self):
        assert ranking(AppClass.SK_LOOP, needs_sync=True) == ranking(
            AppClass.SK_LOOP, needs_sync=False
        )


class TestDerivedHelpers:
    def test_best_strategy(self):
        assert best_strategy(AppClass.SK_ONE) == "SP-Single"
        assert best_strategy(AppClass.MK_SEQ, needs_sync=True) == "SP-Varied"
        assert best_strategy(AppClass.MK_DAG) == "DP-Perf"

    def test_suitable_strategies_ignore_sync_order(self):
        mk = set(suitable_strategies(AppClass.MK_LOOP))
        assert mk == {"SP-Unified", "SP-Varied", "DP-Perf", "DP-Dep"}

    def test_static_never_suitable_for_dag(self):
        dag = suitable_strategies(AppClass.MK_DAG)
        assert all(not s.startswith("SP-") for s in dag)

    def test_dp_perf_always_outranks_dp_dep(self):
        # Proposition 1 holds in every ranking row
        for cls in AppClass:
            for sync in (False, True):
                row = ranking(cls, needs_sync=sync)
                assert row.index("DP-Perf") < row.index("DP-Dep")

    def test_dynamic_strategies_in_every_row(self):
        # wide applicability: DP-Perf/DP-Dep appear for every class
        for cls in AppClass:
            row = ranking(cls)
            assert "DP-Perf" in row and "DP-Dep" in row


def test_three_propositions_documented():
    assert set(PROPOSITIONS) == {1, 2, 3}
    assert "DP-Perf" in PROPOSITIONS[1]
    assert "SP-Single" in PROPOSITIONS[2]
    assert "SP-Unified" in PROPOSITIONS[3] and "SP-Varied" in PROPOSITIONS[3]
