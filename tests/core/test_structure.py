"""Kernel-structure derivation from programs."""

import pytest

from repro.core.structure import FlowType, derive_structure
from repro.errors import ClassificationError
from repro.runtime.graph import KernelInvocation, Program

from tests.conftest import chain_program, make_kernel, single_kernel_program


class TestSingleKernel:
    def test_one_invocation_is_sequence(self):
        s = derive_structure(single_kernel_program())
        assert s.n_kernels == 1
        assert s.flow is FlowType.SEQUENCE
        assert s.iterations == 1

    def test_repeated_invocations_are_a_loop(self):
        s = derive_structure(single_kernel_program(iterations=5))
        assert s.flow is FlowType.LOOP
        assert s.iterations == 5

    def test_sync_detected(self):
        s = derive_structure(single_kernel_program(iterations=3, sync=True))
        assert s.has_inter_kernel_sync

    def test_trailing_sync_only_not_inter_kernel(self):
        # a taskwait after the LAST invocation is not inter-kernel sync
        kernel, specs = make_kernel(n=10)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=kernel, n=10,
                                 sync_after=True)
            ],
            arrays=specs,
        )
        assert not derive_structure(program).has_inter_kernel_sync


class TestMultiKernel:
    def test_chain_is_sequence(self):
        s = derive_structure(chain_program(3))
        assert s.n_kernels == 3
        assert s.flow is FlowType.SEQUENCE

    def test_iterated_chain_is_loop(self):
        from repro.runtime.graph import Program as P

        # build a 2-kernel chain iterated twice using iteration tags
        k0, arrays = make_kernel("k0", reads=("a",), writes=("b",), n=10)
        k1, arrays = make_kernel("k1", arrays=arrays, reads=("b",),
                                 writes=("a",), n=10)
        invs = []
        for it in range(2):
            for j, k in enumerate((k0, k1)):
                invs.append(KernelInvocation(
                    invocation_id=len(invs), kernel=k, n=10, iteration=it,
                ))
        s = derive_structure(P(invocations=invs, arrays=arrays))
        assert s.flow is FlowType.LOOP
        assert s.iterations == 2

    def test_fork_join_is_dag(self):
        # k0 -> (k1 || k2) -> k3
        k0, arrays = make_kernel("k0", reads=("a",), writes=("x",), n=10)
        k1, arrays = make_kernel("k1", arrays=arrays, reads=("x",),
                                 writes=("y1",), n=10)
        k2, arrays = make_kernel("k2", arrays=arrays, reads=("x",),
                                 writes=("y2",), n=10)
        k3, arrays = make_kernel("k3", arrays=arrays, reads=("y1", "y2"),
                                 writes=("z",), n=10)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=i, kernel=k, n=10)
                for i, k in enumerate((k0, k1, k2, k3))
            ],
            arrays=arrays,
        )
        s = derive_structure(program)
        assert s.flow is FlowType.DAG

    def test_inner_loop_does_not_change_sequence(self):
        # k0, k0, k0, k1 — k0 iterated in an inner loop, still a sequence
        # of two kernels (paper §III-B)
        k0, arrays = make_kernel("k0", reads=("a",), writes=("a2",), n=10)
        k1, arrays = make_kernel("k1", arrays=arrays, reads=("a2",),
                                 writes=("b",), n=10)
        invs = []
        for i in range(3):
            invs.append(KernelInvocation(invocation_id=i, kernel=k0, n=10))
        invs.append(KernelInvocation(invocation_id=3, kernel=k1, n=10))
        s = derive_structure(Program(invocations=invs, arrays=arrays))
        assert s.n_kernels == 2
        assert s.flow is FlowType.SEQUENCE

    def test_double_buffered_variants_count_once(self):
        # two Kernel objects sharing a name (ping-pong buffers) stay one
        # kernel, like the Nbody/HotSpot implementations
        from repro.apps import Nbody

        structure = derive_structure(Nbody().program(64, iterations=4))
        assert structure.n_kernels == 1
        assert structure.flow is FlowType.LOOP


def test_empty_program_rejected():
    with pytest.raises(ClassificationError):
        derive_structure(Program(invocations=[], arrays={}))
