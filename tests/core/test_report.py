"""Human-readable reports."""

from repro.apps import get_application
from repro.core.analyzer import analyze
from repro.core.matchmaker import match
from repro.core.report import format_analysis, format_match


class TestFormatAnalysis:
    def test_mentions_class_and_ranking(self):
        report = analyze(get_application("STREAM-Seq"), n=1024)
        text = format_analysis(report)
        assert "MK-Seq" in text
        assert "Class III" in text
        assert "SP-Unified" in text
        assert "copy" in text

    def test_loop_iterations_shown(self):
        report = analyze(get_application("HotSpot"), n=128, iterations=3)
        text = format_analysis(report)
        assert "3 iterations" in text


class TestFormatMatch:
    def test_includes_execution_outcome(self, paper_platform):
        outcome = match(get_application("BlackScholes"), paper_platform,
                        n=65536)
        text = format_match(outcome)
        assert "simulated makespan" in text
        assert "GPU" in text and "CPU" in text
        assert "H2D" in text

    def test_plan_only_shows_decision(self, paper_platform):
        outcome = match(get_application("BlackScholes"), paper_platform,
                        n=65536, execute=False)
        text = format_match(outcome)
        assert "planned split" in text
        assert "simulated makespan" not in text
