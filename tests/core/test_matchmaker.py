"""End-to-end matchmaking: classify, plan, execute."""

import pytest

from repro.apps import get_application
from repro.core.matchmaker import match, run_best
from repro.partition import PlanConfig


class TestMatch:
    def test_matrixmul_matches_sp_single(self, paper_platform):
        outcome = match(get_application("MatrixMul"), paper_platform, n=1024)
        assert outcome.strategy == "SP-Single"
        assert outcome.result is not None
        assert outcome.makespan_ms > 0

    def test_stream_sync_matches_sp_varied(self, paper_platform):
        outcome = match(
            get_application("STREAM-Seq"), paper_platform,
            n=65536, sync=True,
        )
        assert outcome.strategy == "SP-Varied"

    def test_plan_only_mode(self, paper_platform):
        outcome = match(
            get_application("BlackScholes"), paper_platform,
            n=65536, execute=False,
        )
        assert outcome.result is None
        with pytest.raises(ValueError):
            outcome.makespan_ms

    def test_config_threads_respected(self, paper_platform):
        outcome = match(
            get_application("MatrixMul"), paper_platform, n=1024,
            config=PlanConfig(cpu_threads=6),
        )
        cpu_instances = [
            i for i in outcome.plan.graph.instances
            if i.pinned_resource is not None
        ]
        assert len(cpu_instances) == 6

    def test_cholesky_matches_dynamic(self, paper_platform):
        from repro.apps.cholesky import Cholesky

        outcome = match(Cholesky(tile_size=64), paper_platform, n=4)
        assert outcome.strategy == "DP-Perf"
        assert outcome.result is not None

    def test_run_best_returns_result(self, paper_platform):
        result = run_best(get_application("HotSpot"), paper_platform,
                          n=256, iterations=2)
        assert result.makespan_s > 0
        assert result.instance_count > 0

    def test_matched_beats_mismatched(self, paper_platform):
        """Matchmaking pays: the chosen strategy beats the wrong one."""
        from repro.partition import get_strategy

        app = get_application("MatrixMul")
        program = app.program(2048)
        best = match(app, paper_platform, n=2048).result
        wrong = get_strategy("DP-Dep").run(program, paper_platform)
        assert best.makespan_s < wrong.makespan_s
