"""The probe/plan memo stores: counters, fingerprints, disablement,
and the disk-backed snapshots behind ``--cache-dir``."""

import dataclasses
import pickle

import pytest

from repro.cache import (
    SNAPSHOT_VERSION,
    MemoCache,
    cache_stats,
    clear_all,
    configure,
    counters,
    device_fingerprint,
    get_cache,
    kernel_fingerprint,
    load_snapshot,
    platform_fingerprint,
    save_snapshot,
    stats_delta,
)
from repro.partition.profiling import build_profile_table

from tests.conftest import chain_program


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_all()
    configure(enabled=True)
    yield
    clear_all()
    configure(enabled=True)


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache("t")
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 42
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_distinct_keys_do_not_collide(self):
        cache = MemoCache("t")
        assert cache.get_or_compute(("a", 1), lambda: "x") == "x"
        assert cache.get_or_compute(("a", 2), lambda: "y") == "y"
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = MemoCache("t")
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert stats.hit_rate == 0.0

    def test_max_entries_stops_admitting(self):
        cache = MemoCache("t", max_entries=2)
        for i in range(4):
            cache.get_or_compute(i, lambda i=i: i)
        assert len(cache) == 2
        # un-admitted keys recompute every time
        calls = []
        cache.get_or_compute(3, lambda: calls.append(1) or 3)
        cache.get_or_compute(3, lambda: calls.append(1) or 3)
        assert len(calls) == 2

    def test_disabled_cache_always_computes(self):
        cache = MemoCache("t")
        cache.enabled = False
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        assert len(calls) == 2
        assert len(cache) == 0


class TestRegistry:
    def test_get_cache_is_idempotent(self):
        assert get_cache("reg-test") is get_cache("reg-test")

    def test_cache_stats_snapshots_every_store(self):
        get_cache("reg-a").get_or_compute(1, lambda: 1)
        stats = cache_stats()
        assert "reg-a" in stats
        assert stats["reg-a"].misses == 1

    def test_configure_disables_all_stores(self):
        cache = get_cache("reg-b")
        configure(enabled=False)
        try:
            calls = []
            cache.get_or_compute("k", lambda: calls.append(1) or 1)
            cache.get_or_compute("k", lambda: calls.append(1) or 1)
            assert len(calls) == 2
            # newly created stores inherit the setting (via REPRO_CACHE)
            assert get_cache("reg-c").enabled is False
        finally:
            configure(enabled=True)


class TestFingerprints:
    def test_device_fingerprint_tracks_spec(self, paper_platform):
        host = paper_platform.host
        fp = device_fingerprint(host)
        assert fp == device_fingerprint(host)
        slower = dataclasses.replace(
            host.spec, mem_bandwidth_gbs=host.spec.mem_bandwidth_gbs / 2
        )
        patched = type(host)(host.device_id, slower, host.cost_model)
        assert device_fingerprint(patched) != fp

    def test_platform_fingerprint_tracks_links(self, paper_platform):
        from repro.bench.crossover import with_link_bandwidth

        fp = platform_fingerprint(paper_platform)
        assert fp == platform_fingerprint(paper_platform)
        faster = with_link_bandwidth(paper_platform, 96.0)
        assert platform_fingerprint(faster) != fp

    def test_kernel_fingerprint_ignores_impl(self):
        program = chain_program(1, n=64)
        kernel = program.kernels[0]
        fp = kernel_fingerprint(kernel)
        patched = dataclasses.replace(kernel, impl=lambda *a, **k: None)
        assert kernel_fingerprint(patched) == fp
        recosted = dataclasses.replace(
            kernel,
            cost=dataclasses.replace(
                kernel.cost, flops_per_elem=kernel.cost.flops_per_elem + 1
            ),
        )
        assert kernel_fingerprint(recosted) != fp


class TestDiskSnapshots:
    def test_round_trip_restores_entries(self, tmp_path):
        get_cache("snap-a").get_or_compute("k1", lambda: 11)
        get_cache("snap-b").get_or_compute("k2", lambda: 22)
        path = tmp_path / "snap.pkl"
        assert save_snapshot(path) == 2
        clear_all()
        assert len(get_cache("snap-a")) == 0
        assert load_snapshot(path) == 2
        # restored entries serve as hits without recomputing
        calls = []
        assert get_cache("snap-a").get_or_compute(
            "k1", lambda: calls.append(1) or -1
        ) == 11
        assert get_cache("snap-b").get_or_compute("k2", lambda: -1) == 22
        assert not calls

    def test_load_does_not_touch_counters(self, tmp_path):
        get_cache("snap-c").get_or_compute("k", lambda: 1)
        path = tmp_path / "snap.pkl"
        save_snapshot(path)
        clear_all()
        load_snapshot(path)
        stats = get_cache("snap-c").stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 1)

    def test_missing_file_loads_nothing(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.pkl") == 0

    def test_corrupt_file_loads_nothing(self, tmp_path):
        path = tmp_path / "snap.pkl"
        path.write_bytes(b"not a pickle at all")
        assert load_snapshot(path) == 0
        # a truncated but once-valid snapshot is also rejected cleanly
        get_cache("snap-d").get_or_compute("k", lambda: 1)
        save_snapshot(path)
        path.write_bytes(path.read_bytes()[:10])
        clear_all()
        assert load_snapshot(path) == 0

    def test_version_mismatch_is_ignored(self, tmp_path):
        path = tmp_path / "snap.pkl"
        payload = {
            "format": "repro-cache-snapshot",
            "version": SNAPSHOT_VERSION + 1,
            "stores": {"snap-e": {"k": 1}},
        }
        path.write_bytes(pickle.dumps(payload))
        assert load_snapshot(path) == 0
        assert len(get_cache("snap-e")) == 0

    def test_foreign_pickle_is_ignored(self, tmp_path):
        path = tmp_path / "snap.pkl"
        path.write_bytes(pickle.dumps({"some": "other payload"}))
        assert load_snapshot(path) == 0
        path.write_bytes(pickle.dumps([1, 2, 3]))
        assert load_snapshot(path) == 0

    def test_save_creates_parent_dirs(self, tmp_path):
        get_cache("snap-f").get_or_compute("k", lambda: 1)
        path = tmp_path / "deep" / "nested" / "snap.pkl"
        assert save_snapshot(path) == 1
        clear_all()
        assert load_snapshot(path) == 1

    def test_counters_delta_pairing(self):
        before = counters()
        get_cache("snap-g").get_or_compute("k", lambda: 1)
        get_cache("snap-g").get_or_compute("k", lambda: 1)
        delta = stats_delta(before)
        assert delta["snap-g"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}


class TestProfileTableCaching:
    def test_cached_seed_yields_independent_tables(self, paper_platform):
        program = chain_program(2, n=4096)
        first = build_profile_table(program, paper_platform)
        second = build_profile_table(program, paper_platform)
        assert first is not second
        assert first.rate_s_per_index == second.rate_s_per_index
        # the scheduler EWMA-mutates its copy; the memoized seed must not see it
        key = next(iter(first.rate_s_per_index))
        first.rate_s_per_index[key] *= 10.0
        third = build_profile_table(program, paper_platform)
        assert third.rate_s_per_index == second.rate_s_per_index

    def test_repeat_builds_hit_the_cache(self, paper_platform):
        program = chain_program(2, n=4096)
        build_profile_table(program, paper_platform)
        before = cache_stats()["profile-table"].hits
        build_profile_table(program, paper_platform)
        assert cache_stats()["profile-table"].hits == before + 1
