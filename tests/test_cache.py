"""The probe/plan memo stores: counters, fingerprints, disablement."""

import dataclasses

import pytest

from repro.cache import (
    MemoCache,
    cache_stats,
    clear_all,
    configure,
    device_fingerprint,
    get_cache,
    kernel_fingerprint,
    platform_fingerprint,
)
from repro.partition.profiling import build_profile_table

from tests.conftest import chain_program


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_all()
    configure(enabled=True)
    yield
    clear_all()
    configure(enabled=True)


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache("t")
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 99) == 42
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_distinct_keys_do_not_collide(self):
        cache = MemoCache("t")
        assert cache.get_or_compute(("a", 1), lambda: "x") == "x"
        assert cache.get_or_compute(("a", 2), lambda: "y") == "y"
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = MemoCache("t")
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert stats.hit_rate == 0.0

    def test_max_entries_stops_admitting(self):
        cache = MemoCache("t", max_entries=2)
        for i in range(4):
            cache.get_or_compute(i, lambda i=i: i)
        assert len(cache) == 2
        # un-admitted keys recompute every time
        calls = []
        cache.get_or_compute(3, lambda: calls.append(1) or 3)
        cache.get_or_compute(3, lambda: calls.append(1) or 3)
        assert len(calls) == 2

    def test_disabled_cache_always_computes(self):
        cache = MemoCache("t")
        cache.enabled = False
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        assert len(calls) == 2
        assert len(cache) == 0


class TestRegistry:
    def test_get_cache_is_idempotent(self):
        assert get_cache("reg-test") is get_cache("reg-test")

    def test_cache_stats_snapshots_every_store(self):
        get_cache("reg-a").get_or_compute(1, lambda: 1)
        stats = cache_stats()
        assert "reg-a" in stats
        assert stats["reg-a"].misses == 1

    def test_configure_disables_all_stores(self):
        cache = get_cache("reg-b")
        configure(enabled=False)
        try:
            calls = []
            cache.get_or_compute("k", lambda: calls.append(1) or 1)
            cache.get_or_compute("k", lambda: calls.append(1) or 1)
            assert len(calls) == 2
            # newly created stores inherit the setting (via REPRO_CACHE)
            assert get_cache("reg-c").enabled is False
        finally:
            configure(enabled=True)


class TestFingerprints:
    def test_device_fingerprint_tracks_spec(self, paper_platform):
        host = paper_platform.host
        fp = device_fingerprint(host)
        assert fp == device_fingerprint(host)
        slower = dataclasses.replace(
            host.spec, mem_bandwidth_gbs=host.spec.mem_bandwidth_gbs / 2
        )
        patched = type(host)(host.device_id, slower, host.cost_model)
        assert device_fingerprint(patched) != fp

    def test_platform_fingerprint_tracks_links(self, paper_platform):
        from repro.bench.crossover import with_link_bandwidth

        fp = platform_fingerprint(paper_platform)
        assert fp == platform_fingerprint(paper_platform)
        faster = with_link_bandwidth(paper_platform, 96.0)
        assert platform_fingerprint(faster) != fp

    def test_kernel_fingerprint_ignores_impl(self):
        program = chain_program(1, n=64)
        kernel = program.kernels[0]
        fp = kernel_fingerprint(kernel)
        patched = dataclasses.replace(kernel, impl=lambda *a, **k: None)
        assert kernel_fingerprint(patched) == fp
        recosted = dataclasses.replace(
            kernel,
            cost=dataclasses.replace(
                kernel.cost, flops_per_elem=kernel.cost.flops_per_elem + 1
            ),
        )
        assert kernel_fingerprint(recosted) != fp


class TestProfileTableCaching:
    def test_cached_seed_yields_independent_tables(self, paper_platform):
        program = chain_program(2, n=4096)
        first = build_profile_table(program, paper_platform)
        second = build_profile_table(program, paper_platform)
        assert first is not second
        assert first.rate_s_per_index == second.rate_s_per_index
        # the scheduler EWMA-mutates its copy; the memoized seed must not see it
        key = next(iter(first.rate_s_per_index))
        first.rate_s_per_index[key] *= 10.0
        third = build_profile_table(program, paper_platform)
        assert third.rate_s_per_index == second.rate_s_per_index

    def test_repeat_builds_hit_the_cache(self, paper_platform):
        program = chain_program(2, n=4096)
        build_profile_table(program, paper_platform)
        before = cache_stats()["profile-table"].hits
        build_profile_table(program, paper_platform)
        assert cache_stats()["profile-table"].hits == before + 1
