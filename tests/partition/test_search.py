"""The schedule×partition search engine (``repro.partition.search``)."""

import json

import pytest

from repro.errors import PartitioningError
from repro.partition.search import format_search, search_plan


@pytest.fixture(scope="module")
def stream_result(paper_platform_module):
    return search_plan(
        "STREAM-Loop", paper_platform_module, n=2048, iterations=4,
        grid=5, rounds=1,
    )


@pytest.fixture(scope="module")
def paper_platform_module():
    from repro.platform import shen_icpp15_platform

    return shen_icpp15_platform()


class TestSearchPlan:
    def test_best_never_worse_than_baseline(self, stream_result):
        assert (
            stream_result.best.makespan_ms
            <= stream_result.baseline.makespan_ms
        )

    def test_seeds_cover_applicable_strategies(self, stream_result):
        seeded = {
            r.candidate.strategy
            for r in stream_result.evaluated
            if r.candidate.gpu_fraction is None
            and r.candidate.task_count is None
        }
        # MK-Loop: baselines + the static MK pair + the dynamic family
        assert {"Only-CPU", "Only-GPU", "SP-Unified", "SP-Varied"} <= seeded

    def test_fraction_grid_spans_unit_interval(self, stream_result):
        fracs = sorted(
            r.candidate.gpu_fraction
            for r in stream_result.evaluated
            if r.candidate.gpu_fraction is not None
        )
        assert fracs[0] == 0.0 and fracs[-1] == 1.0
        assert len(fracs) > 5  # grid + at least one refinement round

    def test_refinement_rounds_tagged(self, stream_result):
        rounds = {r.round for r in stream_result.evaluated}
        assert 0 in rounds and 1 in rounds

    def test_no_duplicate_candidates(self, stream_result):
        keys = [
            (r.candidate.strategy, r.candidate.gpu_fraction,
             r.candidate.task_count)
            for r in stream_result.evaluated
        ]
        assert len(keys) == len(set(keys))

    def test_throughput_recorded(self, stream_result):
        assert stream_result.plans_per_sec > 0
        assert stream_result.elapsed_s > 0

    def test_mk_dag_best_not_worse_than_single_pick(
        self, paper_platform_module
    ):
        """The acceptance scenario: MK-DAG (blocked Cholesky)."""
        result = search_plan(
            "Cholesky", paper_platform_module, n=6, grid=3, rounds=1,
        )
        assert result.app_class == "MK-DAG"
        assert result.best.makespan_ms <= result.baseline.makespan_ms

    def test_fallback_counts_recorded(self, stream_result):
        # the dynamic seeds (DP-*) compile-fail and are tallied; the
        # sync-free scenario has no barriers, so no wave ever falls back
        assert stream_result.plan_compile_errors > 0
        assert stream_result.wave_fallbacks == 0

    def test_synced_app_search_drains_waves(self, paper_platform_module):
        """A per-iteration-sync search rides the wave drain end to end."""
        from repro.sim.plan import drain_stats

        before = drain_stats()["waves_drained"]
        result = search_plan(
            "HotSpot", paper_platform_module, n=1024, iterations=4,
            grid=3, rounds=1,
        )
        assert result.best.makespan_ms <= result.baseline.makespan_ms
        assert drain_stats()["waves_drained"] > before

    def test_grid_too_small_rejected(self, paper_platform_module):
        with pytest.raises(PartitioningError):
            search_plan("STREAM-Loop", paper_platform_module, n=2048, grid=1)

    def test_parallel_jobs_identical(self, paper_platform_module,
                                     stream_result):
        parallel = search_plan(
            "STREAM-Loop", paper_platform_module, n=2048, iterations=4,
            grid=5, rounds=1, jobs=2,
        )
        key = lambda rs: [
            (r.candidate, r.makespan_ms) for r in rs.evaluated
        ]
        assert key(parallel) == key(stream_result)


class TestSearchArtifact:
    def test_record_roundtrips_through_json(self, stream_result):
        record = json.loads(json.dumps(stream_result.to_record()))
        assert record["app"] == "STREAM-Loop"
        assert record["candidates"] == len(stream_result.evaluated)
        assert record["best"]["makespan_ms"] == (
            stream_result.best.makespan_ms
        )
        assert len(record["evaluated"]) == record["candidates"]
        assert record["plan_compile_errors"] == (
            stream_result.plan_compile_errors
        )
        assert record["wave_fallbacks"] == stream_result.wave_fallbacks

    def test_format_mentions_best_and_baseline(self, stream_result):
        text = format_search(stream_result)
        assert "baseline" in text and "best" in text
        assert f"{len(stream_result.evaluated)} candidates" in text
