"""Plan validation."""

import pytest

from repro.apps import all_applications, get_application
from repro.errors import PartitioningError
from repro.partition import (
    PlanConfig,
    get_strategy,
    list_strategies,
    validate_plan,
)
from repro.runtime.graph import InstanceKind

from tests.conftest import chain_program, single_kernel_program


def plan_of(strategy, program, platform, **kwargs):
    return get_strategy(strategy).plan(program, platform,
                                       PlanConfig(**kwargs))


class TestValidPlans:
    @pytest.mark.parametrize("strategy", sorted(list_strategies()))
    def test_every_strategy_produces_valid_plans(self, tiny_platform,
                                                 strategy):
        program = (
            single_kernel_program(n=10_000)
            if strategy == "SP-Single"
            else chain_program(3, n=10_000)
        )
        plan = plan_of(strategy, program, tiny_platform)
        result = validate_plan(plan, tiny_platform)
        assert result.ok, result.problems

    def test_every_application_best_plan_valid(self, paper_platform):
        from repro.core.matchmaker import match

        for app in all_applications():
            n = 4 if app.name == "Cholesky" else None
            outcome = match(app, paper_platform, n=n, execute=False)
            result = validate_plan(outcome.plan, paper_platform)
            assert result.ok, (app.name, result.problems)

    def test_multi_gpu_plan_valid(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        program = get_application("MatrixMul").program(2048)
        plan = plan_of("SP-Single", program, platform)
        assert validate_plan(plan, platform).ok


class TestInvalidPlans:
    def test_gap_detected(self, tiny_platform):
        plan = plan_of("DP-Dep", single_kernel_program(n=100), tiny_platform)
        doomed = [
            i for i in plan.graph.instances
            if i.kind is InstanceKind.COMPUTE
        ][1]
        doomed.lo += 5
        result = validate_plan(plan, tiny_platform)
        assert not result.ok
        assert any("gap" in p for p in result.problems)

    def test_overlap_detected(self, tiny_platform):
        plan = plan_of("DP-Dep", single_kernel_program(n=100), tiny_platform)
        inst = [
            i for i in plan.graph.instances
            if i.kind is InstanceKind.COMPUTE
        ][0]
        inst.hi += 3
        result = validate_plan(plan, tiny_platform)
        assert any("overlap" in p for p in result.problems)

    def test_unknown_resource_detected(self, tiny_platform):
        plan = plan_of("SP-Single", single_kernel_program(n=10_000),
                       tiny_platform)
        pinned = next(
            i for i in plan.graph.instances if i.pinned_resource
        )
        pinned.pinned_resource = "cpu:99"
        result = validate_plan(plan, tiny_platform)
        assert any("unknown resource" in p for p in result.problems)

    def test_unknown_device_detected(self, tiny_platform):
        plan = plan_of("SP-Single", single_kernel_program(n=10_000),
                       tiny_platform)
        pinned = next(i for i in plan.graph.instances if i.pinned_device)
        pinned.pinned_device = "gpu7"
        result = validate_plan(plan, tiny_platform)
        assert any("unknown device" in p for p in result.problems)

    def test_unpinned_static_detected(self, tiny_platform):
        plan = plan_of("SP-Single", single_kernel_program(n=10_000),
                       tiny_platform)
        pinned = next(i for i in plan.graph.instances if i.pinned_resource)
        pinned.pinned_resource = None
        result = validate_plan(plan, tiny_platform)
        assert any("unpinned" in p for p in result.problems)

    def test_missing_barrier_detected(self, tiny_platform):
        plan = plan_of(
            "DP-Dep", single_kernel_program(n=100, iterations=2, sync=True),
            tiny_platform,
        )
        plan.graph.instances = [
            i for i in plan.graph.instances if not i.is_barrier
        ]
        result = validate_plan(plan, tiny_platform)
        assert any("taskwait" in p for p in result.problems)

    def test_raise_if_invalid(self, tiny_platform):
        plan = plan_of("DP-Dep", single_kernel_program(n=100), tiny_platform)
        plan.graph.instances[0].hi += 1
        with pytest.raises(PartitioningError):
            validate_plan(plan, tiny_platform).raise_if_invalid()

    def test_cycle_detected(self, tiny_platform):
        plan = plan_of("DP-Dep", chain_program(2, n=100), tiny_platform)
        a, b = plan.graph.instances[0], plan.graph.instances[1]
        a.deps.add(b.instance_id)
        b.succs.add(a.instance_id)
        b.deps.add(a.instance_id)
        a.succs.add(b.instance_id)
        result = validate_plan(plan, tiny_platform)
        assert any("cycle" in p for p in result.problems)
