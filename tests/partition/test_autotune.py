"""Task-size auto-tuning (paper §V)."""

import pytest

from repro.errors import PartitioningError
from repro.partition import DPPerf, SPSingle, autotune_task_count
from repro.partition.autotune import AutotuneResult

from tests.conftest import single_kernel_program


class TestAutotune:
    def test_sweeps_requested_multipliers(self, tiny_platform):
        program = single_kernel_program(n=100_000, flops=50.0, mem_bytes=0.0)
        result = autotune_task_count(
            DPPerf(), program, tiny_platform, multipliers=(1, 2, 4)
        )
        assert set(result.sweep) == {4, 8, 16}  # 4 threads x multipliers

    def test_best_is_minimum(self, tiny_platform):
        program = single_kernel_program(n=100_000, flops=50.0, mem_bytes=0.0)
        result = autotune_task_count(
            DPPerf(), program, tiny_platform, multipliers=(1, 2, 4, 8)
        )
        assert result.best_makespan_s == min(result.sweep.values())
        assert result.sweep[result.best_task_count] == result.best_makespan_s

    def test_speedup_over_worst(self, tiny_platform):
        program = single_kernel_program(n=100_000, flops=50.0, mem_bytes=0.0)
        result = autotune_task_count(
            DPPerf(), program, tiny_platform, multipliers=(1, 8)
        )
        assert result.speedup_over_worst >= 1.0

    def test_task_size_matters(self, tiny_platform):
        # with per-decision overhead, more chunks must cost more once the
        # workload is fully GPU-resident
        program = single_kernel_program(n=1_000_000, flops=500.0, mem_bytes=0.0)
        result = autotune_task_count(
            DPPerf(), program, tiny_platform, multipliers=(1, 16)
        )
        assert result.sweep[4] != result.sweep[64]

    def test_rejects_static_strategy(self, tiny_platform):
        program = single_kernel_program(n=1000)
        with pytest.raises(PartitioningError):
            autotune_task_count(SPSingle(), program, tiny_platform)

    def test_rejects_empty_multipliers(self, tiny_platform):
        program = single_kernel_program(n=1000)
        with pytest.raises(PartitioningError):
            autotune_task_count(DPPerf(), program, tiny_platform,
                                multipliers=())

    def test_rejects_nonpositive_multiplier(self, tiny_platform):
        program = single_kernel_program(n=1000)
        with pytest.raises(PartitioningError):
            autotune_task_count(DPPerf(), program, tiny_platform,
                                multipliers=(0,))

    def test_result_type(self, tiny_platform):
        program = single_kernel_program(n=10_000)
        result = autotune_task_count(DPPerf(), program, tiny_platform,
                                     multipliers=(1,))
        assert isinstance(result, AutotuneResult)
