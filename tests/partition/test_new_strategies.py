"""DP-Aff and HYB-Static: plan structure, determinism, backend parity."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.errors import PartitioningError, StrategyInapplicableError
from repro.partition import DPAff, HYBStatic, PlanConfig, run_plan
from repro.partition.base import strategies_for_class
from repro.partition.hyb_static import split_static_tail
from repro.platform.presets import dual_gpu_platform
from repro.runtime.graph import InstanceKind

from tests.conftest import chain_program, single_kernel_program


def _computes(plan):
    return [i for i in plan.graph.instances if i.kind is InstanceKind.COMPUTE]


def _covers_exactly(instances, n):
    ranges = sorted((i.lo, i.hi) for i in instances)
    assert ranges[0][0] == 0 and ranges[-1][1] == n
    for (_, b), (c, _) in zip(ranges, ranges[1:]):
        assert b == c, f"gap or overlap at {b} vs {c}"


class TestDPAff:
    def test_all_instances_unpinned(self, tiny_platform):
        program = single_kernel_program(n=10_000, flops=50.0, mem_bytes=8.0)
        plan = DPAff().plan(program, tiny_platform, PlanConfig(task_count=8))
        computes = _computes(plan)
        assert len(computes) == 8
        assert all(not i.pinned_device and not i.pinned_resource
                   for i in computes)
        assert plan.scheduler.name == "affinity"
        assert plan.scheduler.dynamic
        _covers_exactly(computes, 10_000)

    def test_runs_deterministically(self, tiny_platform):
        program = chain_program(n=4_096)
        first = run_plan(DPAff().plan(program, tiny_platform), tiny_platform)
        second = run_plan(DPAff().plan(program, tiny_platform), tiny_platform)
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_applies_to_every_class(self):
        for label in ("SK-One", "SK-Loop", "MK-Seq", "MK-Loop", "MK-DAG"):
            assert "DP-Aff" in strategies_for_class(label)


class TestHYBStatic:
    def test_mixes_pinned_body_with_unpinned_tail(self, tiny_platform):
        program = single_kernel_program(n=10_000, flops=50.0, mem_bytes=0.0)
        plan = HYBStatic(tail_fraction=0.2).plan(
            program, tiny_platform, PlanConfig(cpu_threads=4)
        )
        computes = _computes(plan)
        gpu_body = [i for i in computes if i.pinned_device]
        cpu_body = [i for i in computes if i.pinned_resource]
        tail = [i for i in computes
                if not i.pinned_device and not i.pinned_resource]
        assert len(gpu_body) <= 1  # one fused GPU task (none if ONLY_CPU)
        assert tail, "no dynamic tail emitted"
        assert plan.scheduler.name == "perf-aware"
        _covers_exactly(computes, 10_000)
        # the tail straddles the split point: between the static bodies
        if gpu_body:
            assert min(i.lo for i in tail) >= gpu_body[0].hi
        if cpu_body:
            assert max(i.hi for i in tail) <= min(i.lo for i in cpu_body)

    def test_tail_fraction_bounds_the_dynamic_share(self, tiny_platform):
        program = single_kernel_program(n=100_000, flops=50.0, mem_bytes=0.0)
        plan = HYBStatic(tail_fraction=0.2).plan(program, tiny_platform)
        computes = _computes(plan)
        tail = sum(i.hi - i.lo for i in computes
                   if not i.pinned_device and not i.pinned_resource)
        # ~20% held back, plus warp rounding moved from the GPU body
        assert 0.1 <= tail / 100_000 <= 0.35

    def test_invalid_tail_fraction_rejected(self):
        with pytest.raises(PartitioningError):
            HYBStatic(tail_fraction=0.0)
        with pytest.raises(PartitioningError):
            HYBStatic(tail_fraction=1.0)

    def test_not_registered_for_dag(self):
        assert "HYB-Static" not in strategies_for_class("MK-DAG")

    def test_multi_accelerator_inapplicable(self):
        program = single_kernel_program(n=4_096, flops=50.0, mem_bytes=8.0)
        with pytest.raises(StrategyInapplicableError):
            HYBStatic().plan(program, dual_gpu_platform())

    def test_runs_deterministically(self, tiny_platform):
        program = chain_program(n=4_096)
        first = run_plan(HYBStatic().plan(program, tiny_platform), tiny_platform)
        second = run_plan(HYBStatic().plan(program, tiny_platform), tiny_platform)
        assert pickle.dumps(first) == pickle.dumps(second)


class TestSplitStaticTail:
    def test_straddles_the_predicted_split(self):
        gpu_pin, cpu_lo = split_static_tail(
            1000, 600, tail_fraction=0.2, warp_size=32
        )
        assert 0 <= gpu_pin <= 600 <= cpu_lo <= 1000
        assert gpu_pin % 32 == 0

    def test_degenerate_shares(self):
        assert split_static_tail(1000, 0, tail_fraction=0.2, warp_size=32) == (
            0, 200,
        )
        gpu_pin, cpu_lo = split_static_tail(
            1000, 1000, tail_fraction=0.2, warp_size=32
        )
        assert cpu_lo == 1000 and gpu_pin < 1000

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitioningError):
            split_static_tail(100, 200, tail_fraction=0.2, warp_size=32)
        with pytest.raises(PartitioningError):
            split_static_tail(100, 50, tail_fraction=1.5, warp_size=32)


#: cells exercised by the backend-parity matrix below
_PARITY_SCRIPT = r"""
import hashlib, pickle, sys
from repro.bench.harness import SweepCell, run_sweep
from repro.platform.presets import shen_icpp15_platform

plat = shen_icpp15_platform()
cells = [
    SweepCell(app="Nbody", strategy="DP-Aff", platform=plat, n=8192,
              iterations=3),
    SweepCell(app="STREAM-Seq", strategy="HYB-Static", platform=plat, n=65536),
]
mode = sys.argv[1]
proc = None
if mode == "workers":
    import os, subprocess, tempfile, time
    tmp = tempfile.mkdtemp()
    ready = os.path.join(tmp, "w.ready")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker",
         "--listen", "127.0.0.1:0", "--ready-file", ready],
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    endpoint = ""
    while time.monotonic() < deadline and not endpoint:
        if os.path.exists(ready):
            endpoint = open(ready).read().strip()
        time.sleep(0.05)
    assert endpoint, "worker never became ready"
    kwargs = {"workers": [endpoint]}
else:
    kwargs = {"jobs": 2, "fuse": 2} if mode == "fuse" else (
        {"jobs": 2} if mode == "jobs" else {}
    )
try:
    for artifact in run_sweep(cells, **kwargs):
        print(hashlib.sha256(pickle.dumps(artifact)).hexdigest())
finally:
    if proc is not None:
        proc.terminate()
"""


def _parity_run(mode: str, extra_env: dict | None = None) -> str:
    env = dict(os.environ, **(extra_env or {}))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _PARITY_SCRIPT, mode],
        capture_output=True, text=True, env=env, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestBackendParity:
    """New strategies must pickle byte-identically on every backend."""

    def test_serial_jobs_fuse_and_oracle_agree(self):
        serial = _parity_run("serial")
        assert serial.strip(), "no artifacts hashed"
        assert _parity_run("jobs") == serial
        assert _parity_run("fuse") == serial
        assert _parity_run(
            "serial", {"REPRO_NO_FAST_ENGINE": "1"}
        ) == serial

    def test_socket_workers_agree(self):
        assert _parity_run("workers") == _parity_run("serial")
