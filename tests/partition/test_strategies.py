"""The five strategies + baselines: plan structure and applicability."""

import pytest

from repro.errors import SchedulingError, StrategyInapplicableError
from repro.partition import (
    DPDep,
    DPPerf,
    OnlyCPU,
    OnlyGPU,
    PlanConfig,
    SPSingle,
    SPUnified,
    SPVaried,
    get_strategy,
    list_strategies,
    run_plan,
)
from repro.partition.base import has_inter_kernel_sync
from repro.runtime.graph import InstanceKind

from tests.conftest import chain_program, single_kernel_program


class TestRegistry:
    def test_all_registered(self):
        assert set(list_strategies()) == {
            "SP-Single", "SP-Unified", "SP-Varied",
            "DP-Perf", "DP-Dep", "DP-Guided", "DP-Aff", "HYB-Static",
            "Only-CPU", "Only-GPU",
        }

    def test_get_by_name(self):
        assert isinstance(get_strategy("SP-Single"), SPSingle)

    def test_unknown_name(self):
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError):
            get_strategy("SP-Magic")

    def test_unknown_name_suggests_closest(self):
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError) as exc:
            get_strategy("SP-Signle")
        assert "did you mean 'SP-Single'?" in str(exc.value)

    def test_hopeless_typo_gets_no_suggestion(self):
        from repro.errors import PartitioningError

        with pytest.raises(PartitioningError) as exc:
            get_strategy("zzzzzz")
        assert "did you mean" not in str(exc.value)
        assert "known:" in str(exc.value)


class TestSPSingle:
    def test_single_gpu_task_m_cpu_tasks(self, tiny_platform):
        program = single_kernel_program(n=10_000, flops=50.0, mem_bytes=0.0)
        plan = SPSingle().plan(program, tiny_platform, PlanConfig(cpu_threads=4))
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        gpu = [i for i in computes if i.pinned_device == "gpu0"]
        cpu = [i for i in computes if i.pinned_resource]
        assert len(gpu) == 1
        assert len(cpu) == 4
        assert {i.pinned_resource for i in cpu} == {
            "cpu:0", "cpu:1", "cpu:2", "cpu:3"
        }

    def test_split_covers_whole_problem(self, tiny_platform):
        program = single_kernel_program(n=10_000, flops=50.0, mem_bytes=0.0)
        plan = SPSingle().plan(program, tiny_platform, PlanConfig())
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        assert sum(i.size for i in computes) == 10_000

    def test_rejects_multi_kernel(self, tiny_platform):
        with pytest.raises(StrategyInapplicableError):
            SPSingle().plan(chain_program(2), tiny_platform, PlanConfig())

    def test_loop_reuses_one_partitioning(self, tiny_platform):
        program = single_kernel_program(
            n=10_000, iterations=3, flops=50.0, mem_bytes=0.0
        )
        plan = SPSingle().plan(program, tiny_platform, PlanConfig())
        splits = set()
        for inst in plan.graph.instances:
            if inst.kind is InstanceKind.COMPUTE and inst.pinned_device:
                splits.add((inst.lo, inst.hi))
        assert len(splits) == 1  # same GPU range every iteration

    def test_decision_reported(self, tiny_platform):
        program = single_kernel_program(n=10_000, flops=50.0, mem_bytes=0.0)
        plan = SPSingle().plan(program, tiny_platform, PlanConfig())
        assert plan.decision.strategy == "SP-Single"
        assert "k" in plan.decision.gpu_fraction_by_kernel
        assert "relative_capability" in plan.decision.notes


class TestSPUnified:
    def test_same_split_for_all_kernels(self, tiny_platform):
        program = chain_program(3, n=10_000)
        plan = SPUnified().plan(program, tiny_platform, PlanConfig())
        fractions = set(plan.decision.gpu_fraction_by_kernel.values())
        assert len(fractions) == 1

    def test_preserves_program_sync(self, tiny_platform):
        synced = chain_program(3, n=10_000, sync=True)
        plan = SPUnified().plan(synced, tiny_platform, PlanConfig())
        barriers = [i for i in plan.graph.instances if i.is_barrier]
        assert len(barriers) == 3

    def test_rejects_single_kernel(self, tiny_platform):
        with pytest.raises(StrategyInapplicableError):
            SPUnified().plan(
                single_kernel_program(n=100), tiny_platform, PlanConfig()
            )

    def test_single_boundary_transfers_when_unsynced(self, tiny_platform):
        # data stays on the device between kernels: H2D for the chain head
        # only, D2H at the end
        program = chain_program(3, n=100_000)
        plan = SPUnified().plan(program, tiny_platform, PlanConfig(cpu_threads=4))
        result = run_plan(plan, tiny_platform)
        h2d = [t for t in result.trace.by_category("transfer")
               if t.meta["direction"] == "h2d"]
        arrays_moved_in = {t.meta["array"] for t in h2d}
        assert arrays_moved_in == {"x0"}  # only the first kernel's input


class TestSPVaried:
    def test_forces_sync_between_kernels(self, tiny_platform):
        program = chain_program(3, n=10_000)  # no sync declared
        assert not has_inter_kernel_sync(program)
        plan = SPVaried().plan(program, tiny_platform, PlanConfig())
        barriers = [i for i in plan.graph.instances if i.is_barrier]
        assert len(barriers) == 3

    def test_per_kernel_splits_may_differ(self, tiny_platform):
        # kernels with very different intensity get different splits
        from repro.runtime.graph import KernelInvocation, Program
        from tests.conftest import make_kernel

        k0, specs = make_kernel("k0", reads=("a",), writes=("b",),
                                flops=500.0, mem_bytes=0.0, n=10_000)
        k1, specs = make_kernel("k1", arrays=specs, reads=("b",), writes=("c",),
                                flops=0.1, mem_bytes=8.0, n=10_000)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=k0, n=10_000),
                KernelInvocation(invocation_id=1, kernel=k1, n=10_000),
            ],
            arrays=specs,
        )
        plan = SPVaried().plan(program, tiny_platform, PlanConfig())
        fracs = plan.decision.gpu_fraction_by_kernel
        assert fracs["k0"] > fracs["k1"]

    def test_rejects_single_kernel(self, tiny_platform):
        with pytest.raises(StrategyInapplicableError):
            SPVaried().plan(
                single_kernel_program(n=100), tiny_platform, PlanConfig()
            )


class TestDynamicStrategies:
    @pytest.mark.parametrize("cls", [DPDep, DPPerf])
    def test_m_unpinned_instances_per_invocation(self, tiny_platform, cls):
        program = chain_program(2, n=10_000)
        plan = cls().plan(program, tiny_platform, PlanConfig(cpu_threads=4))
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        assert len(computes) == 8  # 2 kernels x 4 chunks
        assert all(i.pinned_device is None and i.pinned_resource is None
                   for i in computes)

    @pytest.mark.parametrize("cls", [DPDep, DPPerf])
    def test_task_count_override(self, tiny_platform, cls):
        program = single_kernel_program(n=10_000)
        plan = cls().plan(
            program, tiny_platform, PlanConfig(cpu_threads=4, task_count=16)
        )
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        assert len(computes) == 16

    def test_dp_perf_carries_profile(self, tiny_platform):
        program = single_kernel_program(n=10_000)
        plan = DPPerf().plan(program, tiny_platform, PlanConfig())
        assert plan.decision.notes["profile"].get("k", "gpu0") is not None

    @pytest.mark.parametrize("cls", [DPDep, DPPerf])
    def test_applicable_to_any_class(self, tiny_platform, cls):
        for program in (single_kernel_program(n=1000), chain_program(3)):
            plan = cls().plan(program, tiny_platform, PlanConfig())
            assert plan.graph.instances


class TestBaselines:
    def test_only_cpu_uses_no_gpu(self, tiny_platform):
        program = chain_program(2, n=10_000)
        result = OnlyCPU().run(program, tiny_platform)
        assert result.gpu_fraction == 0.0
        assert result.transfer_bytes == {"h2d": 0, "d2h": 0}

    def test_only_gpu_uses_no_cpu(self, tiny_platform):
        program = chain_program(2, n=10_000)
        result = OnlyGPU().run(program, tiny_platform)
        assert result.gpu_fraction == 1.0

    def test_only_gpu_zeroes_runtime_overheads(self, tiny_platform):
        program = single_kernel_program(n=10_000)
        plan = OnlyGPU().plan(program, tiny_platform, PlanConfig())
        assert plan.runtime_overrides["barrier_overhead_s"] == 0.0
        assert plan.runtime_overrides["task_creation_overhead_s"] == 0.0

    def test_only_gpu_honours_program_sync(self, tiny_platform):
        program = single_kernel_program(n=10_000, iterations=2, sync=True)
        plan = OnlyGPU().plan(program, tiny_platform, PlanConfig())
        assert sum(1 for i in plan.graph.instances if i.is_barrier) == 2

    def test_only_cpu_round_robin_pinning(self, tiny_platform):
        program = single_kernel_program(n=10_000)
        plan = OnlyCPU().plan(program, tiny_platform, PlanConfig(cpu_threads=4))
        pins = [i.pinned_resource for i in plan.graph.instances
                if i.kind is InstanceKind.COMPUTE]
        assert pins == ["cpu:0", "cpu:1", "cpu:2", "cpu:3"]
