"""The Glinda partitioning model: analytics, rounding, decision step."""

import pytest

from repro.errors import PartitioningError
from repro.partition.glinda import (
    GlindaModel,
    HardwareConfig,
    TransferModel,
)
from repro.platform.interconnect import Link

LINK = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)


def predict(theta_gpu, theta_cpu, *, n=10_000, transfer=TransferModel(),
            model=None):
    model = model or GlindaModel(warp_size=1, gpu_only_threshold=0.999,
                                 cpu_only_threshold=0.001)
    return model.predict(
        kernel="k", n=n, theta_gpu=theta_gpu, theta_cpu=theta_cpu,
        link=LINK, transfer=transfer,
    )


class TestOptimalSplit:
    def test_no_transfers_split_by_throughput_ratio(self):
        # r = 3: beta* = r / (r + 1) = 0.75
        d = predict(3e6, 1e6)
        assert d.gpu_fraction == pytest.approx(0.75, abs=1e-4)

    def test_equal_devices_split_in_half(self):
        d = predict(1e6, 1e6)
        assert d.gpu_fraction == pytest.approx(0.5, abs=1e-4)

    def test_transfers_shift_work_to_cpu(self):
        base = predict(3e6, 1e6)
        with_tx = predict(3e6, 1e6,
                          transfer=TransferModel(gpu_share_b=1000.0))
        assert with_tx.gpu_fraction < base.gpu_fraction

    def test_metric_formula_beta_r_over_r_plus_1_plus_g(self):
        # beta* = r / (r + 1 + g) with q = D = 0
        theta_g, theta_c, p = 4e6, 1e6, 500.0
        d = predict(theta_g, theta_c, transfer=TransferModel(gpu_share_b=p))
        r = theta_g / theta_c
        g = theta_g * p / LINK.bandwidth
        assert d.gpu_fraction == pytest.approx(r / (r + 1 + g), abs=1e-3)

    def test_fixed_bytes_reduce_gpu_share(self):
        base = predict(3e6, 1e6)
        with_fixed = predict(3e6, 1e6,
                             transfer=TransferModel(fixed_b=1e9))
        assert with_fixed.gpu_fraction < base.gpu_fraction

    def test_metrics_reported(self):
        d = predict(4e6, 1e6, transfer=TransferModel(gpu_share_b=100.0))
        assert d.metrics.relative_capability == pytest.approx(4.0)
        assert d.metrics.compute_transfer_gap == pytest.approx(
            4e6 * 100.0 / 10e9
        )

    def test_perfect_overlap_at_predicted_split(self):
        # T_gpu(n_g*) == T_cpu(n_g*) by construction
        theta_g, theta_c = 5e6, 2e6
        transfer = TransferModel(gpu_share_b=200.0, fixed_b=1e6)
        d = predict(theta_g, theta_c, transfer=transfer)
        t_gpu = d.n_gpu / theta_g + transfer.bytes_for(d.n_gpu, d.n) / LINK.bandwidth
        t_cpu = d.n_cpu / theta_c
        assert t_gpu == pytest.approx(t_cpu, rel=1e-2)

    def test_split_partitions_exactly(self):
        d = predict(3.7e6, 1.3e6)
        assert d.n_gpu + d.n_cpu == d.n


class TestWarpRounding:
    def test_gpu_share_rounded_up_to_warp(self):
        model = GlindaModel(warp_size=32, gpu_only_threshold=0.999,
                            cpu_only_threshold=0.001)
        d = predict(3e6, 1e6, n=1000, model=model)
        assert d.n_gpu % 32 == 0
        assert d.n_gpu >= 0.75 * 1000  # rounded UP

    def test_rounding_never_exceeds_n(self):
        model = GlindaModel(warp_size=512, gpu_only_threshold=0.999,
                            cpu_only_threshold=0.001)
        d = predict(100e6, 1e3, n=600, model=model)
        assert d.n_gpu <= 600


class TestHardwareConfigDecision:
    def test_only_gpu_when_cpu_share_negligible(self):
        model = GlindaModel(gpu_only_threshold=0.95)
        d = predict(100e6, 1e6, model=model)
        assert d.config is HardwareConfig.ONLY_GPU
        assert d.n_cpu == 0

    def test_only_cpu_when_gpu_share_negligible(self):
        model = GlindaModel(cpu_only_threshold=0.05)
        d = predict(
            1e6, 1e6,
            transfer=TransferModel(gpu_share_b=1_000_000.0),
            model=model,
        )
        assert d.config is HardwareConfig.ONLY_CPU
        assert d.n_gpu == 0

    def test_partition_between_thresholds(self):
        model = GlindaModel()
        d = predict(3e6, 1e6, model=model)
        assert d.config is HardwareConfig.CPU_GPU
        assert d.n_gpu > 0 and d.n_cpu > 0

    def test_negative_model_optimum_clamps_to_only_cpu(self):
        # a huge fixed transfer makes any GPU use counterproductive
        d = predict(
            1e6, 1e6,
            transfer=TransferModel(fixed_b=1e12),
            model=GlindaModel(),
        )
        assert d.config is HardwareConfig.ONLY_CPU


class TestPredictedTime:
    def test_zero_gpu_is_pure_cpu_time(self):
        t = GlindaModel.predicted_time(
            n=1000, n_gpu=0, theta_gpu=1e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(fixed_b=1e9),
        )
        assert t == pytest.approx(1000 / 1e6)

    def test_all_gpu_includes_transfers(self):
        t = GlindaModel.predicted_time(
            n=1000, n_gpu=1000, theta_gpu=1e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(gpu_share_b=10.0),
        )
        assert t == pytest.approx(1000 / 1e6 + 10_000 / 10e9)

    def test_invalid_split_rejected(self):
        with pytest.raises(PartitioningError):
            GlindaModel.predicted_time(
                n=10, n_gpu=11, theta_gpu=1e6, theta_cpu=1e6, link=LINK,
                transfer=TransferModel(),
            )


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(PartitioningError):
            predict(1e6, 1e6, n=0)

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(PartitioningError):
            predict(0.0, 1e6)
        with pytest.raises(PartitioningError):
            predict(1e6, -1.0)
