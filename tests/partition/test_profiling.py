"""Kernel profiling (Glinda step 2 + DP-Perf seeding)."""

import pytest

from repro.errors import PartitioningError
from repro.partition.profiling import (
    build_profile_table,
    profile_kernel,
    transfer_footprint,
)

from tests.conftest import chain_program, make_kernel, single_kernel_program


class TestTransferFootprint:
    def test_partitioned_in_out_split(self):
        kernel, _ = make_kernel(reads=("x",), writes=("y",), n=100)
        total, inp, out, full = transfer_footprint(kernel)
        assert (total, inp, out, full) == (8.0, 4.0, 4.0, 0)

    def test_full_reads_counted_whole(self):
        kernel, _ = make_kernel(
            reads=("x",), writes=("y",), full_reads=("z",), n=100
        )
        total, inp, out, full = transfer_footprint(kernel)
        assert full == 400  # the whole z array
        assert total == 8.0  # partitioned only

    def test_elems_per_index_scales(self):
        kernel, _ = make_kernel(
            reads=("x",), writes=("y",), n=10, elems_per_index=16
        )
        total, inp, out, _ = transfer_footprint(kernel)
        assert inp == 64.0 and out == 64.0


class TestProfileKernel:
    def test_throughputs_match_device_model(self, tiny_platform):
        kernel, _ = make_kernel(flops=2.0, mem_bytes=0.0, n=100_000)
        profile = profile_kernel(kernel, tiny_platform, 100_000)
        # tiny platform: CPU 100 GFLOPS, GPU 1000 GFLOPS, eff 1.0
        assert profile.cpu_throughput == pytest.approx(50e9, rel=1e-6)
        assert profile.gpu_throughput == pytest.approx(500e9, rel=1e-6)

    def test_footprint_fields(self, tiny_platform):
        kernel, _ = make_kernel(full_reads=("z",), n=1000)
        profile = profile_kernel(kernel, tiny_platform, 1000)
        assert profile.partitioned_bytes_per_index == 8.0
        assert profile.full_bytes == 4000

    def test_rejects_nonpositive_size(self, tiny_platform):
        kernel, _ = make_kernel()
        with pytest.raises(PartitioningError):
            profile_kernel(kernel, tiny_platform, 0)


class TestBuildProfileTable:
    def test_rates_for_every_kernel_device_pair(self, tiny_platform):
        program = chain_program(3, n=10_000)
        table = build_profile_table(program, tiny_platform)
        for kernel in ("k0", "k1", "k2"):
            assert table.get(kernel, "cpu") is not None
            assert table.get(kernel, "gpu0") is not None

    def test_transfer_cost_from_link(self, tiny_platform):
        program = single_kernel_program(n=10_000)
        table = build_profile_table(program, tiny_platform)
        assert table.transfer_s_per_byte["gpu0"] == pytest.approx(1e-10)

    def test_rates_are_seconds_per_index(self, tiny_platform):
        program = single_kernel_program(n=100_000, flops=2.0, mem_bytes=0.0)
        table = build_profile_table(program, tiny_platform)
        assert table.get("k", "cpu") == pytest.approx(1 / 50e9, rel=1e-6)
