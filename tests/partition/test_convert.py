"""The dynamic-behaves-like-static conversion (paper §V)."""

import pytest

from repro.errors import PartitioningError
from repro.partition import (
    PlanConfig,
    SPSingle,
    dynamic_as_static_plan,
    run_plan,
    static_assignment_counts,
)
from repro.runtime.graph import InstanceKind

from tests.conftest import single_kernel_program


class TestAssignmentCounts:
    def test_exact_ratio(self):
        counts = static_assignment_counts(0.25, 12)
        assert counts.gpu_instances == 3
        assert counts.cpu_instances == 9
        assert counts.gpu_fraction == pytest.approx(0.25)

    def test_rounding_to_nearest(self):
        assert static_assignment_counts(0.9, 12).gpu_instances == 11
        assert static_assignment_counts(0.99, 12).gpu_instances == 12

    def test_extremes(self):
        assert static_assignment_counts(0.0, 8).gpu_instances == 0
        assert static_assignment_counts(1.0, 8).cpu_instances == 0

    def test_validation(self):
        with pytest.raises(PartitioningError):
            static_assignment_counts(1.5, 8)
        with pytest.raises(PartitioningError):
            static_assignment_counts(0.5, 0)


class TestDynamicAsStaticPlan:
    def test_pins_follow_counts(self, tiny_platform):
        program = single_kernel_program(n=12_000)
        plan = dynamic_as_static_plan(
            program, tiny_platform, 0.5, config=PlanConfig(cpu_threads=4)
        )
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        gpu = [i for i in computes if i.pinned_device == "gpu0"]
        cpu = [i for i in computes if i.pinned_resource]
        assert len(gpu) == 2 and len(cpu) == 2  # 4 chunks, 50/50

    def test_runs_and_matches_ratio(self, tiny_platform):
        program = single_kernel_program(n=12_000, flops=50.0, mem_bytes=0.0)
        plan = dynamic_as_static_plan(
            program, tiny_platform, 0.75, config=PlanConfig(cpu_threads=4)
        )
        result = run_plan(plan, tiny_platform)
        assert result.gpu_fraction == pytest.approx(0.75)

    def test_close_to_optimal_static(self, tiny_platform):
        # converting SP-Single's ratio through task counts lands close to
        # SP-Single itself (the paper's "close-to-optimal partitioning
        # with minimal manual effort")
        program = single_kernel_program(n=1_000_000, flops=50.0, mem_bytes=0.0)
        config = PlanConfig(cpu_threads=4, task_count=16)
        sp = SPSingle().plan(program, tiny_platform, config)
        ratio = next(iter(sp.decision.gpu_fraction_by_kernel.values()))
        t_static = run_plan(sp, tiny_platform).makespan_s
        converted = dynamic_as_static_plan(
            program, tiny_platform, ratio, config=config
        )
        t_converted = run_plan(converted, tiny_platform).makespan_s
        assert t_converted <= t_static * 1.25
