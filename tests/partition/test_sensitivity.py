"""Glinda prediction robustness under profiling error."""

import pytest

from repro.errors import PartitioningError
from repro.partition.glinda import GlindaModel, TransferModel
from repro.partition.sensitivity import (
    format_sensitivity,
    profiling_sensitivity,
)
from repro.platform.interconnect import Link

LINK = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)


def sweep(**kwargs):
    defaults = dict(
        n=1_000_000,
        theta_gpu=4e8,
        theta_cpu=1e8,
        link=LINK,
        transfer=TransferModel(gpu_share_b=8.0),
        model=GlindaModel(gpu_only_threshold=0.999,
                          cpu_only_threshold=0.001),
    )
    defaults.update(kwargs)
    return profiling_sensitivity(**defaults)


class TestSensitivity:
    def test_zero_regret_at_truth(self):
        report = sweep(errors=(1e-9,))
        assert report.max_regret < 1e-3

    def test_regret_nonnegative_everywhere(self):
        report = sweep()
        for p in report.points:
            assert p.regret >= -1e-9  # the true optimum is optimal

    def test_overestimating_gpu_oversizes_its_share(self):
        report = sweep(errors=(0.3,))
        gpu_over = next(p for p in report.points if p.gpu_error > 0)
        assert gpu_over.predicted_fraction > report.optimal_fraction

    def test_underestimating_gpu_undersizes_its_share(self):
        report = sweep(errors=(-0.3,))
        gpu_under = next(p for p in report.points if p.gpu_error < 0)
        assert gpu_under.predicted_fraction < report.optimal_fraction

    def test_prediction_is_robust(self):
        """The paper's profiling is 'low-cost' because it can afford to be
        imprecise: 20% throughput error costs well under 20% time."""
        report = sweep(errors=(-0.2, 0.2))
        assert report.max_regret < 0.20

    def test_regret_grows_with_error(self):
        small = sweep(errors=(0.1,)).max_regret
        large = sweep(errors=(0.3,)).max_regret
        assert large >= small

    def test_worst_point_is_max_regret(self):
        report = sweep()
        assert report.worst().regret == report.max_regret

    def test_format(self):
        text = format_sensitivity(sweep(errors=(0.2,)))
        assert "regret" in text and "%" in text

    def test_requires_perturbations(self):
        with pytest.raises(PartitioningError):
            sweep(errors=())
