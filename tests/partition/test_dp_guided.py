"""DP-Guided (adaptive chunking, related work [11])."""

import pytest

from repro.errors import PartitioningError
from repro.partition import DPGuided, PlanConfig, get_strategy
from repro.partition.dp_guided import geometric_chunks
from repro.runtime.graph import InstanceKind

from tests.conftest import single_kernel_program


class TestGeometricChunks:
    def test_partitions_exactly(self):
        for n in (100, 1000, 12345):
            chunks = geometric_chunks(n, initial=10, growth=1.5)
            assert chunks[0][0] == 0 and chunks[-1][1] == n
            for (a, b), (c, _) in zip(chunks, chunks[1:]):
                assert b == c

    def test_sizes_grow(self):
        chunks = geometric_chunks(10_000, initial=100, growth=2.0)
        sizes = [hi - lo for lo, hi in chunks]
        # growing until the cap kicks in
        head = sizes[:3]
        assert head == sorted(head)
        assert head[1] >= 2 * head[0] * 0.99

    def test_cap_limits_chunk_size(self):
        chunks = geometric_chunks(10_000, initial=10, growth=4.0,
                                  cap_fraction=0.1)
        sizes = [hi - lo for lo, hi in chunks[:-1]]  # final absorbs tail
        assert max(sizes) <= 1000

    def test_no_dust_tail(self):
        chunks = geometric_chunks(1001, initial=100, growth=2.0)
        assert chunks[-1][1] - chunks[-1][0] >= 50

    def test_validation(self):
        with pytest.raises(PartitioningError):
            geometric_chunks(0, initial=10, growth=2.0)
        with pytest.raises(PartitioningError):
            geometric_chunks(100, initial=0, growth=2.0)
        with pytest.raises(PartitioningError):
            geometric_chunks(100, initial=10, growth=0.5)


class TestDPGuided:
    def test_registered(self):
        assert isinstance(get_strategy("DP-Guided"), DPGuided)

    def test_chunks_unpinned_and_growing(self, tiny_platform):
        program = single_kernel_program(n=100_000)
        plan = DPGuided().plan(program, tiny_platform, PlanConfig())
        computes = [i for i in plan.graph.instances
                    if i.kind is InstanceKind.COMPUTE]
        assert all(i.pinned_device is None for i in computes)
        sizes = [i.size for i in computes]
        assert sizes[1] > sizes[0]

    def test_constructor_validation(self):
        with pytest.raises(PartitioningError):
            DPGuided(growth=0.9)
        with pytest.raises(PartitioningError):
            DPGuided(probes_per_thread=0)

    def test_self_scheduling_balances_capability(self, tiny_platform):
        # unlike fixed-size DP-Dep, the fast device comes back for more
        # chunks: the GPU ends up with the lion's share of a compute-bound
        # kernel
        program = single_kernel_program(n=4_000_000, flops=200.0,
                                        mem_bytes=0.0)
        result = DPGuided().run(program, tiny_platform)
        assert result.gpu_fraction > 0.5

    def test_beats_fixed_chunk_dp_dep_when_gpu_dominant(self, paper_platform):
        from repro.apps import get_application

        program = get_application("MatrixMul").program()
        guided = DPGuided().run(program, paper_platform)
        fixed = get_strategy("DP-Dep").run(program, paper_platform)
        assert guided.makespan_s < fixed.makespan_s * 0.5

    def test_but_static_still_wins(self, paper_platform):
        """The paper's related-work claim (ref [11] discussion)."""
        from repro.apps import get_application

        for app_name in ("MatrixMul", "BlackScholes"):
            program = get_application(app_name).program()
            guided = DPGuided().run(program, paper_platform)
            static = get_strategy("SP-Single").run(program, paper_platform)
            assert static.makespan_s <= guided.makespan_s
