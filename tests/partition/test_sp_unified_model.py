"""SP-Unified's fused transfer model (first reads + final writes)."""

import pytest

from repro.partition.sp_unified import fused_transfer_model

from tests.conftest import chain_program, make_kernel
from repro.runtime.graph import KernelInvocation, Program


class TestFusedTransferModel:
    def test_chain_counts_head_input_and_all_outputs(self):
        # k0: x0->x1, k1: x1->x2, k2: x2->x3 (4-byte elements)
        program = chain_program(3, n=100)
        model = fused_transfer_model(program, 100, looped=False)
        # in: x0 (4 B/idx); out: x1, x2, x3 (12 B/idx)
        assert model.gpu_share_b == pytest.approx(16.0)
        assert model.fixed_b == 0
        assert model.cpu_share_b == 0

    def test_intermediate_arrays_not_counted_as_inputs(self):
        program = chain_program(2, n=100)
        model = fused_transfer_model(program, 100, looped=False)
        # x1 is produced on-device before it is read: not an input
        assert model.gpu_share_b == pytest.approx(4.0 + 8.0)

    def test_stream_footprint(self):
        from repro.apps import StreamSeq

        program = StreamSeq().program(1000)
        model = fused_transfer_model(program, 1000, looped=False)
        # first read: a (4 B); final writes: a, b, c (12 B)
        assert model.gpu_share_b == pytest.approx(16.0)

    def test_full_inputs_counted_once(self):
        k0, specs = make_kernel("k0", reads=("x",), writes=("y",),
                                full_reads=("t",), n=100)
        k1, specs = make_kernel("k1", arrays=specs, reads=("y",),
                                writes=("z",), full_reads=("t",), n=100)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=k0, n=100),
                KernelInvocation(invocation_id=1, kernel=k1, n=100),
            ],
            arrays=specs,
        )
        model = fused_transfer_model(program, 100, looped=False)
        assert model.fixed_b == 400  # t counted once, not twice

    def test_looped_amortizes_to_zero(self):
        program = chain_program(3, n=100)
        model = fused_transfer_model(program, 100, looped=True)
        assert model.gpu_share_b == 0
        assert model.fixed_b == 0

    def test_rereads_after_write_not_counted(self):
        # k0 writes b; k1 reads b: b never crosses the link inbound
        from repro.apps import StreamSeq

        program = StreamSeq().program(1000)
        model = fused_transfer_model(program, 1000, looped=False)
        # b and c are produced before read: only `a` is a true input
        assert model.gpu_share_b - 12.0 == pytest.approx(4.0)
