"""Multi-accelerator Glinda: the perfect-overlap system over N devices."""

import pytest

from repro.errors import PartitioningError
from repro.partition.glinda_multi import (
    DeviceTerm,
    predict_multi,
    solve_overlap,
)


def term(device_id, throughput, *, tx=0.0, fixed=0.0, gran=1):
    return DeviceTerm(
        device_id=device_id, throughput=throughput,
        per_index_transfer_s=tx, fixed_transfer_s=fixed, granularity=gran,
    )


class TestSolveOverlap:
    def test_two_equal_devices_split_in_half(self):
        t_star, shares = solve_overlap(
            [term("a", 1e6), term("b", 1e6)], 10_000
        )
        assert shares["a"] == pytest.approx(5000)
        assert shares["b"] == pytest.approx(5000)
        assert t_star == pytest.approx(5000 / 1e6)

    def test_shares_proportional_to_throughput(self):
        _, shares = solve_overlap(
            [term("a", 3e6), term("b", 1e6)], 8000
        )
        assert shares["a"] == pytest.approx(6000)
        assert shares["b"] == pytest.approx(2000)

    def test_matches_single_gpu_formula(self):
        # cpu + gpu with per-index transfer must reduce to the 1-GPU model
        theta_c, theta_g = 1e6, 4e6
        tx = 2.5e-7  # seconds per index over the link
        _, shares = solve_overlap(
            [term("cpu", theta_c), term("gpu", theta_g, tx=tx)], 10_000
        )
        c_g = 1 / theta_g + tx
        beta = (1 / theta_c) / (c_g + 1 / theta_c)
        assert shares["gpu"] / 10_000 == pytest.approx(beta, rel=1e-6)

    def test_all_devices_finish_together(self):
        terms = [
            term("cpu", 2e6),
            term("g0", 8e6, tx=1e-7, fixed=1e-3),
            term("g1", 5e6, tx=2e-7),
        ]
        t_star, shares = solve_overlap(terms, 1_000_000)
        for t in terms:
            finish = shares[t.device_id] * t.index_cost_s + t.fixed_transfer_s
            assert finish == pytest.approx(t_star, rel=1e-9)

    def test_validation(self):
        with pytest.raises(PartitioningError):
            solve_overlap([], 100)
        with pytest.raises(PartitioningError):
            solve_overlap([term("a", 1e6)], 0)
        with pytest.raises(PartitioningError):
            term("a", 0.0)
        with pytest.raises(PartitioningError):
            term("a", 1e6, tx=-1.0)
        with pytest.raises(PartitioningError):
            term("a", 1e6, gran=0)


class TestPredictMulti:
    def test_shares_partition_exactly(self):
        d = predict_multi(
            [term("cpu", 1e6), term("g0", 4e6, gran=32),
             term("g1", 2e6, gran=32)],
            100_000,
        )
        assert sum(d.shares.values()) == 100_000

    def test_granularity_respected(self):
        d = predict_multi(
            [term("cpu", 1e6), term("g0", 4e6, gran=32)], 100_000
        )
        assert d.shares["g0"] % 32 == 0

    def test_weak_device_dropped(self):
        # a device 1000x slower than the others gets below the threshold
        d = predict_multi(
            [term("cpu", 1e6), term("g0", 1e6), term("slow", 1e3)],
            100_000,
            min_share_fraction=0.03,
        )
        assert d.shares["slow"] == 0
        assert "slow" not in d.active
        assert sum(d.shares.values()) == 100_000

    def test_device_with_huge_fixed_cost_dropped(self):
        d = predict_multi(
            [term("cpu", 1e6), term("g0", 1e6, fixed=1e6)], 1000
        )
        assert d.shares["g0"] == 0
        assert d.shares["cpu"] == 1000

    def test_identical_accelerators_get_equal_shares(self):
        d = predict_multi(
            [term("cpu", 1e6), term("g0", 4e6, tx=1e-7, gran=32),
             term("g1", 4e6, tx=1e-7, gran=32)],
            1_000_000,
        )
        assert d.shares["g0"] == pytest.approx(d.shares["g1"], rel=0.01)

    def test_predicted_time_close_to_balanced(self):
        terms = [term("cpu", 1e6), term("g0", 4e6, gran=32)]
        d = predict_multi(terms, 1_000_000)
        t_star, _ = solve_overlap(terms, 1_000_000)
        assert d.predicted_time_s == pytest.approx(t_star, rel=0.01)


class TestOnPlatform:
    def test_sp_single_uses_both_gpus(self):
        from repro import get_application
        from repro.partition import get_strategy
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        program = get_application("MatrixMul").program(2048)
        result = get_strategy("SP-Single").run(program, platform)
        by_device = result.trace.elements_by_device(key="device")
        assert by_device.get("gpu0", 0) > 0
        assert by_device.get("gpu1", 0) > 0

    def test_dual_gpu_beats_single_gpu_static(self):
        from repro import get_application, shen_icpp15_platform
        from repro.partition import get_strategy
        from repro.platform import dual_gpu_platform

        program = get_application("MatrixMul").program(4096)
        single = get_strategy("SP-Single").run(
            program, shen_icpp15_platform()
        )
        dual = get_strategy("SP-Single").run(program, dual_gpu_platform())
        assert dual.makespan_s < single.makespan_s * 0.75

    def test_dp_perf_exploits_both_gpus(self):
        from repro import get_application
        from repro.partition import get_strategy
        from repro.platform import dual_gpu_platform

        program = get_application("MatrixMul").program(4096)
        result = get_strategy("DP-Perf").run(program, dual_gpu_platform())
        by_device = result.trace.elements_by_device(key="device")
        assert by_device.get("gpu0", 0) > 0
        assert by_device.get("gpu1", 0) > 0

    def test_transfer_bound_app_drops_second_gpu_or_not_worse(self):
        # HotSpot on two PCIe GPUs: splitting across both must not lose
        # to the single-GPU platform's static plan
        from repro import get_application, shen_icpp15_platform
        from repro.partition import get_strategy
        from repro.platform import dual_gpu_platform

        program = get_application("HotSpot").program(2048, iterations=2)
        single = get_strategy("SP-Single").run(
            program, shen_icpp15_platform()
        )
        dual = get_strategy("SP-Single").run(program, dual_gpu_platform())
        assert dual.makespan_s <= single.makespan_s * 1.05
