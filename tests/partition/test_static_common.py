"""Shared static-strategy machinery (_static_common)."""

import pytest

from repro.errors import PartitioningError, StrategyInapplicableError
from repro.partition._static_common import (
    cpu_thread_ranges,
    multi_static_chunks,
    single_kernel_of,
    static_chunks,
    uniform_problem_size,
)
from repro.runtime.graph import KernelInvocation

from tests.conftest import chain_program, make_kernel, single_kernel_program


def invocation(n=100):
    kernel, _ = make_kernel(n=n)
    return KernelInvocation(invocation_id=0, kernel=kernel, n=n)


class TestCpuThreadRanges:
    def test_partitions_span(self):
        ranges = cpu_thread_ranges(10, 110, 4)
        assert ranges == [(10, 35), (35, 60), (60, 85), (85, 110)]

    def test_empty_span(self):
        assert cpu_thread_ranges(50, 50, 4) == []

    def test_more_threads_than_indices(self):
        ranges = cpu_thread_ranges(0, 3, 8)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)


class TestStaticChunks:
    def test_gpu_plus_m_cpu(self, tiny_platform):
        chunks = static_chunks(invocation(), 40, platform=tiny_platform, m=4)
        assert chunks[0] == (0, 40, "gpu0", None)
        cpu = chunks[1:]
        assert len(cpu) == 4
        assert cpu[0][0] == 40 and cpu[-1][1] == 100
        assert {c[3] for c in cpu} == {"cpu:0", "cpu:1", "cpu:2", "cpu:3"}

    def test_all_cpu(self, tiny_platform):
        chunks = static_chunks(invocation(), 0, platform=tiny_platform, m=4)
        assert all(c[2] is None for c in chunks)
        assert len(chunks) == 4

    def test_all_gpu(self, tiny_platform):
        chunks = static_chunks(invocation(), 100, platform=tiny_platform, m=4)
        assert chunks == [(0, 100, "gpu0", None)]

    def test_invalid_share(self, tiny_platform):
        with pytest.raises(PartitioningError):
            static_chunks(invocation(), 101, platform=tiny_platform, m=4)


class TestMultiStaticChunks:
    def test_lays_out_accelerators_then_cpu(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        chunks = multi_static_chunks(
            invocation(1000), {"gpu0": 500, "gpu1": 300},
            platform=platform, m=3,
        )
        assert chunks[0] == (0, 500, "gpu0", None)
        assert chunks[1] == (500, 800, "gpu1", None)
        cpu = chunks[2:]
        assert cpu[0][0] == 800 and cpu[-1][1] == 1000
        assert len(cpu) == 3

    def test_zero_share_skipped(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        chunks = multi_static_chunks(
            invocation(1000), {"gpu0": 0, "gpu1": 600},
            platform=platform, m=2,
        )
        devices = [c[2] for c in chunks]
        assert "gpu0" not in devices and "gpu1" in devices

    def test_oversubscription_rejected(self):
        from repro.platform import dual_gpu_platform

        platform = dual_gpu_platform()
        with pytest.raises(PartitioningError):
            multi_static_chunks(
                invocation(1000), {"gpu0": 800, "gpu1": 300},
                platform=platform, m=2,
            )


class TestProgramPredicates:
    def test_single_kernel_of(self):
        program = single_kernel_program()
        assert single_kernel_of(program, "X").name == "k"
        with pytest.raises(StrategyInapplicableError):
            single_kernel_of(chain_program(2), "X")

    def test_uniform_problem_size(self):
        assert uniform_problem_size(chain_program(2, n=512), "X") == 512

    def test_nonuniform_rejected(self):
        from repro.runtime.graph import Program

        k0, specs = make_kernel("k0", reads=("a",), writes=("b",), n=100)
        k1, specs = make_kernel("k1", arrays=specs, reads=("b",),
                                writes=("c",), n=100)
        program = Program(
            invocations=[
                KernelInvocation(invocation_id=0, kernel=k0, n=100),
                KernelInvocation(invocation_id=1, kernel=k1, n=50),
            ],
            arrays=specs,
        )
        with pytest.raises(StrategyInapplicableError):
            uniform_problem_size(program, "X")
