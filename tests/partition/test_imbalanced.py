"""Imbalanced-workload partitioning (ref [9] extension)."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.partition.glinda import TransferModel
from repro.partition.imbalanced import imbalanced_split, weighted_ranges
from repro.platform.interconnect import Link
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec

LINK = Link(name="l", bandwidth_gbs=10.0, latency_s=0.0)


def weighted_kernel(weights) -> Kernel:
    weights = np.asarray(weights, dtype=np.float64)
    n = len(weights)
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    spec_x = ArraySpec("x", n, 4)
    spec_y = ArraySpec("y", n, 4)
    return Kernel(
        "wk",
        KernelCostModel(flops_per_elem=2.0),
        (AccessSpec(spec_x, AccessMode.IN), AccessSpec(spec_y, AccessMode.OUT)),
        work_prefix=prefix,
    )


class TestWorkUnits:
    def test_uniform_kernel_counts_indices(self):
        kernel = weighted_kernel([1.0] * 10)
        assert kernel.work_units(2, 7) == 5.0

    def test_weighted_kernel_sums_weights(self):
        kernel = weighted_kernel([1, 10, 1, 10, 1])
        assert kernel.work_units(0, 2) == 11.0
        assert kernel.total_work == 23.0

    def test_imbalanced_flag(self):
        from tests.conftest import make_kernel

        uniform, _ = make_kernel()
        assert not uniform.imbalanced
        assert weighted_kernel([1, 2]).imbalanced

    def test_bad_prefix_rejected(self):
        from repro.errors import ConfigurationError

        spec_x = ArraySpec("x", 2, 4)
        spec_y = ArraySpec("y", 2, 4)
        with pytest.raises(ConfigurationError):
            Kernel(
                "bad", KernelCostModel(flops_per_elem=1),
                (AccessSpec(spec_x, AccessMode.IN),
                 AccessSpec(spec_y, AccessMode.OUT)),
                work_prefix=np.array([1.0, 2.0, 3.0]),  # must start at 0
            )
        with pytest.raises(ConfigurationError):
            Kernel(
                "bad2", KernelCostModel(flops_per_elem=1),
                (AccessSpec(spec_x, AccessMode.IN),
                 AccessSpec(spec_y, AccessMode.OUT)),
                work_prefix=np.array([0.0, 5.0, 3.0]),  # decreasing
            )


class TestWeightedRanges:
    def test_equal_work_not_equal_indices(self):
        # front-loaded work: the first range must be much shorter
        kernel = weighted_kernel([100, 1, 1, 1, 1, 1, 1, 1])
        ranges = weighted_ranges(kernel, 0, 8, 2)
        assert ranges[0] == (0, 1)
        assert ranges[1] == (1, 8)

    def test_ranges_partition_span(self):
        kernel = weighted_kernel(np.arange(1, 21))
        ranges = weighted_ranges(kernel, 3, 17, 4)
        assert ranges[0][0] == 3 and ranges[-1][1] == 17
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c

    def test_never_empty_ranges(self):
        kernel = weighted_kernel([0, 0, 1000, 0, 0, 0])
        ranges = weighted_ranges(kernel, 0, 6, 4)
        assert all(hi > lo for lo, hi in ranges)

    def test_uniform_fallback(self):
        from tests.conftest import make_kernel

        kernel, _ = make_kernel(n=10)
        assert weighted_ranges(kernel, 0, 10, 2) == [(0, 5), (5, 10)]

    def test_work_balance_quality(self):
        rng = np.random.default_rng(1)
        weights = rng.pareto(1.5, 1000) + 1
        kernel = weighted_kernel(weights)
        ranges = weighted_ranges(kernel, 0, 1000, 8)
        works = [kernel.work_units(lo, hi) for lo, hi in ranges]
        # each range within 2x of the mean (heavy tails allow one huge
        # single-index range)
        mean = sum(works) / len(works)
        assert max(works) <= max(2 * mean, max(weights))


class TestImbalancedSplit:
    def test_balances_work_not_indices(self):
        # work concentrated at the front; equal devices -> the boundary
        # sits where HALF THE WORK is, far left of the index midpoint
        weights = np.concatenate([np.full(100, 99.0), np.full(900, 1.0)])
        kernel = weighted_kernel(weights)
        d = imbalanced_split(
            kernel, 1000, theta_gpu=1e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(), warp_size=1,
        )
        assert d.gpu_fraction == pytest.approx(0.5, abs=0.05)
        assert d.gpu_index_fraction < 0.2

    def test_transfers_shift_boundary_left(self):
        weights = np.full(1000, 10.0)
        kernel = weighted_kernel(weights)
        base = imbalanced_split(
            kernel, 1000, theta_gpu=4e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(), warp_size=1,
        )
        taxed = imbalanced_split(
            kernel, 1000, theta_gpu=4e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(gpu_share_b=5000.0), warp_size=1,
        )
        assert taxed.boundary < base.boundary

    def test_uniform_weights_match_glinda(self):
        from repro.partition.glinda import GlindaModel

        kernel = weighted_kernel(np.ones(10_000))
        d = imbalanced_split(
            kernel, 10_000, theta_gpu=3e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(), warp_size=1,
        )
        g = GlindaModel(warp_size=1, gpu_only_threshold=0.999,
                        cpu_only_threshold=0.001).predict(
            kernel="k", n=10_000, theta_gpu=3e6, theta_cpu=1e6,
            link=LINK, transfer=TransferModel(),
        )
        assert d.boundary == pytest.approx(g.n_gpu, abs=2)

    def test_rejects_uniform_kernel(self):
        from tests.conftest import make_kernel

        kernel, _ = make_kernel(n=100)
        with pytest.raises(PartitioningError):
            imbalanced_split(
                kernel, 100, theta_gpu=1e6, theta_cpu=1e6, link=LINK,
                transfer=TransferModel(),
            )

    def test_predicted_time_is_balanced(self):
        rng = np.random.default_rng(2)
        kernel = weighted_kernel(rng.pareto(1.5, 5000) + 1)
        d = imbalanced_split(
            kernel, 5000, theta_gpu=4e6, theta_cpu=1e6, link=LINK,
            transfer=TransferModel(gpu_share_b=8.0), warp_size=1,
        )
        t_gpu = d.gpu_work / 4e6 + 8.0 * d.boundary / LINK.bandwidth
        t_cpu = d.cpu_work / 1e6
        assert d.predicted_time_s == pytest.approx(max(t_gpu, t_cpu))
        # within one index weight of perfect balance
        assert abs(t_gpu - t_cpu) <= d.predicted_time_s * 0.05
