"""Calibration harness: evaluate the paper's shape constraints.

Thin CLI over :mod:`repro.bench.validation` — used while tuning the
calibrated constants; the integration tests assert the same checks.
"""

from __future__ import annotations

import sys

from repro import shen_icpp15_platform
from repro.bench.tables import format_time_table
from repro.bench.validation import run_full_matrix, validate_shapes
from repro.bench.speedup import figure12, format_figure12

if __name__ == "__main__":
    platform = shen_icpp15_platform()
    matrix = run_full_matrix(platform)
    rows = figure12(platform)
    report = validate_shapes(matrix, rows=rows)
    print(report.summary())
    if "-v" in sys.argv:
        print(format_time_table(matrix.values(), title="full matrix (ms)"))
        print(format_figure12(rows))
    sys.exit(0 if report.ok else 1)
