#!/usr/bin/env python
"""Making dynamic partitioning behave like static (paper §V).

An application already written with dynamic task instances — but whose
best strategy is static — need not be rewritten: determine the static
ratio, convert it to task-assignment counts, and pin the existing chunks.
The paper promises "a close-to-optimal partitioning with minimal manual
effort"; this example measures how close, and also demonstrates the
task-size auto-tuning recommended in the same section.

Run:  python examples/dynamic_to_static.py
"""

from repro import shen_icpp15_platform
from repro.apps import get_application
from repro.partition import (
    DPPerf,
    PlanConfig,
    autotune_task_count,
    dynamic_as_static_plan,
    get_strategy,
    run_plan,
    static_assignment_counts,
)


def main() -> None:
    platform = shen_icpp15_platform()
    app = get_application("BlackScholes")
    program = app.program()
    config = PlanConfig(task_count=24)

    # step 0: the dynamically partitioned application as-is
    dynamic = DPPerf().run(program, platform, config=config)

    # step 1: determine the static partitioning ratio (task size = n)
    sp_plan = get_strategy("SP-Single").plan(program, platform, config)
    ratio = next(iter(sp_plan.decision.gpu_fraction_by_kernel.values()))
    static = run_plan(sp_plan, platform)

    # step 2: convert the ratio to task-assignment counts
    counts = static_assignment_counts(ratio, config.chunks(platform))

    # step 3: pin the dynamic chunks accordingly
    converted = run_plan(
        dynamic_as_static_plan(program, platform, ratio, config=config),
        platform,
    )

    print(f"static ratio: GPU {ratio:.1%} "
          f"-> {counts.gpu_instances} GPU / {counts.cpu_instances} CPU "
          f"task instances")
    print(f"{'execution':<28} {'time':>10}")
    print(f"{'DP-Perf (as written)':<28} {dynamic.makespan_ms:>8.1f}ms")
    print(f"{'converted (DP-as-SP)':<28} {converted.makespan_ms:>8.1f}ms")
    print(f"{'SP-Single (full rewrite)':<28} {static.makespan_ms:>8.1f}ms")
    gap = converted.makespan_s / static.makespan_s - 1
    print(f"\nconversion is within {gap:.1%} of the true static optimum")

    # bonus: §V's task-size auto-tuning for the dynamic original
    tuned = autotune_task_count(DPPerf(), program, platform,
                                multipliers=(1, 2, 4, 8))
    print(f"\nauto-tuned DP-Perf: best of {sorted(tuned.sweep)} "
          f"task counts -> {tuned.best_task_count} tasks, "
          f"{tuned.best_makespan_s * 1e3:.1f}ms "
          f"({tuned.speedup_over_worst:.2f}x over worst setting)")


if __name__ == "__main__":
    main()
