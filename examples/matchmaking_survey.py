#!/usr/bin/env python
"""Survey: matchmake all six evaluation applications (Tables I/II, Fig. 12).

For every application of the paper's Table II, this example runs the
analyzer, executes the chosen strategy AND both single-device baselines,
and prints the speedup the matchmaking achieved — the reproduction of the
paper's bottom line ("average speedup of 3.0x/5.3x over the Only-GPU/
Only-CPU execution").

Run:  python examples/matchmaking_survey.py            # paper sizes (~4 s)
      python examples/matchmaking_survey.py --quick    # scaled down
"""

import sys

from repro import get_application, match, shen_icpp15_platform
from repro.bench.experiments import scaled_size
from repro.partition import get_strategy

CONFIGS = [
    ("MatrixMul", None),
    ("BlackScholes", None),
    ("Nbody", None),
    ("HotSpot", None),
    ("STREAM-Seq", False),
    ("STREAM-Seq", True),
    ("STREAM-Loop", False),
    ("STREAM-Loop", True),
]


def main(quick: bool = False) -> None:
    platform = shen_icpp15_platform()
    print(f"{'scenario':<18} {'class':<8} {'strategy':<11} "
          f"{'time':>10} {'vs OG':>7} {'vs OC':>7}")
    speedups_og, speedups_oc = [], []
    for app_name, sync in CONFIGS:
        app = get_application(app_name)
        n = scaled_size(app_name, 1 / 16) if quick else None
        outcome = match(app, platform, n=n, sync=sync)
        program = app.program(n, sync=app.needs_sync if sync is None else sync)
        og = get_strategy("Only-GPU").run(program, platform).makespan_ms
        oc = get_strategy("Only-CPU").run(program, platform).makespan_ms
        best = outcome.makespan_ms
        label = app_name if sync is None else f"{app_name}-{'w' if sync else 'w/o'}"
        speedups_og.append(og / best)
        speedups_oc.append(oc / best)
        print(f"{label:<18} {outcome.report.app_class.value:<8} "
              f"{outcome.strategy:<11} {best:>8.1f}ms "
              f"{og / best:>6.2f}x {oc / best:>6.2f}x")
    n = len(CONFIGS)
    print(f"{'average':<18} {'':<8} {'':<11} {'':>10} "
          f"{sum(speedups_og) / n:>6.2f}x {sum(speedups_oc) / n:>6.2f}x")
    print("\n(paper: average 3.0x vs Only-GPU, 5.3x vs Only-CPU)")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
