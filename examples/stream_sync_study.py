#!/usr/bin/env python
"""The STREAM synchronization study (paper Figs. 9-11).

STREAM is the paper's instrument for the MK-Seq/MK-Loop classes because
its synchronization is *optional*: the four kernels chain cleanly, so a
taskwait between them can be added or removed to mimic both application
families.  This example regenerates the four scenario groups and shows the
ranking flip: SP-Unified wins without synchronization, SP-Varied with it —
and each is the *worst* choice in the opposite scenario.

Run:  python examples/stream_sync_study.py
"""

from repro import shen_icpp15_platform
from repro.apps import get_application
from repro.bench.harness import mk_strategies, run_scenario
from repro.bench.tables import format_ratio_table, format_time_table


def main() -> None:
    platform = shen_icpp15_platform()
    scenarios = []
    for app_name in ("STREAM-Seq", "STREAM-Loop"):
        for sync in (False, True):
            scenarios.append(run_scenario(
                get_application(app_name), platform, mk_strategies(),
                sync=sync,
            ))

    print(format_time_table(
        scenarios,
        title="Execution time (ms) — cf. paper Figures 9 and 11",
    ))
    print()
    print(format_ratio_table(
        scenarios[:2],
        title="Partitioning ratios — cf. paper Figure 10",
        per_kernel=True,
    ))
    print()
    for scenario in scenarios:
        order = scenario.ordered()
        print(f"{scenario.label:<18} ranking: {' > '.join(order)}")
    print("\nTable I says: w/o sync -> SP-Unified first, SP-Varied last;"
          "\n              w sync   -> SP-Varied first, SP-Unified last.")


if __name__ == "__main__":
    main()
