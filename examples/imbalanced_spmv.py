#!/usr/bin/env python
"""Imbalanced workloads: work-balanced vs index-balanced partitioning.

The Glinda lineage (paper ref [9]) extends static partitioning to
workloads whose per-index cost varies with the data.  This example runs
CSR SpMV over a heavy-tailed, degree-ordered matrix — the first rows carry
orders of magnitude more nonzeros than the last — and compares:

* SP-Single with the work-balanced boundary search (the ref-[9] method),
* an index-balanced split at the *same* work ratio (what a weight-blind
  partitioner would do),
* the dynamic strategies and single-device baselines.

Run:  python examples/imbalanced_spmv.py
"""

import numpy as np

from repro import shen_icpp15_platform
from repro.apps import SpMV
from repro.apps.spmv import row_lengths
from repro.partition import (
    PlanConfig,
    dynamic_as_static_plan,
    get_strategy,
    run_plan,
)


def main() -> None:
    platform = shen_icpp15_platform()
    app = SpMV()
    program = app.program()

    lengths = row_lengths(app.paper_n)
    print(f"matrix: {app.paper_n:,} rows, {lengths.sum():,} nonzeros")
    print(f"row degrees: max {lengths.max()}, median "
          f"{int(np.median(lengths))}, min {lengths.min()} "
          "(degree-ordered: heavy rows first)")
    print()

    plan = get_strategy("SP-Single").plan(program, platform)
    decision = plan.decision.notes["imbalanced"]
    print("SP-Single (work-balanced boundary search):")
    print(f"  GPU gets rows [0, {decision.boundary:,}) = "
          f"{decision.gpu_index_fraction:.1%} of the rows "
          f"but {decision.gpu_fraction:.1%} of the work")
    weighted = run_plan(plan, platform)

    uniform = run_plan(
        dynamic_as_static_plan(
            program, platform, decision.gpu_fraction, config=PlanConfig()
        ),
        platform,
    )

    print()
    print(f"{'execution':<30} {'time':>10}")
    rows = {
        "SP-Single (work-balanced)": weighted.makespan_ms,
        "index-balanced, same ratio": uniform.makespan_ms,
        "DP-Perf": get_strategy("DP-Perf").run(program, platform).makespan_ms,
        "DP-Dep": get_strategy("DP-Dep").run(program, platform).makespan_ms,
        "Only-GPU": get_strategy("Only-GPU").run(program, platform).makespan_ms,
        "Only-CPU": get_strategy("Only-CPU").run(program, platform).makespan_ms,
    }
    for label, ms in rows.items():
        print(f"{label:<30} {ms:>8.1f}ms")
    print(f"\nwork-balancing buys "
          f"{rows['index-balanced, same ratio'] / rows['SP-Single (work-balanced)']:.2f}x "
          "over the weight-blind split")


if __name__ == "__main__":
    main()
