#!/usr/bin/env python
"""MK-DAG scheduling: blocked Cholesky under the dynamic strategies.

The fifth class is where static partitioning gives up: the execution flow
is a task DAG, so only the dynamic strategies apply (paper Table I).  This
example factorizes an 8x8-tile SPD matrix, compares DP-Perf against DP-Dep
and the single-device baselines, and renders a Gantt chart of the DAG
execution so the inter-kernel parallelism is visible.

Run:  python examples/dag_scheduling.py
"""

from repro import shen_icpp15_platform
from repro.apps.cholesky import Cholesky
from repro.core import analyze, format_analysis
from repro.partition import get_strategy
from repro.sim import render_gantt


def main() -> None:
    platform = shen_icpp15_platform()
    app = Cholesky(tile_size=1024)
    report = analyze(app, n=8)
    print(format_analysis(report))
    print()

    program = app.program(8)
    results = {}
    for name in ("Only-CPU", "Only-GPU", "DP-Dep", "DP-Perf"):
        results[name] = get_strategy(name).run(program, platform)
    print(f"{'strategy':<10} {'time':>10} {'gpu share':>10}")
    for name, result in results.items():
        print(f"{name:<10} {result.makespan_ms:>8.1f}ms "
              f"{result.gpu_fraction:>9.1%}")

    print("\nDP-Perf timeline (first 3 CPU threads + GPU + link):")
    trace = results["DP-Perf"].trace
    print(render_gantt(
        trace, width=76,
        resources=["cpu:0", "cpu:1", "cpu:2", "gpu0", "link:gpu0:h2d"],
    ))


if __name__ == "__main__":
    main()
