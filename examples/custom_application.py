#!/usr/bin/env python
"""Bring your own application: define kernels, analyze, matchmake.

The analyzer is not limited to the bundled benchmarks ("users can apply
our analyzer to their own implementations", §III-A).  This example builds
a small image-processing pipeline from scratch — blur, then gradient, then
threshold, executed over several frames — and walks it through the whole
flow: structure analysis, classification, ranking, strategy selection, and
simulated execution, including a check of what the *wrong* strategy would
have cost.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import analyze, format_analysis, shen_icpp15_platform
from repro.core.analyzer import analyze_program
from repro.partition import get_strategy
from repro.platform.device import DeviceKind
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.kernels import AccessSpec, Kernel, KernelCostModel
from repro.runtime.regions import AccessMode, ArraySpec

ROWS = 4096          # frame height (partition index = row)
COLS = 4096
FRAMES = 6           # outer loop


def build_pipeline() -> Program:
    """blur -> gradient -> threshold per frame, no host sync needed."""
    elems = ROWS * COLS
    arrays = {
        name: ArraySpec(name, elems, 4)
        for name in ("frame", "blurred", "gradient", "mask")
    }

    def cost(flops, mem_bytes):
        return KernelCostModel(
            flops_per_elem=flops * COLS,       # per row
            mem_bytes_per_elem=mem_bytes * COLS,
            compute_eff={DeviceKind.CPU: 0.15, DeviceKind.GPU: 0.35},
            mem_eff={DeviceKind.CPU: 0.55, DeviceKind.GPU: 0.65},
        )

    def k(name, src, dst, flops, mem_bytes):
        return Kernel(
            name, cost(flops, mem_bytes),
            (AccessSpec(arrays[src], AccessMode.IN, elems_per_index=COLS),
             AccessSpec(arrays[dst], AccessMode.OUT, elems_per_index=COLS)),
        )

    kernels = [
        k("blur", "frame", "blurred", flops=18, mem_bytes=24),
        k("gradient", "blurred", "gradient", flops=10, mem_bytes=16),
        k("threshold", "gradient", "mask", flops=2, mem_bytes=8),
    ]
    invocations = []
    for frame in range(FRAMES):
        for kernel in kernels:
            invocations.append(KernelInvocation(
                invocation_id=len(invocations), kernel=kernel, n=ROWS,
                iteration=frame, sync_after=False,
            ))
    return Program(invocations=invocations, arrays=arrays)


def main() -> None:
    platform = shen_icpp15_platform()
    program = build_pipeline()

    report = analyze_program(program, name="edge-detect pipeline")
    print(format_analysis(report))
    print()

    # run the analyzer's choice and every alternative
    print(f"{'strategy':<12} {'time':>10}   note")
    times = {}
    for name in report.ranked_strategies:
        result = get_strategy(name).run(program, platform)
        times[name] = result.makespan_ms
        marker = "<= analyzer's choice" if name == report.best_strategy else ""
        print(f"{name:<12} {result.makespan_ms:>8.1f}ms   {marker}")
    best = min(times.values())
    worst = max(times.values())
    print(f"\npicking right instead of wrong: {worst / best:.2f}x "
          f"({worst:.1f}ms -> {best:.1f}ms)")


if __name__ == "__main__":
    main()
