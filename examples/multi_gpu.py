#!/usr/bin/env python
"""Multi-accelerator partitioning: CPU + two non-identical GPUs.

Glinda "supports various platforms, with one or more accelerators,
identical or non-identical" (paper §II-A).  This example runs MatrixMul on
a platform pairing the paper's Tesla K20m with a consumer GTX 680 on a
faster PCIe slot: SP-Single solves the three-way perfect-overlap system,
and the dynamic strategies discover (or fail to discover) the same balance.

Run:  python examples/multi_gpu.py
"""

from repro import get_application, shen_icpp15_platform
from repro.partition import get_strategy
from repro.platform import dual_gpu_platform


def main() -> None:
    single = shen_icpp15_platform()
    dual = dual_gpu_platform()
    print(dual.describe())
    print()

    app = get_application("MatrixMul")
    program = app.program()

    plan = get_strategy("SP-Single").plan(program, dual)
    decision = plan.decision.notes["multi"]
    print("SP-Single multi-way split (perfect-overlap solution):")
    for device, share in decision.shares.items():
        print(f"  {device:<6} {share:>8} rows  ({share / decision.n:6.1%})")
    print()

    print(f"{'strategy':<11} {'1 GPU':>10} {'2 GPUs':>10}")
    for name in ("Only-GPU", "Only-CPU", "SP-Single", "DP-Perf", "DP-Dep"):
        t1 = get_strategy(name).run(program, single).makespan_ms
        t2 = get_strategy(name).run(program, dual).makespan_ms
        print(f"{name:<11} {t1:>8.1f}ms {t2:>8.1f}ms")
    print("\nThe second GPU nearly halves the static partition's time; the"
          "\ncapability-blind DP-Dep cannot exploit either of them.")


if __name__ == "__main__":
    main()
