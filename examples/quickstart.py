#!/usr/bin/env python
"""Quickstart: matchmake one application to its best partitioning strategy.

The three-line version of the paper: classify the application by its kernel
structure, look up the best-ranked strategy for that class (Table I), and
execute it on the simulated CPU+GPU platform.

Run:  python examples/quickstart.py
"""

from repro import (
    format_match,
    get_application,
    match,
    shen_icpp15_platform,
)


def main() -> None:
    platform = shen_icpp15_platform()
    print(platform.describe())
    print()

    # MatrixMul at a reduced problem size for a quick run; drop n to use
    # the paper's 6144 x 6144 matrices.
    app = get_application("MatrixMul")
    outcome = match(app, platform, n=2048)
    print(format_match(outcome))
    print()

    # the same pipeline picks a *different* strategy for a multi-kernel
    # application that needs synchronization between kernels
    stream = get_application("STREAM-Seq")
    outcome = match(stream, platform, sync=True)
    print(format_match(outcome))


if __name__ == "__main__":
    main()
