"""Table III: the platform description."""

from conftest import emit

from repro.platform import shen_icpp15_platform


def test_table3_platform(benchmark):
    platform = benchmark(shen_icpp15_platform)
    emit("Table III — the hardware components of the platform",
         platform.describe())
    cpu, gpu = platform.host.spec, platform.gpu.spec
    assert (cpu.peak_gflops_sp, cpu.peak_gflops_dp) == (384.0, 192.0)
    assert (gpu.peak_gflops_sp, gpu.peak_gflops_dp) == (3519.3, 1173.1)
    assert (cpu.mem_bandwidth_gbs, gpu.mem_bandwidth_gbs) == (42.6, 208.0)
