"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures at the paper's
problem sizes on the Table III platform, times the regeneration with
pytest-benchmark, and prints the reproduced rows/series so the output can be
compared side by side with the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.platform import shen_icpp15_platform


@pytest.fixture(scope="session")
def platform():
    return shen_icpp15_platform()


def emit(title: str, body: str) -> None:
    """Print a reproduced table under a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
