"""Workload characterization table (the reproduction's mini ref-[18] study)."""

from conftest import emit

from repro.apps import paper_applications
from repro.apps.characterize import characterize, format_characterization


def test_characterization_table(benchmark, platform):
    chars = benchmark.pedantic(
        lambda: [characterize(app, platform) for app in paper_applications()],
        rounds=1, iterations=1,
    )
    emit("Workload characterization — arithmetic intensity, transfer "
         "footprint, Glinda metrics", format_characterization(chars))
    by_name = {c.application: c for c in chars}
    # the matchmaking table reproduces end to end
    assert by_name["MatrixMul"].best_strategy == "SP-Single"
    assert by_name["STREAM-Seq"].best_strategy == "SP-Unified"
    # the transfer-boundedness split that drives the rankings
    assert by_name["BlackScholes"].kernels[0].transfer_bound
    assert not by_name["MatrixMul"].kernels[0].transfer_bound
    assert all(k.transfer_bound for k in by_name["STREAM-Seq"].kernels)


def test_sensitivity_of_the_splits(benchmark, platform):
    from repro.apps import get_application
    from repro.partition.glinda import TransferModel
    from repro.partition.profiling import profile_kernel
    from repro.partition.sensitivity import (
        format_sensitivity,
        profiling_sensitivity,
    )

    app = get_application("BlackScholes")
    program = app.program()
    kernel = program.kernels[0]
    n = program.invocations[0].n

    def sweep():
        profile = profile_kernel(kernel, platform, n)
        return profiling_sensitivity(
            n=n,
            theta_gpu=profile.gpu_throughput,
            theta_cpu=profile.cpu_throughput,
            link=platform.link_for("gpu0"),
            transfer=TransferModel.single_pass(profile),
        )

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Glinda robustness — BlackScholes split under profiling error",
         format_sensitivity(report))
    # "low-cost profiling" is viable because the optimum is flat:
    # 30% throughput error costs far less than 30% time
    assert report.max_regret < 0.30
