"""Response curves T(β): Glinda's prediction sits in the measured valley.

The strongest end-to-end check of the static stack: sweep the GPU fraction
in 10% steps, measure each pinned split on the simulator, and verify the
model-predicted split lands within tolerance of the sweep minimum for
every SK-class application.
"""

from conftest import emit

from repro.apps import get_application
from repro.bench.whatif import format_curve, split_response_curve
from repro.partition import get_strategy


APPS = ("MatrixMul", "BlackScholes", "Nbody", "HotSpot")


def test_response_curves(benchmark, platform):
    grid = tuple(i / 10 for i in range(11))

    def measure():
        out = {}
        for app_name in APPS:
            app = get_application(app_name)
            program = app.program()
            plan = get_strategy("SP-Single").plan(program, platform)
            predicted = next(
                iter(plan.decision.gpu_fraction_by_kernel.values())
            )
            fractions = tuple(sorted({*grid, round(predicted, 4)}))
            curve = split_response_curve(program, platform,
                                         fractions=fractions)
            out[app_name] = (curve, predicted)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for app_name, (curve, predicted) in results.items():
        emit(f"Response curve — {app_name} "
             f"(Glinda predicts GPU {predicted:.1%})",
             format_curve(curve, predicted=predicted))
        # the prediction sits in the measured valley (within 6%: the
        # per-iteration taskwait quiescence — a constant Glinda does not
        # model — nudges the loop apps' true optimum a point or two
        # GPU-ward)
        assert curve.valley_contains(predicted, tolerance=0.06), (
            app_name, predicted, curve.best_fraction
        )
    # sanity of the curve shapes themselves
    mm, _ = results["MatrixMul"]
    assert mm.best_fraction >= 0.8        # GPU-dominant valley
    hs, _ = results["HotSpot"]
    assert hs.best_fraction <= 0.4        # CPU-dominant valley
