"""Table I: theoretical ranking, validated empirically per scenario."""

from conftest import emit

from repro.bench.experiments import empirical_ranking
from repro.bench.validation import TIE

SCENARIOS = [
    ("MatrixMul", None), ("BlackScholes", None),
    ("Nbody", None), ("HotSpot", None),
    ("STREAM-Seq", False), ("STREAM-Seq", True),
    ("STREAM-Loop", False), ("STREAM-Loop", True),
]


def test_table1_empirical_ranking(benchmark, platform):
    def regenerate():
        return [
            empirical_ranking(app, platform, sync=sync)
            for app, sync in SCENARIOS
        ]

    comparisons = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    lines = []
    for c in comparisons:
        status = "MATCH" if c.matches(tie_tolerance=TIE) else "MISMATCH"
        times = "  ".join(
            f"{s}={c.times_ms[s]:.0f}ms" for s in c.theoretical
        )
        lines.append(f"{c.scenario:<18} [{status}]  {times}")
        assert c.matches(tie_tolerance=TIE), c.scenario
    emit("Table I — theoretical vs empirical strategy ranking",
         "\n".join(lines))
