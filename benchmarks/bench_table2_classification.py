"""Table II: application -> class classification."""

from conftest import emit

from repro.apps import paper_applications
from repro.core.analyzer import analyze
from repro.core.classes import AppClass


def test_table2_classification(benchmark, platform):
    def regenerate():
        rows = []
        for app in paper_applications():
            report = analyze(app, n=max(256, app.paper_n // 256))
            rows.append((app.name, report.app_class, app.origin))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    lines = [f"{'Application':<14} {'Class':<9} Origin"]
    for name, app_class, origin in rows:
        lines.append(f"{name:<14} {app_class.value:<9} {origin}")
    emit("Table II — applications for evaluation", "\n".join(lines))
    expected = {
        "MatrixMul": AppClass.SK_ONE,
        "BlackScholes": AppClass.SK_ONE,
        "Nbody": AppClass.SK_LOOP,
        "HotSpot": AppClass.SK_LOOP,
        "STREAM-Seq": AppClass.MK_SEQ,
        "STREAM-Loop": AppClass.MK_LOOP,
    }
    assert {name: cls for name, cls, _ in rows} == expected
