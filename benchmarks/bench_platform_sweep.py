"""Future-work probe (paper §VII): other platform balances.

"In the future, we plan to apply our analyzer to heterogeneous platforms
with other types of accelerators."  The fusion (APU-like) preset has a
near-free host<->device link: the transfer-driven effects of the paper's
platform (HotSpot's CPU win, STREAM's CPU-heavy splits) should weaken or
invert, while the classification and matchmaking pipeline stays unchanged.
"""

from conftest import emit

from repro import fusion_platform, match
from repro.apps import get_application


def test_platform_sweep_hotspot(benchmark, platform):
    fusion = fusion_platform()
    app = get_application("HotSpot")

    def measure():
        shen = match(app, platform, execute=False)
        apu = match(app, fusion, execute=False)
        return shen, apu

    shen, apu = benchmark.pedantic(measure, rounds=1, iterations=1)
    share = lambda m: next(iter(m.plan.decision.gpu_fraction_by_kernel.values()))
    emit(
        "Platform sweep — HotSpot split on PCIe vs APU-like platform",
        f"Table III platform: GPU share {share(shen):6.1%} "
        f"({shen.strategy})\n"
        f"fusion platform:    GPU share {share(apu):6.1%} "
        f"({apu.strategy})",
    )
    # same class and strategy; very different split
    assert shen.strategy == apu.strategy == "SP-Single"
    assert share(apu) > share(shen)


def test_platform_sweep_stream(benchmark, platform):
    fusion = fusion_platform()
    app = get_application("STREAM-Seq")

    def measure():
        return (
            match(app, platform, execute=False),
            match(app, fusion, execute=False),
        )

    shen, apu = benchmark.pedantic(measure, rounds=1, iterations=1)
    share = lambda m: next(iter(m.plan.decision.gpu_fraction_by_kernel.values()))
    emit(
        "Platform sweep — STREAM-Seq unified split on PCIe vs APU-like",
        f"Table III platform: GPU share {share(shen):6.1%}\n"
        f"fusion platform:    GPU share {share(apu):6.1%}",
    )
    assert share(apu) > share(shen)
