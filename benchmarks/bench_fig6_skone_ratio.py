"""Figure 6: SK-One partitioning ratios."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_ratio_table


def test_fig6_skone_ratios(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig6", platform), rounds=1, iterations=1
    )
    emit("Figure 6 — partitioning ratio of strategies in SK-One",
         format_ratio_table(results))
    matrixmul, blackscholes = results
    # paper: ~90%/10% GPU/CPU for MatrixMul, ~59%/41% for BlackScholes
    assert 0.85 <= matrixmul.outcome("SP-Single").gpu_fraction <= 0.95
    assert 0.50 <= blackscholes.outcome("SP-Single").gpu_fraction <= 0.68
    # DP-Perf overestimates the GPU in both
    assert matrixmul.outcome("DP-Perf").gpu_fraction > 0.95
    assert blackscholes.outcome("DP-Perf").gpu_fraction > \
        blackscholes.outcome("SP-Single").gpu_fraction
    # DP-Dep leaves the GPU a single instance
    assert matrixmul.outcome("DP-Dep").gpu_fraction < 0.15
