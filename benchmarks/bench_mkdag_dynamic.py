"""MK-DAG extension: DP-Perf vs DP-Dep on blocked Cholesky (cf. ref [20]).

The paper excludes MK-DAG from the static-vs-dynamic comparison and refers
to Planas et al. for the dynamic-policies comparison; this bench supplies
that experiment on the reproduction's substrate.
"""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_time_table
from repro.bench.validation import TIE


def test_mkdag_dynamic_scheduling(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("mkdag", platform), rounds=1, iterations=1
    )
    emit("MK-DAG extension — blocked Cholesky (8x8 tiles of 1024^2)",
         format_time_table(results))
    (cholesky,) = results
    # Proposition 1 carries over to the DAG class
    assert cholesky.makespan_ms("DP-Perf") <= \
        cholesky.makespan_ms("DP-Dep") * TIE
    # the DAG exposes enough parallelism that dynamic heterogeneous
    # execution beats the CPU-only baseline
    assert cholesky.makespan_ms("DP-Perf") < cholesky.makespan_ms("Only-CPU")
