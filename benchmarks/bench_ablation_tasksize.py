"""Ablation: dynamic task-size sensitivity (paper §V).

"In our experiments, we have also varied the task size in dynamic
partitioning, and found that the task size variation leads to performance
variation.  Thus, auto-tuning is recommended..."  — and even with the best
task size, static partitioning stays ahead for the first four classes.
"""

from conftest import emit

from repro.apps import get_application
from repro.partition import DPPerf, PlanConfig, autotune_task_count, get_strategy


def test_ablation_task_size(benchmark, platform):
    app = get_application("BlackScholes")
    program = app.program()

    def sweep():
        return autotune_task_count(
            DPPerf(), program, platform, multipliers=(1, 2, 4, 8)
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"task count {count:>4}: {ms * 1e3:8.1f} ms"
        for count, ms in sorted(result.sweep.items())
    ]
    lines.append(f"best: {result.best_task_count} tasks "
                 f"({result.best_makespan_s * 1e3:.1f} ms, "
                 f"{result.speedup_over_worst:.2f}x over worst)")
    emit("Ablation — DP-Perf task-size sweep on BlackScholes", "\n".join(lines))
    # task size matters...
    assert result.speedup_over_worst > 1.0
    # ...and static partitioning beats dynamic at the paper's task size
    # (n/m).  At very fine granularity (8x more chunks) the simulator's
    # transfer/compute pipelining lets DP-Perf edge ahead by a few percent
    # — which is exactly why the paper recommends auto-tuning before
    # comparing (§V); at the granularities the paper uses, static wins.
    static = get_strategy("SP-Single").run(program, platform)
    default_count = min(result.sweep)
    assert static.makespan_s <= result.sweep[default_count]
    assert static.makespan_s <= result.best_makespan_s * 1.12
