"""Figure 12: best-strategy speedups vs Only-GPU / Only-CPU."""

from conftest import emit

from repro.bench.speedup import average_speedups, figure12, format_figure12


def test_fig12_speedups(benchmark, platform):
    rows = benchmark.pedantic(
        lambda: figure12(platform), rounds=1, iterations=1
    )
    emit("Figure 12 — speedup of the best strategy vs Only-GPU/Only-CPU "
         "(paper: avg 3.0x / 5.3x, max 22.2x)",
         format_figure12(rows))
    avg_og, avg_oc = average_speedups(rows)
    assert 1.5 <= avg_og <= 5.0
    assert 3.0 <= avg_oc <= 9.0
    assert max(max(r.vs_only_gpu for r in rows),
               max(r.vs_only_cpu for r in rows)) >= 12
