"""Crossover sweeps: where the paper's win/lose boundaries sit.

The paper reports point observations (STREAM-Seq is CPU-won, STREAM-Loop is
GPU-won; HotSpot is CPU-won on PCIe); these sweeps locate the boundaries.
"""

from conftest import emit

from repro.bench.crossover import (
    format_crossover,
    hotspot_bandwidth_crossover,
    stream_iteration_crossover,
)


def test_stream_iteration_crossover(benchmark, platform):
    point = benchmark.pedantic(
        lambda: stream_iteration_crossover(platform), rounds=1, iterations=1
    )
    emit("Crossover — STREAM-Loop iterations (Only-CPU vs Only-GPU)",
         format_crossover(point))
    # one pass is CPU-won (the Fig. 9 observation) ...
    assert point.ratios[0] < 1.0
    # ... the iterated form is GPU-won (the Fig. 11 observation) ...
    assert point.ratios[-1] > 1.0
    # ... so the crossover exists inside the sweep
    assert point.crossover is not None
    assert 1 < point.crossover <= 10


def test_hotspot_bandwidth_crossover(benchmark, platform):
    point = benchmark.pedantic(
        lambda: hotspot_bandwidth_crossover(platform), rounds=1, iterations=1
    )
    emit("Crossover — HotSpot link bandwidth (Only-CPU vs Only-GPU)",
         format_crossover(point))
    # on the paper's 6 GB/s PCIe the CPU wins (the Fig. 7b observation)
    idx_6gbs = point.values.index(6.0)
    assert point.ratios[idx_6gbs] < 1.0
    # with a fast enough link the GPU wins (the §VII expectation)
    assert point.crossover is not None
