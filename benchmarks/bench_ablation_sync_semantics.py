"""Ablation: the runtime-model choices DESIGN.md calls out.

Two calibrated mechanisms drive the paper's rankings:

* ``taskwait`` flush-and-invalidate (OmpSs-0.7 cache semantics) — without
  it, adding synchronization would be nearly free and SP-Varied would not
  rank last in the no-sync scenarios;
* eager write-back of sync-followed instances — without it, the
  per-iteration flush serializes behind the compute and the SK-Loop static
  splits could not beat single-device execution.
"""

from dataclasses import replace

from conftest import emit

from repro.apps import get_application
from repro.partition import get_strategy
from repro.runtime.executor import RuntimeConfig


def run(platform, app_name, strategy, *, sync=None, **overrides):
    app = get_application(app_name)
    program = app.program(sync=sync)
    config = replace(RuntimeConfig(), **overrides)
    return get_strategy(strategy).run(
        program, platform, runtime_config=config
    )


def test_ablation_invalidation(benchmark, platform):
    def measure():
        with_inval = run(platform, "STREAM-Seq", "SP-Varied", sync=False)
        without = run(
            platform, "STREAM-Seq", "SP-Varied", sync=False,
            barrier_invalidates_devices=False,
        )
        return with_inval, without

    with_inval, without = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation — taskwait flush+invalidate (SP-Varied on STREAM-Seq)",
        f"flush+invalidate: {with_inval.makespan_ms:8.1f} ms "
        f"(H2D {with_inval.transfer_bytes['h2d'] / 1e6:.0f} MB)\n"
        f"flush only:       {without.makespan_ms:8.1f} ms "
        f"(H2D {without.transfer_bytes['h2d'] / 1e6:.0f} MB)",
    )
    # invalidation forces re-uploads: more H2D traffic, more time
    assert with_inval.transfer_bytes["h2d"] > without.transfer_bytes["h2d"]
    assert with_inval.makespan_s >= without.makespan_s


def test_ablation_eager_writeback(benchmark, platform):
    def measure():
        eager = run(platform, "HotSpot", "SP-Single")
        lazy = run(platform, "HotSpot", "SP-Single", eager_writeback=False)
        return eager, lazy

    eager, lazy = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation — eager write-back (SP-Single on HotSpot)",
        f"eager (flush overlaps CPU): {eager.makespan_ms:8.1f} ms\n"
        f"lazy (flush at barrier):    {lazy.makespan_ms:8.1f} ms",
    )
    # the overlap is what makes the heterogeneous split worthwhile
    assert eager.makespan_s < lazy.makespan_s


def test_ablation_barrier_overhead(benchmark, platform):
    def measure():
        rows = {}
        for overhead in (0.0, 5e-3, 11e-3, 22e-3):
            r = run(platform, "STREAM-Seq", "SP-Varied", sync=True,
                    barrier_overhead_s=overhead)
            rows[overhead] = r.makespan_ms
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "Ablation — taskwait quiescence cost (SP-Varied on STREAM-Seq-w)",
        "\n".join(f"barrier overhead {o * 1e3:5.1f} ms -> {ms:8.1f} ms"
                  for o, ms in rows.items()),
    )
    values = list(rows.values())
    assert values == sorted(values)  # monotone in the overhead
