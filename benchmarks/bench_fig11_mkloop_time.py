"""Figure 11: MK-Loop execution times (STREAM-Loop, with/without sync)."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_time_table
from repro.bench.validation import TIE


def test_fig11_mkloop_times(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig11", platform), rounds=1, iterations=1
    )
    emit("Figure 11 — execution time (ms) of strategies in MK-Loop",
         format_time_table(results))
    without, with_sync = results
    # iterations amortize transfers: Only-GPU now beats Only-CPU
    # (different from STREAM-Seq)
    assert without.makespan_ms("Only-GPU") < without.makespan_ms("Only-CPU")
    # rankings per sync mode, as in Table I
    assert without.best_strategy() == "SP-Unified"
    assert with_sync.best_strategy() == "SP-Varied"
    assert without.makespan_ms("DP-Perf") <= \
        without.makespan_ms("DP-Dep") * TIE
    assert with_sync.makespan_ms("DP-Dep") <= \
        with_sync.makespan_ms("SP-Unified") * TIE
