"""Pipeline fast-path performance: dependence analysis + memo hit rates.

Times the frontier dependence builder against the reference full-history
scan on a 5000+-instance single-barrier-window program (the shape the
O(n^2) scan is worst at), measures the probe/plan cache hit rates across a
repeated sweep, and records everything to ``BENCH_pipeline.json`` so CI
can track instances/sec over time.

Runs both under pytest (``pytest benchmarks/bench_pipeline_perf.py``) and
as a plain script (``python benchmarks/bench_pipeline_perf.py``) for the
CI perf-smoke job.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps import get_application
from repro.bench.harness import SweepCell, run_sweep
from repro.cache import cache_stats, clear_all
from repro.platform import shen_icpp15_platform
from repro.runtime.dependence import (
    build_dependences,
    build_dependences_reference,
)
from repro.runtime.graph import chunk_ranges, expand_program

#: where the recorded numbers land (repo root, next to ROADMAP.md)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

#: acceptance floor: the frontier builder must beat the reference by this
SPEEDUP_FLOOR = 10.0
#: generous CI floor on the fast builder's throughput (measured ~85k/s)
INSTANCES_PER_SEC_FLOOR = 2_000.0

#: the adversarial shape: one long barrier-free window of many instances
N = 1 << 16
ITERATIONS = 79
CHUNKS = 16


def _graph():
    app = get_application("STREAM-Loop")
    program = app.program(N, iterations=ITERATIONS, sync=False)
    return expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, CHUNKS)
        ],
    )


def measure_dependence_perf() -> dict:
    """Time both builders on the same expansion; returns the record."""
    fast_times = []
    for _ in range(3):
        graph = _graph()
        t0 = time.perf_counter()
        build_dependences(graph)
        fast_times.append(time.perf_counter() - t0)
    instances = len(graph.instances)

    graph = _graph()
    t0 = time.perf_counter()
    build_dependences_reference(graph)
    ref_time = time.perf_counter() - t0

    fast_time = min(fast_times)
    return {
        "instances": instances,
        "fast_s": fast_time,
        "reference_s": ref_time,
        "fast_instances_per_sec": instances / fast_time,
        "reference_instances_per_sec": instances / ref_time,
        "speedup": ref_time / fast_time,
    }


def measure_cache_hit_rates() -> dict:
    """Run the same sweep twice; the second pass should replay the memos."""
    platform = shen_icpp15_platform()
    cells = [
        SweepCell(
            app=app, strategy=strategy, platform=platform,
            n=4096, iterations=2,
        )
        for app in ("STREAM-Loop", "HotSpot")
        for strategy in ("DP-Perf", "SP-Single" if app == "HotSpot" else "SP-Unified")
    ]
    clear_all()
    run_sweep(cells)  # cold pass populates the stores
    cold = {name: s.as_dict() for name, s in cache_stats().items()}
    run_sweep(cells)  # warm pass should be mostly hits
    warm = {name: s.as_dict() for name, s in cache_stats().items()}
    return {"cold": cold, "warm": warm}


def record() -> dict:
    payload = {
        "benchmark": "pipeline_perf",
        "scenario": {
            "app": "STREAM-Loop",
            "n": N,
            "iterations": ITERATIONS,
            "chunks": CHUNKS,
        },
        "dependence": measure_dependence_perf(),
        "caches": measure_cache_hit_rates(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check(payload: dict) -> None:
    dep = payload["dependence"]
    assert dep["instances"] >= 5000, dep
    assert dep["speedup"] >= SPEEDUP_FLOOR, dep
    assert dep["fast_instances_per_sec"] >= INSTANCES_PER_SEC_FLOOR, dep
    warm = payload["caches"]["warm"]
    # the repeated sweep replays probes and predictions from the memos
    for store in ("probe", "profile", "glinda"):
        assert warm[store]["hits"] > 0, warm


def test_pipeline_perf(benchmark):
    payload = benchmark.pedantic(record, rounds=1, iterations=1)
    check(payload)
    dep = payload["dependence"]
    from conftest import emit

    emit(
        "Pipeline fast path — dependence analysis + memo hit rates",
        f"instances:            {dep['instances']}\n"
        f"fast builder:         {dep['fast_s'] * 1e3:9.1f} ms "
        f"({dep['fast_instances_per_sec']:,.0f} inst/s)\n"
        f"reference builder:    {dep['reference_s'] * 1e3:9.1f} ms "
        f"({dep['reference_instances_per_sec']:,.0f} inst/s)\n"
        f"speedup:              {dep['speedup']:9.1f}x (floor {SPEEDUP_FLOOR:g}x)\n"
        f"warm probe hit rate:  "
        f"{payload['caches']['warm']['probe']['hit_rate']:9.1%}\n"
        f"wrote {OUTPUT.name}",
    )


def main() -> int:
    payload = record()
    check(payload)
    dep = payload["dependence"]
    print(
        f"pipeline perf: {dep['instances']} instances, "
        f"fast {dep['fast_instances_per_sec']:,.0f} inst/s, "
        f"speedup {dep['speedup']:.1f}x -> {OUTPUT}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
