"""Pipeline fast-path performance: dependence analysis, memo hit rates,
sweep return sizes, trace memory, and analytics-query throughput.

Times the frontier dependence builder against the reference full-history
scan on a 5000+-instance single-barrier-window program (the shape the
O(n^2) scan is worst at), measures the probe/plan cache hit rates across a
repeated sweep (in-process and through a disk snapshot round-trip), sizes
the default summarized ``run_sweep`` returns against full-trace artifacts,
measures the array-backed trace columns against the old list-backed
layout, times the aggregate/analysis queries on both the vectorized and
the pure-Python path, checks that parallel workers reproduce the serial
hit rates from the shipped cache snapshot, shards a warm sweep over two
real socket-connected worker processes (``sweep_distributed``: cells/sec,
bytes-on-wire per cell, byte-identity with the serial run), streams a
sweep over a skewed pool — one worker deterministically delayed — to
measure time-to-first-result, inter-arrival gaps, the adaptive
dispatcher's work split, and its elapsed-time edge over fixed batching
(``sweep_streaming``), embeds the event-core engine comparison from
``bench_event_core.py`` (``sim_core``: events/sec of the slot-dispatched
fast engine vs the closure oracle, end-to-end run speedup, cross-engine
artifact byte parity, fused dispatch), plays the measured-ranking
tournament on the Table III machine (``matchmaking``: tournament
matches/sec cold and replayed, and the fraction of (class, sync) cells
where the measured ordering agrees with Table I), and records everything
to ``BENCH_pipeline.json`` so CI can track the numbers over time.

``--check-baseline [FILE]`` additionally compares the fresh record against
the committed ``benchmarks/BENCH_pipeline.baseline.json`` with a tolerance
band and exits non-zero on regression (hardware-robust metrics only:
ratios, byte sizes, hit rates, parity — not absolute wall-clock).

Runs both under pytest (``pytest benchmarks/bench_pipeline_perf.py``) and
as a plain script (``python benchmarks/bench_pipeline_perf.py``) for the
CI perf-smoke job.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.apps import get_application
from repro.artifact import artifact_nbytes
from repro.bench.harness import SweepCell, run_sweep
from repro.cache import (
    cache_stats,
    clear_all,
    counters,
    load_snapshot,
    save_snapshot,
    stats_delta,
)
from repro.platform import shen_icpp15_platform
from repro.runtime.dependence import (
    build_dependences,
    build_dependences_reference,
)
from repro.runtime.graph import chunk_ranges, expand_program
from repro.sim.analysis import analyze_trace, compute_overlap_fraction

import bench_event_core

#: where the recorded numbers land (repo root, next to ROADMAP.md)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
#: the committed reference record CI compares fresh runs against
BASELINE = Path(__file__).resolve().parent / "BENCH_pipeline.baseline.json"

#: acceptance floor: the frontier builder must beat the reference by this
SPEEDUP_FLOOR = 10.0
#: generous CI floor on the fast builder's throughput (measured ~85k/s)
INSTANCES_PER_SEC_FLOOR = 2_000.0
#: summarized sweep returns must pickle at least this much smaller
SWEEP_BYTES_RATIO_FLOOR = 10.0
#: whole-store floor: label text dominates both layouts (labels are
#: near-unique), so the end-to-end shrink is modest even though the
#: numeric columns shrink ~4x
TRACE_SHRINK_FLOOR = 1.25
#: the array('d') start/end columns vs pointer lists + boxed floats
NUMERIC_SHRINK_FLOOR = 3.0
#: the vectorized analytics path must beat pure Python at least this much
ANALYTICS_SPEEDUP_FLOOR = 3.0

#: the adversarial shape: one long barrier-free window of many instances
N = 1 << 16
ITERATIONS = 79
CHUNKS = 16

#: the sweep-return sizing cell: a 5000+-instance STREAM-Loop execution
SWEEP_ITERATIONS = 110


def _graph():
    app = get_application("STREAM-Loop")
    program = app.program(N, iterations=ITERATIONS, sync=False)
    return expand_program(
        program,
        lambda inv: [
            (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, CHUNKS)
        ],
    )


def measure_dependence_perf() -> dict:
    """Time both builders on the same expansion; returns the record."""
    fast_times = []
    for _ in range(3):
        graph = _graph()
        t0 = time.perf_counter()
        build_dependences(graph)
        fast_times.append(time.perf_counter() - t0)
    instances = len(graph.instances)

    graph = _graph()
    t0 = time.perf_counter()
    build_dependences_reference(graph)
    ref_time = time.perf_counter() - t0

    fast_time = min(fast_times)
    return {
        "instances": instances,
        "fast_s": fast_time,
        "reference_s": ref_time,
        "fast_instances_per_sec": instances / fast_time,
        "reference_instances_per_sec": instances / ref_time,
        "speedup": ref_time / fast_time,
    }


def _hit_rate_cells():
    platform = shen_icpp15_platform()
    return [
        SweepCell(
            app=app, strategy=strategy, platform=platform,
            n=4096, iterations=2,
        )
        for app in ("STREAM-Loop", "HotSpot")
        for strategy in ("DP-Perf", "SP-Single" if app == "HotSpot" else "SP-Unified")
    ]


def measure_cache_hit_rates() -> dict:
    """Run the same sweep twice; the second pass should replay the memos."""
    cells = _hit_rate_cells()
    clear_all()
    run_sweep(cells)  # cold pass populates the stores
    cold = {name: s.as_dict() for name, s in cache_stats().items()}
    run_sweep(cells)  # warm pass should be mostly hits
    warm = {name: s.as_dict() for name, s in cache_stats().items()}
    return {"cold": cold, "warm": warm}


def measure_disk_cache() -> dict:
    """A disk snapshot round-trip must reproduce the in-process warm rates.

    This is the cross-invocation warm start (`--cache-dir` on the CLI)
    measured in-process: warm the stores, snapshot to disk, clear, reload,
    and re-run — the reloaded pass must observe exactly the hit/miss
    deltas the in-process warm pass did.
    """
    cells = _hit_rate_cells()
    clear_all()
    run_sweep(cells)  # cold pass populates the stores
    before = counters()
    run_sweep(cells)
    warm = stats_delta(before)  # in-process warm reference
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "memo_snapshot.pkl"
        entries = save_snapshot(path)
        clear_all()  # simulate a fresh CLI invocation
        loaded = load_snapshot(path)
        before = counters()
        run_sweep(cells)
        reloaded = stats_delta(before)
    return {
        "entries_saved": entries,
        "entries_loaded": loaded,
        "warm": warm,
        "reloaded": reloaded,
        "match": warm == reloaded,
    }


def measure_sweep_return_bytes() -> dict:
    """Pickled size of a 5000+-instance sweep return: summary vs full."""
    platform = shen_icpp15_platform()
    cell = SweepCell(
        app="STREAM-Loop", strategy="DP-Perf", platform=platform,
        n=N, iterations=SWEEP_ITERATIONS, sync=False,
    )
    clear_all()
    [full] = run_sweep([cell], detail="full")
    clear_all()
    [summary] = run_sweep([cell])  # the default is detail="summary"
    full_bytes = artifact_nbytes(full)
    summary_bytes = artifact_nbytes(summary)
    return {
        "instances": full.instance_count,
        "full_bytes": full_bytes,
        "summary_bytes": summary_bytes,
        "bytes_ratio": full_bytes / summary_bytes,
    }


def _full_trace_store():
    """One full-detail 5000+-instance STREAM-Loop trace store."""
    platform = shen_icpp15_platform()
    cell = SweepCell(
        app="STREAM-Loop", strategy="DP-Perf", platform=platform,
        n=N, iterations=SWEEP_ITERATIONS, sync=False,
    )
    clear_all()
    [result] = run_sweep([cell], detail="full")
    return result.trace.store


def _time_query_rounds(store, rounds: int = 50) -> tuple[int, float]:
    """Run the aggregate-query set ``rounds`` times; (queries, seconds)."""
    t0 = time.perf_counter()
    for _ in range(rounds):
        store.makespan()
        store.elements_by_device()
        store.instance_count_by_device()
        store.ratio_by_kernel()
        store.transfer_time_by_direction()
        for rid in store.resource_ids_seen():
            store.busy_time(rid)
    elapsed = time.perf_counter() - t0
    return rounds * (5 + len(store.resource_ids_seen())), elapsed


def measure_summary_query_perf() -> dict:
    """Aggregate-query throughput: vectorized path vs pure-Python path.

    ``queries_per_sec`` is whatever the default path achieves (the numpy
    view when available); ``python_queries_per_sec`` forces the fallback
    with ``REPRO_NO_NUMPY``.  ``vector_speedup`` is their ratio — the
    hardware-robust number the committed baseline tracks.
    """
    store = _full_trace_store()
    store.vec_view()  # build the view outside the timed region
    queries, elapsed = _time_query_rounds(store)
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        py_queries, py_elapsed = _time_query_rounds(store)
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    vectorized = store.vec_view() is not None
    out = {
        "records": len(store.starts),
        "queries": queries,
        "elapsed_s": elapsed,
        "queries_per_sec": queries / elapsed,
        "python_queries_per_sec": py_queries / py_elapsed,
        "vectorized": vectorized,
    }
    out["vector_speedup"] = (
        out["queries_per_sec"] / out["python_queries_per_sec"]
    )
    return out


def measure_analysis_perf() -> dict:
    """End-to-end ``analyze_trace`` + overlap sweep, both paths."""
    store = _full_trace_store()
    store.vec_view()
    rounds = 10
    t0 = time.perf_counter()
    for _ in range(rounds):
        analyze_trace(store)
        compute_overlap_fraction(store)
    elapsed = time.perf_counter() - t0
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        t0 = time.perf_counter()
        for _ in range(rounds):
            analyze_trace(store)
            compute_overlap_fraction(store)
        py_elapsed = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    return {
        "records": len(store.starts),
        "rounds": rounds,
        "analyses_per_sec": 2 * rounds / elapsed,
        "python_analyses_per_sec": 2 * rounds / py_elapsed,
        "vector_speedup": py_elapsed / elapsed,
    }


def _list_layout_nbytes(store) -> int:
    """Estimated bytes of the same columns in the PR 2 list-backed layout.

    Reconstructs what the old storage held: five object-pointer list
    columns plus a meta-index list, fresh float objects per row (the
    simulator computed a new float per append), one string object per
    label (f-string built per occupation), shared string objects for
    resource ids and categories, and boxed ints for meta indexes beyond
    the small-int cache.
    """
    n = len(store)
    floats = [float(x) for x in store.starts]
    pointer_list = sys.getsizeof(floats)  # same length => same list size
    total = 6 * pointer_list  # resource_ids/labels/categories/starts/ends/meta_idx
    total += 2 * n * sys.getsizeof(1.0)  # starts + ends float objects
    total += sum(
        sys.getsizeof(store.label_at(row)) for row in range(n)
    )
    total += sum(sys.getsizeof(s) for s in store.resource_pool.table)
    total += sum(sys.getsizeof(s) for s in store.category_pool.table)
    total += sum(sys.getsizeof(257) for idx in store.meta_idx if idx > 256)
    return total


def measure_trace_memory() -> dict:
    """Array-backed column bytes vs the old list-backed layout.

    ``shrink_ratio`` is the whole-store comparison (including the shared
    label/resource/category string payload, identical in both layouts);
    ``numeric_shrink_ratio`` isolates the start/end columns, where two
    pointer lists plus two boxed floats per row (64 B) collapse to two
    raw doubles (16 B).
    """
    store = _full_trace_store()
    column_bytes = store.column_nbytes()
    list_bytes = _list_layout_nbytes(store)
    records = len(store)
    numeric_column_bytes = sys.getsizeof(store.starts) + sys.getsizeof(store.ends)
    pointer_list = sys.getsizeof([0.0] * records)
    numeric_list_bytes = 2 * pointer_list + 2 * records * sys.getsizeof(1.0)
    # lazy labels: rows carrying a packed (template, args) label instead
    # of an interned formatted string, and what those strings would cost
    packed_rows = sum(1 for code in store.label_codes if code < 0)
    label_packed_bytes = sum(
        sys.getsizeof(getattr(store, name))
        for name in (
            "label_tmpl_codes", "label_arg_strs",
            "label_arg_a", "label_arg_b", "label_arg_c",
        )
    )
    for pool in (store.label_tmpl_pool, store.label_arg_pool):
        label_packed_bytes += sys.getsizeof(pool.table)
        label_packed_bytes += sum(sys.getsizeof(s) for s in pool.table)
    unique_labels = {store.label_at(row) for row in range(records)}
    label_eager_bytes = sys.getsizeof(list(unique_labels)) + sum(
        sys.getsizeof(s) for s in unique_labels
    )
    return {
        "records": records,
        "column_bytes": column_bytes,
        "list_layout_bytes": list_bytes,
        "bytes_per_record": column_bytes / records,
        "shrink_ratio": list_bytes / column_bytes,
        "numeric_column_bytes": numeric_column_bytes,
        "numeric_list_bytes": numeric_list_bytes,
        "numeric_shrink_ratio": numeric_list_bytes / numeric_column_bytes,
        "label_packed_rows": packed_rows,
        "label_packed_fraction": packed_rows / records if records else 0.0,
        "label_packed_bytes": label_packed_bytes,
        "label_eager_bytes": label_eager_bytes,
        "label_shrink_ratio": (
            label_eager_bytes / label_packed_bytes if label_packed_bytes else 0.0
        ),
    }


def _aggregate_cache_deltas(results) -> dict:
    """Sum the per-artifact cache stats a sweep's runs observed."""
    total: dict[str, dict[str, int]] = {}
    for r in results:
        for store, delta in r.cache_stats.items():
            t = total.setdefault(store, {"hits": 0, "misses": 0})
            t["hits"] += delta["hits"]
            t["misses"] += delta["misses"]
    for t in total.values():
        seen = t["hits"] + t["misses"]
        t["hit_rate"] = t["hits"] / seen if seen else 0.0
    return {name: total[name] for name in sorted(total)}


def measure_worker_parity() -> dict:
    """Parallel workers must reproduce the serial hit rates.

    The parent's memo stores are snapshotted into each worker, so a warm
    parallel sweep sees exactly the hits a warm serial sweep does.
    """
    platform = shen_icpp15_platform()
    cells = [
        SweepCell(
            app=app, strategy=strategy, platform=platform,
            n=4096, iterations=2,
        )
        for app in ("STREAM-Loop", "HotSpot")
        for strategy in ("DP-Perf", "SP-Unified" if app == "STREAM-Loop" else "SP-Single")
    ]
    clear_all()
    run_sweep(cells)  # warm the parent stores
    serial = _aggregate_cache_deltas(run_sweep(cells, jobs=1))
    parallel = _aggregate_cache_deltas(run_sweep(cells, jobs=2))
    return {
        "serial": serial,
        "parallel": parallel,
        "match": serial == parallel,
    }


def _spawn_bench_worker(tmp: Path, name: str, extra: tuple[str, ...] = ()):
    """Start ``python -m repro.distrib.worker`` on an ephemeral loopback
    port; returns ``(process, endpoint)`` once the ready-file handshake
    lands."""
    import subprocess

    src = Path(__file__).resolve().parent.parent / "src"
    ready = tmp / f"{name}.ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker",
         "--listen", "127.0.0.1:0", "--ready-file", str(ready), *extra],
        env=env, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if ready.exists():
            endpoint = ready.read_text().strip()
            if endpoint:
                return proc, endpoint
        if proc.poll() is not None:
            raise RuntimeError(f"bench worker {name} exited at startup")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"bench worker {name} never became ready")


def measure_sweep_distributed() -> dict:
    """Shard a warm sweep over two real worker processes.

    Records throughput (cells/sec) and the wire cost per cell, and — the
    number the baseline actually guards — whether the distributed
    artifacts are *byte-identical* (equal pickles) to the serial run.
    """
    import pickle

    from repro.distrib import last_sweep_reports

    platform = shen_icpp15_platform()
    cells = [
        SweepCell(
            app=app, strategy=strategy, platform=platform,
            n=4096, iterations=2,
        )
        for app in ("STREAM-Loop", "HotSpot")
        for strategy in (
            "Only-CPU", "Only-GPU", "DP-Perf",
            "SP-Unified" if app == "STREAM-Loop" else "SP-Single",
        )
    ]
    clear_all()
    run_sweep(cells)  # warm the memo stores
    serial = run_sweep(cells)
    with tempfile.TemporaryDirectory() as tmp:
        workers = [_spawn_bench_worker(Path(tmp), f"w{i}") for i in range(2)]
        try:
            t0 = time.perf_counter()
            dist = run_sweep(cells, workers=[ep for _, ep in workers])
            elapsed = time.perf_counter() - t0
        finally:
            for proc, _ in workers:
                proc.terminate()
    reports = last_sweep_reports()
    wire_bytes = sum(r.wire_bytes for r in reports)
    parity = all(
        pickle.dumps(a, 5) == pickle.dumps(b, 5)
        for a, b in zip(serial, dist)
    )
    return {
        "workers": len(workers),
        "cells": len(cells),
        "elapsed_s": elapsed,
        "cells_per_sec": len(cells) / elapsed,
        "wire_bytes": wire_bytes,
        "wire_bytes_per_cell": wire_bytes / len(cells),
        "cells_per_worker": [r.cells for r in reports],
        "remote_hit_rate": (
            sum(r.cache_hits for r in reports)
            / max(1, sum(r.cache_hits + r.cache_misses for r in reports))
        ),
        "parity": parity,
    }


#: skewed-pool streaming bench: injected per-cell delay on the slow
#: worker (dominates the ~5 ms cell cost, so the ratios below are
#: hardware-robust) and the cell count the pool shares
STREAMING_DELAY_S = 0.08
STREAMING_CELLS = 20
#: adaptive dispatch must beat fixed half-the-sweep batches at least this
#: much on the skewed pool (sleep math alone guarantees ~2x)
ADAPTIVE_SPEEDUP_FLOOR = 1.2


def measure_sweep_streaming() -> dict:
    """Stream a sweep over a skewed two-worker pool (one delayed).

    Measures how quickly the first result lands relative to the whole
    sweep (``time_to_first_cell_s`` / ``first_cell_fraction``), the mean
    inter-arrival gap between streamed results, how the adaptive
    dispatcher splits a skewed pool (``cells_per_worker``), and its
    elapsed-time edge over fixed half-the-sweep batches
    (``adaptive_vs_fixed_speedup``) — plus byte-parity of the streamed
    results against the serial run.
    """
    import pickle

    from repro.bench.harness import run_sweep_iter
    from repro.distrib import last_sweep_reports

    platform = shen_icpp15_platform()
    strategies = ("Only-CPU", "Only-GPU", "DP-Perf", "SP-Unified", "DP-Dep")
    cells = [
        SweepCell(
            app="STREAM-Loop", strategy=strategies[i % len(strategies)],
            platform=platform, n=256, iterations=1, sync=False,
        )
        for i in range(STREAMING_CELLS)
    ]
    clear_all()
    run_sweep(cells)  # warm the memo stores
    serial = run_sweep(cells)
    delay = ("--delay-per-cell", str(STREAMING_DELAY_S))
    with tempfile.TemporaryDirectory() as tmp:
        fast_proc, fast_ep = _spawn_bench_worker(Path(tmp), "fast")
        slow_proc, slow_ep = _spawn_bench_worker(Path(tmp), "slow", delay)
        try:
            results = [None] * len(cells)
            arrivals = []
            t0 = time.perf_counter()
            for index, artifact in run_sweep_iter(
                cells, workers=[fast_ep, slow_ep]
            ):
                arrivals.append(time.perf_counter() - t0)
                results[index] = artifact
            adaptive_s = arrivals[-1]
            by_endpoint = {r.endpoint: r for r in last_sweep_reports()}

            t0 = time.perf_counter()
            fixed = run_sweep(
                cells, workers=[fast_ep, slow_ep],
                batch_size=len(cells) // 2,
            )
            fixed_s = time.perf_counter() - t0
        finally:
            fast_proc.terminate()
            slow_proc.terminate()
    parity = all(
        pickle.dumps(a, 5) == pickle.dumps(b, 5)
        for a, b in zip(serial, results)
    ) and all(
        pickle.dumps(a, 5) == pickle.dumps(b, 5)
        for a, b in zip(serial, fixed)
    )
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    return {
        "cells": len(cells),
        "slow_delay_s": STREAMING_DELAY_S,
        "elapsed_s": adaptive_s,
        "time_to_first_cell_s": arrivals[0],
        "first_cell_fraction": arrivals[0] / adaptive_s,
        "mean_interarrival_s": sum(gaps) / len(gaps),
        "cells_per_worker": {
            "fast": by_endpoint[fast_ep].cells,
            "slow": by_endpoint[slow_ep].cells,
        },
        "fast_largest_batch": by_endpoint[fast_ep].largest_batch,
        "fixed_batch_size": len(cells) // 2,
        "fixed_elapsed_s": fixed_s,
        "adaptive_vs_fixed_speedup": fixed_s / adaptive_s,
        "parity": parity,
    }


def measure_matchmaking() -> dict:
    """Tournament throughput and measured-vs-Table-I agreement.

    Plays the full round-robin on the paper's Table III machine cold
    (every match simulated), replays it warm (every match a memo hit),
    and scores the measured per-class orderings against Table I with the
    standard tie tolerance.
    """
    from repro.bench.matchup import compare_to_table
    from repro.cache import get_cache
    from repro.core.tournament import run_tournament

    platform = shen_icpp15_platform()
    clear_all()
    get_cache("tournament").clear()
    t0 = time.perf_counter()
    cold = run_tournament(platform)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_tournament(platform)
    warm_s = time.perf_counter() - t0
    report = compare_to_table(cold)
    return {
        "matches": len(cold.matches),
        "simulated": cold.simulated,
        "cold_s": cold_s,
        "matches_per_sec": cold.simulated / cold_s,
        "warm_replay_s": warm_s,
        "warm_simulated": warm.simulated,
        "warm_matches_per_sec": len(warm.matches) / warm_s,
        "table_agreement": report.agreement,
        "divergent_cells": [cell.label for cell in report.divergent],
    }


def record() -> dict:
    payload = {
        "benchmark": "pipeline_perf",
        "scenario": {
            "app": "STREAM-Loop",
            "n": N,
            "iterations": ITERATIONS,
            "chunks": CHUNKS,
        },
        "dependence": measure_dependence_perf(),
        "caches": measure_cache_hit_rates(),
        "disk_cache": measure_disk_cache(),
        "sweep_returns": measure_sweep_return_bytes(),
        "summary_queries": measure_summary_query_perf(),
        "analysis": measure_analysis_perf(),
        "trace_memory": measure_trace_memory(),
        "worker_parity": measure_worker_parity(),
        "sweep_distributed": measure_sweep_distributed(),
        "sweep_streaming": measure_sweep_streaming(),
        "sim_core": bench_event_core.measure_sim_core(),
        "matchmaking": measure_matchmaking(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check(payload: dict) -> None:
    dep = payload["dependence"]
    assert dep["instances"] >= 5000, dep
    assert dep["speedup"] >= SPEEDUP_FLOOR, dep
    assert dep["fast_instances_per_sec"] >= INSTANCES_PER_SEC_FLOOR, dep
    warm = payload["caches"]["warm"]
    # the repeated sweep replays probes and predictions from the memos
    for store in ("probe", "profile", "glinda"):
        assert warm[store]["hits"] > 0, warm
    sweep = payload["sweep_returns"]
    assert sweep["instances"] >= 5000, sweep
    assert sweep["bytes_ratio"] >= SWEEP_BYTES_RATIO_FLOOR, sweep
    assert payload["worker_parity"]["match"], payload["worker_parity"]
    assert payload["disk_cache"]["match"], payload["disk_cache"]
    memory = payload["trace_memory"]
    assert memory["shrink_ratio"] >= TRACE_SHRINK_FLOOR, memory
    assert memory["numeric_shrink_ratio"] >= NUMERIC_SHRINK_FLOOR, memory
    queries = payload["summary_queries"]
    if queries["vectorized"]:
        assert queries["vector_speedup"] >= ANALYTICS_SPEEDUP_FLOOR, queries
    distributed = payload["sweep_distributed"]
    assert distributed["parity"], distributed
    assert sum(distributed["cells_per_worker"]) == distributed["cells"], distributed
    assert memory["label_packed_fraction"] > 0.9, memory
    streaming = payload["sweep_streaming"]
    assert streaming["parity"], streaming
    # the first streamed result lands well before the sweep finishes
    assert streaming["time_to_first_cell_s"] < streaming["elapsed_s"], streaming
    assert streaming["first_cell_fraction"] < 0.75, streaming
    # the adaptive dispatcher starves the delayed worker, not the fast one
    cpw = streaming["cells_per_worker"]
    assert cpw["fast"] > cpw["slow"], streaming
    assert cpw["fast"] + cpw["slow"] == streaming["cells"], streaming
    assert streaming["adaptive_vs_fixed_speedup"] >= ADAPTIVE_SPEEDUP_FLOOR, \
        streaming
    matchmaking = payload["matchmaking"]
    assert matchmaking["simulated"] > 0, matchmaking
    # the warm replay must resolve every match from the memo store
    assert matchmaking["warm_simulated"] == 0, matchmaking
    assert 0.0 <= matchmaking["table_agreement"] <= 1.0, matchmaking
    bench_event_core.check(payload["sim_core"])


#: baseline comparisons: (json path, direction, relative tolerance).
#: Only hardware-robust metrics — ratios, sizes, hit rates — never raw
#: wall-clock, so the committed baseline holds across CI machines.
BASELINE_CHECKS = [
    ("dependence.speedup", "min", 0.5),
    ("sweep_returns.bytes_ratio", "min", 0.2),
    ("sweep_returns.summary_bytes", "max", 0.5),
    ("caches.warm.probe.hit_rate", "min", 0.05),
    ("caches.warm.profile.hit_rate", "min", 0.05),
    ("caches.warm.glinda.hit_rate", "min", 0.05),
    ("summary_queries.vector_speedup", "min", 0.5),
    ("analysis.vector_speedup", "min", 0.5),
    ("trace_memory.shrink_ratio", "min", 0.3),
    ("trace_memory.numeric_shrink_ratio", "min", 0.2),
    ("trace_memory.bytes_per_record", "max", 0.3),
    ("trace_memory.label_shrink_ratio", "min", 0.3),
    ("trace_memory.label_packed_fraction", "min", 0.05),
    ("sweep_distributed.wire_bytes_per_cell", "max", 0.5),
    ("sweep_distributed.remote_hit_rate", "min", 0.05),
    ("sweep_streaming.adaptive_vs_fixed_speedup", "min", 0.5),
    ("sweep_streaming.first_cell_fraction", "max", 1.5),
    ("sim_core.fast_vs_oracle_speedup", "min", 0.5),
    ("sim_core.untraced_engine_speedup", "min", 0.5),
    ("sim_core.traced_speedup", "min", 0.5),
    ("sim_core.traced_lane_speedup", "min", 0.5),
    ("sim_core.traced_batch_speedup", "min", 0.5),
    ("sim_core.plan_eval.plans_vs_simulate_speedup", "min", 0.5),
    ("sim_core.wave_drain.synced_plans_vs_simulate_speedup", "min", 0.5),
    ("matchmaking.table_agreement", "min", 0.05),
]


def _lookup(payload: dict, dotted: str):
    node = payload
    for key in dotted.split("."):
        node = node[key]
    return node


def compare_to_baseline(payload: dict, baseline_path: Path | None = None) -> list[str]:
    """Tolerance-banded regression check; returns failure messages."""
    path = baseline_path or BASELINE
    baseline = json.loads(path.read_text())
    failures = []
    for dotted, direction, tol in BASELINE_CHECKS:
        try:
            base = _lookup(baseline, dotted)
        except KeyError:
            continue  # metric added after the baseline was frozen
        got = _lookup(payload, dotted)
        if direction == "min":
            floor = base * (1.0 - tol)
            if got < floor:
                failures.append(
                    f"{dotted}: {got:.4g} below baseline band "
                    f"(>= {floor:.4g}, baseline {base:.4g})"
                )
        else:
            ceiling = base * (1.0 + tol)
            if got > ceiling:
                failures.append(
                    f"{dotted}: {got:.4g} above baseline band "
                    f"(<= {ceiling:.4g}, baseline {base:.4g})"
                )
    if not payload["worker_parity"]["match"]:
        failures.append("worker_parity: parallel hit rates diverge from serial")
    if not payload["disk_cache"]["match"]:
        failures.append(
            "disk_cache: snapshot-reloaded hit rates diverge from warm in-process"
        )
    if not payload["sweep_distributed"]["parity"]:
        failures.append(
            "sweep_distributed: artifacts not byte-identical to the serial run"
        )
    if not payload["sweep_streaming"]["parity"]:
        failures.append(
            "sweep_streaming: streamed artifacts not byte-identical to the "
            "serial run"
        )
    if not payload["sim_core"]["parity"]:
        failures.append(
            "sim_core: fast-engine artifacts not byte-identical to the oracle"
        )
    return failures


def test_pipeline_perf(benchmark):
    payload = benchmark.pedantic(record, rounds=1, iterations=1)
    check(payload)
    dep = payload["dependence"]
    sweep = payload["sweep_returns"]
    queries = payload["summary_queries"]
    memory = payload["trace_memory"]
    from conftest import emit

    emit(
        "Pipeline fast path — dependences, memos, columns, vector analytics",
        f"instances:            {dep['instances']}\n"
        f"fast builder:         {dep['fast_s'] * 1e3:9.1f} ms "
        f"({dep['fast_instances_per_sec']:,.0f} inst/s)\n"
        f"reference builder:    {dep['reference_s'] * 1e3:9.1f} ms "
        f"({dep['reference_instances_per_sec']:,.0f} inst/s)\n"
        f"speedup:              {dep['speedup']:9.1f}x (floor {SPEEDUP_FLOOR:g}x)\n"
        f"warm probe hit rate:  "
        f"{payload['caches']['warm']['probe']['hit_rate']:9.1%}\n"
        f"disk cache round-trip: "
        f"{'ok' if payload['disk_cache']['match'] else 'DIVERGED'} "
        f"({payload['disk_cache']['entries_loaded']} entries reloaded)\n"
        f"sweep return:         {sweep['summary_bytes']:,} B summarized vs "
        f"{sweep['full_bytes']:,} B full ({sweep['bytes_ratio']:.0f}x)\n"
        f"summary queries:      {queries['queries_per_sec']:,.0f} /s "
        f"(python {queries['python_queries_per_sec']:,.0f} /s, "
        f"{queries['vector_speedup']:.1f}x)\n"
        f"analysis:             "
        f"{payload['analysis']['analyses_per_sec']:,.1f} /s "
        f"({payload['analysis']['vector_speedup']:.1f}x vectorized)\n"
        f"trace memory:         {memory['column_bytes']:,} B columnar vs "
        f"{memory['list_layout_bytes']:,} B list layout "
        f"({memory['shrink_ratio']:.1f}x, "
        f"{memory['bytes_per_record']:.1f} B/record)\n"
        f"worker parity:        "
        f"{'ok' if payload['worker_parity']['match'] else 'DIVERGED'}\n"
        f"distributed sweep:    "
        f"{payload['sweep_distributed']['cells_per_sec']:,.1f} cells/s over "
        f"{payload['sweep_distributed']['workers']} workers, "
        f"{payload['sweep_distributed']['wire_bytes_per_cell']:,.0f} B/cell "
        f"on the wire, parity "
        f"{'ok' if payload['sweep_distributed']['parity'] else 'DIVERGED'}\n"
        f"streaming sweep:      first cell "
        f"{payload['sweep_streaming']['time_to_first_cell_s'] * 1e3:.0f} ms "
        f"of {payload['sweep_streaming']['elapsed_s'] * 1e3:.0f} ms, "
        f"adaptive {payload['sweep_streaming']['adaptive_vs_fixed_speedup']:.1f}x "
        f"vs fixed on a skewed pool, split "
        f"{payload['sweep_streaming']['cells_per_worker']['fast']}/"
        f"{payload['sweep_streaming']['cells_per_worker']['slow']}, parity "
        f"{'ok' if payload['sweep_streaming']['parity'] else 'DIVERGED'}\n"
        f"lazy labels:          "
        f"{memory['label_packed_fraction']:.0%} rows packed "
        f"({memory['label_shrink_ratio']:.1f}x vs formatted strings)\n"
        f"event core:           "
        f"{payload['sim_core']['events_per_sec']:,.0f} ev/s fast lane vs "
        f"{payload['sim_core']['oracle_traced_events_per_sec']:,.0f} ev/s "
        f"oracle ({payload['sim_core']['fast_vs_oracle_speedup']:.1f}x, "
        f"floor {bench_event_core.EVENTS_SPEEDUP_FLOOR:g}x), "
        f"traced batch {payload['sim_core']['traced_batch_speedup']:.1f}x "
        f"(floor {bench_event_core.TRACED_BATCH_FLOOR:g}x), "
        f"run {payload['sim_core']['run_speedup']:.2f}x, parity "
        f"{'ok' if payload['sim_core']['parity'] else 'DIVERGED'}\n"
        f"matchmaking:          "
        f"{payload['matchmaking']['simulated']} matches at "
        f"{payload['matchmaking']['matches_per_sec']:,.1f}/s cold "
        f"({payload['matchmaking']['warm_matches_per_sec']:,.0f}/s replayed), "
        f"Table I agreement "
        f"{payload['matchmaking']['table_agreement']:.0%}\n"
        f"wrote {OUTPUT.name}",
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-baseline", nargs="?", const=str(BASELINE), default=None,
        metavar="FILE",
        help="compare the fresh record against a committed baseline "
             "(default: benchmarks/BENCH_pipeline.baseline.json) and exit "
             "non-zero on regression",
    )
    args = parser.parse_args(argv)

    payload = record()
    check(payload)
    dep = payload["dependence"]
    sweep = payload["sweep_returns"]
    queries = payload["summary_queries"]
    memory = payload["trace_memory"]
    print(
        f"pipeline perf: {dep['instances']} instances, "
        f"fast {dep['fast_instances_per_sec']:,.0f} inst/s, "
        f"speedup {dep['speedup']:.1f}x, "
        f"sweep return {sweep['bytes_ratio']:.0f}x smaller summarized, "
        f"queries {queries['queries_per_sec']:,.0f}/s "
        f"({queries['vector_speedup']:.1f}x vectorized), "
        f"trace columns {memory['shrink_ratio']:.1f}x smaller, "
        f"distributed {payload['sweep_distributed']['cells_per_sec']:,.1f} "
        f"cells/s over {payload['sweep_distributed']['workers']} workers "
        f"(parity {'ok' if payload['sweep_distributed']['parity'] else 'DIVERGED'}), "
        f"streaming first cell at "
        f"{payload['sweep_streaming']['time_to_first_cell_s'] * 1e3:.0f} ms "
        f"(adaptive {payload['sweep_streaming']['adaptive_vs_fixed_speedup']:.1f}x "
        f"vs fixed), "
        f"event core {payload['sim_core']['fast_vs_oracle_speedup']:.1f}x "
        f"(parity {'ok' if payload['sim_core']['parity'] else 'DIVERGED'}), "
        f"matchmaking {payload['matchmaking']['matches_per_sec']:,.1f} "
        f"matches/s with "
        f"{payload['matchmaking']['table_agreement']:.0%} Table I agreement "
        f"-> {OUTPUT}"
    )
    if args.check_baseline is not None:
        failures = compare_to_baseline(payload, Path(args.check_baseline))
        if failures:
            for failure in failures:
                print(f"BASELINE REGRESSION: {failure}")
            return 1
        print(f"baseline check passed against {args.check_baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
