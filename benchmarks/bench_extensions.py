"""Extensions beyond the paper's evaluation (DESIGN.md §7).

* **Multi-accelerator** — Glinda's general case ("one or more
  accelerators, identical or non-identical"): the dual-GPU preset splits
  MatrixMul three ways and beats the single-GPU platform.
* **Imbalanced workloads** — the ref-[9] case: SpMV over a degree-ordered
  heavy-tailed matrix; the work-balanced static split beats index-balanced
  partitioning and both baselines.
"""

from conftest import emit

from repro.apps import get_application
from repro.bench.harness import run_scenario, sk_strategies
from repro.bench.tables import format_time_table
from repro.partition import (
    PlanConfig,
    dynamic_as_static_plan,
    get_strategy,
    run_plan,
)
from repro.platform import dual_gpu_platform


def test_multi_gpu_matrixmul(benchmark, platform):
    dual = dual_gpu_platform()
    program = get_application("MatrixMul").program()

    def measure():
        rows = {}
        for label, plat in (("1 GPU", platform), ("2 GPUs", dual)):
            rows[label] = get_strategy("SP-Single").run(program, plat)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = []
    for label, result in rows.items():
        by_dev = result.trace.elements_by_device(key="device")
        total = sum(by_dev.values())
        split = ", ".join(
            f"{d}={v / total:.0%}" for d, v in sorted(by_dev.items())
        )
        lines.append(f"{label:<7} SP-Single {result.makespan_ms:8.1f} ms  "
                     f"[{split}]")
    emit("Extension — multi-accelerator static split (MatrixMul 6144^2)",
         "\n".join(lines))
    assert rows["2 GPUs"].makespan_s < rows["1 GPU"].makespan_s * 0.75


def test_imbalanced_spmv(benchmark, platform):
    app = get_application("SpMV")
    program = app.program()

    def measure():
        scenario = run_scenario(app, platform, sk_strategies())
        plan = get_strategy("SP-Single").plan(program, platform)
        ratio = plan.decision.notes["imbalanced"].gpu_fraction
        uniform = run_plan(
            dynamic_as_static_plan(program, platform, ratio,
                                   config=PlanConfig()),
            platform,
        )
        return scenario, uniform, plan

    scenario, uniform, plan = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    decision = plan.decision.notes["imbalanced"]
    body = format_time_table([scenario]) + (
        f"\nindex-balanced split at the same work ratio: "
        f"{uniform.makespan_ms:.1f} ms"
        f"\nSP-Single boundary: {decision.gpu_index_fraction:.0%} of the "
        f"rows = {decision.gpu_fraction:.0%} of the work to the GPU"
    )
    emit("Extension — imbalanced SpMV (2M rows, heavy-tailed, "
         "degree-ordered)", body)
    sp = scenario.makespan_ms("SP-Single")
    assert sp < uniform.makespan_ms * 0.9       # work-balance pays
    assert sp < scenario.makespan_ms("Only-GPU")
    assert sp < scenario.makespan_ms("Only-CPU")
    assert scenario.makespan_ms("DP-Perf") <= \
        scenario.makespan_ms("DP-Dep") * 1.12   # Proposition 1 still holds
