"""Figure 9: MK-Seq execution times (STREAM-Seq, with/without sync)."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_time_table
from repro.bench.validation import TIE


def test_fig9_mkseq_times(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig9", platform), rounds=1, iterations=1
    )
    emit("Figure 9 — execution time (ms) of strategies in MK-Seq",
         format_time_table(results))
    without, with_sync = results
    # w/o sync: SP-Unified best, SP-Varied last (ties within tolerance)
    assert without.best_strategy() == "SP-Unified"
    assert without.makespan_ms("DP-Dep") <= \
        without.makespan_ms("SP-Varied") * TIE
    # w sync: SP-Varied best, SP-Unified last
    assert with_sync.best_strategy() == "SP-Varied"
    assert with_sync.makespan_ms("DP-Dep") <= \
        with_sync.makespan_ms("SP-Unified") * TIE
    # SP-Varied identical in both cases (it carries its own sync)
    assert without.makespan_ms("SP-Varied") == \
        with_sync.makespan_ms("SP-Varied")
    # Only-GPU is transfer-bound
    og = without.outcome("Only-GPU").result
    assert og.total_transfer_time_s / og.makespan_s > 0.75
