"""Figure 5: SK-One execution times (MatrixMul 6144^2, BlackScholes 80.5M)."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_time_table


def test_fig5_skone_times(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig5", platform), rounds=1, iterations=1
    )
    emit("Figure 5 — execution time (ms) of strategies in SK-One",
         format_time_table(results))
    for scenario in results:
        # SP-Single wins both applications (paper Summary 1)
        assert scenario.best_strategy() == "SP-Single"
        assert scenario.makespan_ms("SP-Single") <= \
            scenario.makespan_ms("DP-Perf")
        assert scenario.makespan_ms("DP-Perf") <= \
            scenario.makespan_ms("DP-Dep")
