"""Figure 7: SK-Loop execution times (Nbody 1M bodies, HotSpot 8192^2)."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_time_table


def test_fig7_skloop_times(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig7", platform), rounds=1, iterations=1
    )
    emit("Figure 7 — execution time (ms) of strategies in SK-Loop",
         format_time_table(results))
    nbody, hotspot = results
    # SP-Single best among strategies in both applications
    for scenario in results:
        assert scenario.best_strategy() == "SP-Single"
    # Nbody: GPU-dominant; DP-Perf even worse than Only-GPU
    assert nbody.makespan_ms("Only-GPU") * 10 < nbody.makespan_ms("Only-CPU")
    assert nbody.makespan_ms("DP-Perf") > nbody.makespan_ms("Only-GPU")
    # HotSpot: the CPU side wins; SP-Single beats even Only-CPU
    assert hotspot.makespan_ms("Only-CPU") < hotspot.makespan_ms("Only-GPU")
    assert hotspot.makespan_ms("SP-Single") < hotspot.makespan_ms("Only-CPU")
