"""Event-core throughput: slot-dispatched fast engine vs the closure oracle.

Replays the occupation schedule of the pipeline bench scenario (DP-Perf on
STREAM-Loop, the same cell ``bench_pipeline_perf.py`` sizes sweep returns
with) through both simulation engines and records events/sec:

* ``oracle_traced`` — the seed system's only replay path: the closure
  oracle :class:`~repro.sim.engine.Simulator` driving traced
  :class:`~repro.sim.resources.SimResource` objects, one ``occupy()`` per
  occupation with a lazy tuple label and a meta dict, one ``Event``
  dataclass plus one closure per completion, one trace row per occupation;
* ``oracle_untraced`` — the same oracle loop on ``trace=None`` resources
  (untraced replay is a capability this PR added to ``SimResource``, so
  this symmetric comparison isolates the engine loop itself);
* ``fast_traced`` — the production executor path:
  :class:`~repro.sim.fast_engine.FastSimulator` inlining ``_K_FINISH``
  completions over traced resources;
* ``fast_traced_lane`` — the executor's shape after the staged-ingestion
  PR: per-event ``occupy()`` completions writing through pre-interned
  :class:`~repro.sim.tracestore.TraceLane` staging buffers (constants
  interned once per stream, no per-row ``dict(meta)`` copy);
* ``traced_batch`` — the bulk traced intake: one ``occupy_stream`` per
  resource, one heap event + one cumsum + one block-extend per whole
  stream (timed including the lane flush);
* ``fast_lane`` — the headline: ``FastSimulator.replay_lane`` draining the
  same per-resource duration streams as untraced bulk lanes, no per-event
  allocation at all.

The headline ``fast_vs_oracle_speedup`` compares ``fast_lane`` against
``oracle_traced`` — the new engine's replay intake vs what the seed could
do with the same schedule — and must clear ``EVENTS_SPEEDUP_FLOOR``; the
traced production path's ``traced_batch_speedup`` must clear
``TRACED_BATCH_FLOOR``.  The symmetric/traced ratios are recorded
alongside so the numbers' composition stays honest: part engine loop,
part shed tracing machinery, part batching.

Also measures end-to-end wall clock of the full scenario under both
engines (``run_speedup``), verifies their artifacts pickle byte-identical
(``parity``), times fused block dispatch vs per-cell dispatch over a
process pool on cheap cells (``fused``), and measures the plan-evaluator
inner loop of the schedule×partition search (``plan_eval``): prebuilt
compiled plans replayed through :class:`~repro.sim.plan.PlanEvaluator`
vs the fused ``simulate_many`` executor path on the same candidate
cells.  Every ``*_speedup`` ratio is a best-of-rounds ratio (minimum
elapsed per variant), never a mean — a single slow round on a noisy
runner must not fail the CI band.

Runs under pytest (``pytest benchmarks/bench_event_core.py``) and as a
plain script; ``bench_pipeline_perf.py`` embeds the same record as its
``sim_core`` section so CI tracks it in ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

from repro.bench.harness import SweepCell, run_sweep
from repro.cache import clear_all
from repro.platform import shen_icpp15_platform
from repro.sim.engine import Simulator
from repro.sim.fast_engine import FastSimulator
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace

#: standalone-run output (the pipeline bench embeds the same record)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_event_core.json"

#: the bench scenario: the pipeline bench's sweep-return cell
N = 1 << 16
ITERATIONS = 79

#: replay rounds per engine variant (each round replays the full
#: ~4000-occupation schedule on a fresh simulator); one extra warm-up
#: round runs untimed
ROUNDS = 10

#: rounds for the heavier end-to-end / fused / plan-eval sections; their
#: ``*_speedup`` ratios are best-of (minimum elapsed per variant), with
#: engine rounds interleaved so frequency drift hits both sides alike
RUN_ROUNDS = 5

#: acceptance floor: fast-engine lane replay vs the seed's replay path
EVENTS_SPEEDUP_FLOOR = 10.0

#: acceptance floor: bulk traced intake (``occupy_stream`` + lane flush)
#: vs the seed's traced replay path — the tentpole "traced production
#: path >= 3x over the oracle" criterion
TRACED_BATCH_FLOOR = 3.0

#: acceptance floor: the fast engine must not lose end to end — the
#: full ``repro run`` scenario under the fast engine must be at least as
#: fast (best-of-rounds) as under the oracle
RUN_SPEEDUP_FLOOR = 1.0

#: acceptance floor: compiled-plan evaluation vs the fused
#: ``simulate_many`` executor path on the same candidate cells — the
#: search engine's reason to exist
PLAN_EVAL_FLOOR = 10.0

#: acceptance floor: compiled-plan evaluation of *per-iteration-sync*
#: plans (the wave drain's territory — every epoch fenced by a barrier,
#: so the terminal drain never fires) vs the fused executor path
WAVE_DRAIN_FLOOR = 5.0

#: metrics ``--check-baseline`` verifies, all same-process ratios: raw
#: events/sec shifts with runner hardware, but two engine variants timed
#: back-to-back on the same box regress together unless the code did
BASELINE_RATIOS = (
    "fast_vs_oracle_speedup",
    "traced_lane_speedup",
    "traced_batch_speedup",
)

#: nested-section ratios ``--check-baseline`` also verifies: section
#: key -> ratio key within that section (skipped when either file's
#: payload lacks the section)
BASELINE_SECTION_RATIOS = (
    ("wave_drain", "synced_plans_vs_simulate_speedup"),
)

#: allowed relative shortfall below a baseline ratio before the smoke
#: check fails (ratios jitter a little even on one machine)
BASELINE_TOLERANCE = 0.20


def _scenario_cell() -> SweepCell:
    return SweepCell(
        app="STREAM-Loop", strategy="DP-Perf",
        platform=shen_icpp15_platform(), n=N, iterations=ITERATIONS,
        sync=False,
    )


def _scenario_artifact(*, oracle: bool):
    """One cold full-detail scenario run under the chosen engine."""
    prior = os.environ.get("REPRO_NO_FAST_ENGINE")
    os.environ["REPRO_NO_FAST_ENGINE"] = "1" if oracle else "0"
    try:
        clear_all()
        t0 = time.perf_counter()
        [artifact] = run_sweep([_scenario_cell()], detail="full")
        elapsed = time.perf_counter() - t0
    finally:
        if prior is None:
            del os.environ["REPRO_NO_FAST_ENGINE"]
        else:
            os.environ["REPRO_NO_FAST_ENGINE"] = prior
    return artifact, elapsed


def _streams(artifact) -> dict[str, list[tuple[float, str]]]:
    """Per-resource ``(duration, category)`` occupation streams."""
    streams: dict[str, list[tuple[float, str]]] = {}
    for rec in artifact.trace.records:
        streams.setdefault(rec.resource_id, []).append(
            (rec.end - rec.start, rec.category)
        )
    return streams


def _replay_engine(streams, *, fast: bool, traced: bool) -> float:
    """Replay every stream through SimResources on one engine; seconds.

    This is the seed system's replay shape: one ``occupy()`` per
    occupation — lazy tuple label, per-occupation meta dict, trace row —
    with completions dispatched by the engine (closures on the oracle,
    inlined ``_K_FINISH`` events on the fast engine).  ``traced=False``
    runs the same loop on ``trace=None`` resources.
    """
    sim = FastSimulator() if fast else Simulator()
    trace = ExecutionTrace() if traced else None
    t0 = time.perf_counter()
    for rid, occs in streams.items():
        res = SimResource(sim, rid, trace)
        for i, (duration, category) in enumerate(occs):
            res.occupy(
                duration,
                label=("replay {} {}", rid, i),
                category=category,
                meta={"idx": i},
            )
    sim.run()
    return time.perf_counter() - t0


def _replay_engine_lane(streams, *, fast: bool) -> float:
    """Per-event traced replay through staging lanes; seconds.

    Same event count and row content as ``_replay_engine(traced=True)``
    but rows go through pre-interned :class:`TraceLane` buffers — the
    runtime executor's shape after the staged-ingestion PR.  The final
    lane flush is inside the timed region.
    """
    sim = FastSimulator() if fast else Simulator()
    trace = ExecutionTrace()
    t0 = time.perf_counter()
    for rid, occs in streams.items():
        res = SimResource(sim, rid, trace)
        lanes: dict[str, object] = {}
        for i, (duration, category) in enumerate(occs):
            lane = lanes.get(category)
            if lane is None:
                lane = lanes[category] = trace.lane(
                    rid, category, "replay {} {}"
                )
            res.occupy(
                duration,
                label="",
                category=category,
                lane=lane,
                args=(rid, i),
                meta={"idx": i},
            )
    sim.run()
    trace.store._ensure_flushed()
    return time.perf_counter() - t0


def _replay_stream_batches(streams) -> float:
    """Bulk traced replay: one ``occupy_stream`` per resource; seconds.

    The bulk traced intake: a whole resource stream costs one heap
    event, one cumulative-bounds computation, and one columnar
    block-extend (plus the final flush, timed).  Rows carry the same
    formatted labels as the per-event variants; per-row metadata dicts
    are deliberately absent — shedding them is what the bulk API is for.
    Each scenario resource's stream is single-category, so one lane per
    resource suffices.
    """
    durations = {
        rid: [d for d, _ in occs] for rid, occs in streams.items()
    }
    sim = FastSimulator()
    trace = ExecutionTrace()
    t0 = time.perf_counter()
    for rid, occs in streams.items():
        res = SimResource(sim, rid, trace)
        lane = trace.lane(rid, occs[0][1], "replay {} {}")
        ds = durations[rid]
        res.occupy_stream(ds, lane, str_arg=rid, args=range(len(ds)))
    sim.run()
    trace.store._ensure_flushed()
    return time.perf_counter() - t0


def _replay_lanes(streams) -> float:
    """Replay the same streams as fast-engine bulk lanes; seconds."""
    durations = [[d for d, _ in occs] for occs in streams.values()]
    sim = FastSimulator()
    t0 = time.perf_counter()
    for lane in durations:
        sim.replay_lane(lane)
    sim.run()
    return time.perf_counter() - t0


def _best_of(fn, *args, **kwargs) -> float:
    """Minimum of ``ROUNDS`` timed calls, after one untimed warm-up."""
    fn(*args, **kwargs)
    return min(fn(*args, **kwargs) for _ in range(ROUNDS))


def measure_event_core(artifact=None) -> dict:
    """Replay throughput of both engines over the scenario's schedule."""
    if artifact is None:
        artifact, _ = _scenario_artifact(oracle=False)
    streams = _streams(artifact)
    events = sum(len(occs) for occs in streams.values())

    oracle_traced = _best_of(_replay_engine, streams, fast=False, traced=True)
    oracle_untraced = _best_of(_replay_engine, streams, fast=False, traced=False)
    fast_traced = _best_of(_replay_engine, streams, fast=True, traced=True)
    fast_traced_lane = _best_of(_replay_engine_lane, streams, fast=True)
    traced_batch = _best_of(_replay_stream_batches, streams)
    fast_lane = _best_of(_replay_lanes, streams)

    return {
        "events": events,
        "resources": len(streams),
        "rounds": ROUNDS,
        "oracle_traced_events_per_sec": events / oracle_traced,
        "oracle_untraced_events_per_sec": events / oracle_untraced,
        "fast_traced_events_per_sec": events / fast_traced,
        "fast_traced_lane_events_per_sec": events / fast_traced_lane,
        "traced_batch_events_per_sec": events / traced_batch,
        "events_per_sec": events / fast_lane,
        # headline: the fast engine's replay intake vs the seed's only
        # replay path (engine loop + shed tracing machinery combined)
        "fast_vs_oracle_speedup": oracle_traced / fast_lane,
        # honesty splits: engine loop alone, and the traced production
        # path in its three shapes (per-row record, per-event lanes,
        # bulk occupy_stream)
        "untraced_engine_speedup": oracle_untraced / fast_lane,
        "traced_speedup": oracle_traced / fast_traced,
        "traced_lane_speedup": oracle_traced / fast_traced_lane,
        "traced_batch_speedup": oracle_traced / traced_batch,
    }


def _dump_artifact(path: str) -> None:
    """Subprocess entry: run the scenario and pickle the artifact to disk.

    Byte parity must be checked across *fresh* processes: within one
    process the first run's strings pollute the ``sys.intern`` table, so
    the second run's trace no longer shares string objects with its own
    canonicalized summary and the pickle's memo structure (not its
    contents) shifts.
    """
    from repro.sim.fast_engine import fast_engine_enabled

    artifact, _ = _scenario_artifact(oracle=not fast_engine_enabled())
    Path(path).write_bytes(pickle.dumps(artifact, 5))


def _subprocess_artifact_bytes(*, oracle: bool) -> bytes:
    """Scenario artifact pickled in a fresh engine-pinned process."""
    import subprocess
    import sys
    import tempfile

    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_NO_FAST_ENGINE"] = "1" if oracle else "0"
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "artifact.pkl"
        subprocess.run(
            [sys.executable, str(Path(__file__).resolve()),
             "--dump-artifact", str(out)],
            env=env, check=True,
        )
        return out.read_bytes()


def measure_run_parity() -> dict:
    """End-to-end scenario under both engines: wall clock and byte parity.

    Wall clocks come from in-process runs (no interpreter startup in the
    numbers); the parity bit compares artifact pickles produced by fresh
    engine-pinned subprocesses (see :func:`_dump_artifact`).
    """
    fast_art, fast_s = _scenario_artifact(oracle=False)
    _, oracle_s = _scenario_artifact(oracle=True)
    for _ in range(RUN_ROUNDS - 1):
        fast_s = min(fast_s, _scenario_artifact(oracle=False)[1])
        oracle_s = min(oracle_s, _scenario_artifact(oracle=True)[1])
    parity = (
        _subprocess_artifact_bytes(oracle=False)
        == _subprocess_artifact_bytes(oracle=True)
    )
    return {
        "run_rounds": RUN_ROUNDS,
        "fast_run_s": fast_s,
        "oracle_run_s": oracle_s,
        "run_speedup": oracle_s / fast_s,
        "parity": parity,
    }, fast_art


#: fused-dispatch measurement: many cheap cells over a small pool
FUSED_CELLS = 40
FUSED_JOBS = 2


def measure_fused() -> dict:
    """Fused block dispatch vs per-cell dispatch over a process pool.

    The cells are deliberately cheap (tiny n, one iteration) so per-cell
    pickling/dispatch overhead dominates — the regime the fused mode
    exists for.  Results stay identical either way; only dispatch cost
    changes.
    """
    strategies = ("Only-CPU", "Only-GPU", "DP-Perf", "SP-Unified", "DP-Dep")
    platform = shen_icpp15_platform()
    cells = [
        SweepCell(
            app="STREAM-Loop", strategy=strategies[i % len(strategies)],
            platform=platform, n=256, iterations=1, sync=False,
        )
        for i in range(FUSED_CELLS)
    ]
    clear_all()
    run_sweep(cells)  # warm the parent stores both pools snapshot from

    def _timed(**kwargs):
        t0 = time.perf_counter()
        results = run_sweep(cells, jobs=FUSED_JOBS, **kwargs)
        return time.perf_counter() - t0, results

    per_cell_s, per_cell = _timed()
    fused_s, fused = _timed(fuse=0)
    for _ in range(RUN_ROUNDS - 1):
        per_cell_s = min(per_cell_s, _timed()[0])
        fused_s = min(fused_s, _timed(fuse=0)[0])

    match = all(
        a.makespan_ms == b.makespan_ms and a.summary == b.summary
        for a, b in zip(per_cell, fused)
    )
    return {
        "cells": len(cells),
        "jobs": FUSED_JOBS,
        "per_cell_s": per_cell_s,
        "fused_s": fused_s,
        "per_cell_cells_per_sec": len(cells) / per_cell_s,
        "fused_cells_per_sec": len(cells) / fused_s,
        "fused_vs_per_cell_speedup": per_cell_s / fused_s,
        "match": match,
    }


#: forced-split candidate grid for the plan-eval measurement — the
#: schedule×partition search's inner loop shape (SP-Unified on the
#: scenario app across a ``gpu_fraction`` grid)
PLAN_EVAL_FRACTIONS = 8


def measure_plan_eval() -> dict:
    """Search inner loop: prebuilt compiled plans vs fused ``simulate_many``.

    Builds the same forced-fraction candidate cells the search engine
    sweeps, runs them through the fused executor path once (cells/sec),
    then compiles each cell's plan once and replays it through
    :class:`~repro.sim.plan.PlanEvaluator` (plans/sec, best of
    ``RUN_ROUNDS``).  Parity bits compare evaluator makespans against
    the executor's, on the vectorized drain and again on the
    ``REPRO_NO_NUMPY=1`` scalar fallback.
    """
    from dataclasses import replace

    from repro.apps import get_application
    from repro.bench.harness import simulate_many
    from repro.partition.base import PlanConfig, get_strategy
    from repro.sim.plan import PlanEvaluator, compile_plan

    platform = shen_icpp15_platform()
    base = PlanConfig()
    fractions = [
        i / (PLAN_EVAL_FRACTIONS - 1) for i in range(PLAN_EVAL_FRACTIONS)
    ]
    cells = [
        SweepCell(
            app="STREAM-Loop", strategy="SP-Unified", platform=platform,
            n=N, iterations=ITERATIONS, sync=False,
            config=replace(base, gpu_fraction=f),
        )
        for f in fractions
    ]
    clear_all()
    simulate_many(cells)  # warm the planning caches (Glinda, profiles)
    t0 = time.perf_counter()
    reference = simulate_many(cells)
    simulate_s = time.perf_counter() - t0

    strategy = get_strategy("SP-Unified")
    program = get_application("STREAM-Loop").program(
        N, iterations=ITERATIONS, sync=False
    )
    evaluators = [
        PlanEvaluator(
            platform,
            compile_plan(
                strategy.plan(program, platform, replace(base, gpu_fraction=f)),
                platform,
            ),
        )
        for f in fractions
    ]

    def _evaluate_all() -> tuple[float, list]:
        t0 = time.perf_counter()
        artifacts = [ev.evaluate() for ev in evaluators]
        return time.perf_counter() - t0, artifacts

    eval_s, artifacts = _evaluate_all()  # warm-up round
    for _ in range(RUN_ROUNDS):
        eval_s = min(eval_s, _evaluate_all()[0])

    want = [a.makespan_ms for a in reference]
    parity = [a.makespan_ms for a in artifacts] == want
    prior = os.environ.get("REPRO_NO_NUMPY")
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        parity_fallback = [
            ev.evaluate().makespan_ms for ev in evaluators
        ] == want
    finally:
        if prior is None:
            del os.environ["REPRO_NO_NUMPY"]
        else:
            os.environ["REPRO_NO_NUMPY"] = prior

    plans_per_sec = len(evaluators) / eval_s
    simulate_cells_per_sec = len(cells) / simulate_s
    return {
        "cells": len(cells),
        "instances": evaluators[0].compiled.n_compute,
        "rounds": RUN_ROUNDS,
        "simulate_s": simulate_s,
        "eval_s": eval_s,
        "simulate_cells_per_sec": simulate_cells_per_sec,
        "plans_per_sec": plans_per_sec,
        "plans_vs_simulate_speedup": plans_per_sec / simulate_cells_per_sec,
        "parity": parity,
        "parity_fallback": parity_fallback,
    }


#: the wave-drain scenario: a per-iteration-sync loop (HotSpot is the
#: paper's SK-Loop w/-sync workload) sized so each epoch carries a real
#: split — every iteration ends at a barrier, so only the wave drain
#: can lift the evaluator above the event loop
WAVE_N = 1 << 16
WAVE_ITERATIONS = 64
WAVE_FRACTIONS = 8


def measure_wave_drain() -> dict:
    """Synced-plan evaluation: the wave drain vs fused ``simulate_many``.

    The ``plan_eval`` section's shape on the search's *other* workload
    class: per-iteration-sync plans whose barriers stop the terminal
    drain at every epoch.  Prebuilt compiled plans (SP-Single
    forced-fraction splits of HotSpot w/ sync) replay through
    :class:`~repro.sim.plan.PlanEvaluator`, committing one wave per
    barrier analytically; parity bits compare makespans against the
    executor on the vectorized path and the ``REPRO_NO_NUMPY=1`` scalar
    fallback.  Wave counters keep the measurement honest: a silent
    per-wave fallback to the event loop would still be exact, but it is
    a perf regression this section exists to catch.
    """
    from dataclasses import replace

    from repro.apps import get_application
    from repro.bench.harness import simulate_many
    from repro.partition.base import PlanConfig, get_strategy
    from repro.sim.plan import PlanEvaluator, compile_plan, drain_stats

    platform = shen_icpp15_platform()
    base = PlanConfig()
    fractions = [
        i / (WAVE_FRACTIONS - 1) for i in range(WAVE_FRACTIONS)
    ]
    cells = [
        SweepCell(
            app="HotSpot", strategy="SP-Single", platform=platform,
            n=WAVE_N, iterations=WAVE_ITERATIONS, sync=True,
            config=replace(base, gpu_fraction=f),
        )
        for f in fractions
    ]
    clear_all()
    simulate_many(cells)  # warm the planning caches
    t0 = time.perf_counter()
    reference = simulate_many(cells)
    simulate_s = time.perf_counter() - t0

    strategy = get_strategy("SP-Single")
    program = get_application("HotSpot").program(
        WAVE_N, iterations=WAVE_ITERATIONS, sync=True
    )
    evaluators = [
        PlanEvaluator(
            platform,
            compile_plan(
                strategy.plan(program, platform, replace(base, gpu_fraction=f)),
                platform,
            ),
        )
        for f in fractions
    ]

    def _evaluate_all() -> tuple[float, list]:
        t0 = time.perf_counter()
        artifacts = [ev.evaluate() for ev in evaluators]
        return time.perf_counter() - t0, artifacts

    eval_s, artifacts = _evaluate_all()  # warm-up round
    stats_before = drain_stats()
    for _ in range(RUN_ROUNDS):
        eval_s = min(eval_s, _evaluate_all()[0])
    stats_after = drain_stats()
    waves = stats_after["waves_drained"] - stats_before["waves_drained"]
    fallbacks = stats_after["wave_fallbacks"] - stats_before["wave_fallbacks"]

    want = [a.makespan_ms for a in reference]
    parity = [a.makespan_ms for a in artifacts] == want
    prior = os.environ.get("REPRO_NO_NUMPY")
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        parity_fallback = [
            ev.evaluate().makespan_ms for ev in evaluators
        ] == want
    finally:
        if prior is None:
            del os.environ["REPRO_NO_NUMPY"]
        else:
            os.environ["REPRO_NO_NUMPY"] = prior

    synced_plans_per_sec = len(evaluators) / eval_s
    simulate_cells_per_sec = len(cells) / simulate_s
    return {
        "cells": len(cells),
        "instances": evaluators[0].compiled.n_compute,
        "barriers": evaluators[0].compiled.n_barriers,
        "rounds": RUN_ROUNDS,
        "simulate_s": simulate_s,
        "eval_s": eval_s,
        "simulate_cells_per_sec": simulate_cells_per_sec,
        "synced_plans_per_sec": synced_plans_per_sec,
        "synced_plans_vs_simulate_speedup": (
            synced_plans_per_sec / simulate_cells_per_sec
        ),
        # per timed pass over the grid (RUN_ROUNDS passes counted)
        "waves_drained_per_round": waves / RUN_ROUNDS,
        "wave_fallbacks": fallbacks,
        "parity": parity,
        "parity_fallback": parity_fallback,
    }


def measure_sim_core() -> dict:
    """The full ``sim_core`` record the pipeline bench embeds."""
    runs, fast_art = measure_run_parity()
    payload = {
        "scenario": {"app": "STREAM-Loop", "n": N, "iterations": ITERATIONS},
        **measure_event_core(fast_art),
        **runs,
        "fused": measure_fused(),
        "plan_eval": measure_plan_eval(),
        "wave_drain": measure_wave_drain(),
    }
    return payload


def check(payload: dict) -> None:
    assert payload["events"] > 1000, payload
    assert payload["fast_vs_oracle_speedup"] >= EVENTS_SPEEDUP_FLOOR, payload
    assert payload["traced_batch_speedup"] >= TRACED_BATCH_FLOOR, payload
    assert payload["parity"], payload
    assert payload["fused"]["match"], payload["fused"]
    check_plan_eval(payload["plan_eval"])
    check_wave_drain(payload["wave_drain"])


def check_plan_eval(plan_eval: dict) -> None:
    assert plan_eval["parity"], plan_eval
    assert plan_eval["parity_fallback"], plan_eval
    assert plan_eval["plans_vs_simulate_speedup"] >= PLAN_EVAL_FLOOR, plan_eval


def check_wave_drain(wave_drain: dict) -> None:
    assert wave_drain["parity"], wave_drain
    assert wave_drain["parity_fallback"], wave_drain
    assert wave_drain["waves_drained_per_round"] > 0, wave_drain
    assert wave_drain["wave_fallbacks"] == 0, wave_drain
    assert (
        wave_drain["synced_plans_vs_simulate_speedup"] >= WAVE_DRAIN_FLOOR
    ), wave_drain


def check_baseline(payload: dict, baseline_path: str) -> list[str]:
    """Ratio metrics that regressed >``BASELINE_TOLERANCE`` vs a baseline.

    Compares only same-process speedup ratios (``BASELINE_RATIOS``), not
    raw events/sec: absolute throughput tracks runner hardware, while a
    ratio of two variants timed back-to-back on the same box only moves
    when the code does.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    for key in BASELINE_RATIOS:
        base = baseline.get(key)
        if base is None:
            continue  # older baseline file predating this metric
        floor = base * (1.0 - BASELINE_TOLERANCE)
        if payload[key] < floor:
            failures.append(
                f"{key}: {payload[key]:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x - {BASELINE_TOLERANCE:.0%})"
            )
    for section, key in BASELINE_SECTION_RATIOS:
        base = baseline.get(section, {}).get(key)
        got = payload.get(section, {}).get(key)
        if base is None or got is None:
            continue  # payload or baseline predates this section
        floor = base * (1.0 - BASELINE_TOLERANCE)
        if got < floor:
            failures.append(
                f"{section}.{key}: {got:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x - {BASELINE_TOLERANCE:.0%})"
            )
    # absolute floor, not a baseline ratio: the fast engine must never
    # lose end to end (smoke payloads skip the end-to-end section)
    if "run_speedup" in payload and payload["run_speedup"] < RUN_SPEEDUP_FLOOR:
        failures.append(
            f"run_speedup: {payload['run_speedup']:.2f}x < "
            f"{RUN_SPEEDUP_FLOOR:g}x (absolute floor)"
        )
    return failures


def _format_plan_eval(pe: dict) -> str:
    return (
        f"plan evaluation:      {pe['plans_per_sec']:,.1f} plans/s vs "
        f"{pe['simulate_cells_per_sec']:,.1f} simulate_many cells/s "
        f"({pe['plans_vs_simulate_speedup']:.1f}x, floor "
        f"{PLAN_EVAL_FLOOR:g}x; {pe['cells']} candidate cells, "
        f"{pe['instances']} instances each), parity "
        f"{'ok' if pe['parity'] else 'DIVERGED'}, fallback parity "
        f"{'ok' if pe['parity_fallback'] else 'DIVERGED'}"
    )


def _format_wave_drain(wd: dict) -> str:
    return (
        f"wave drain (synced):  {wd['synced_plans_per_sec']:,.1f} plans/s vs "
        f"{wd['simulate_cells_per_sec']:,.1f} simulate_many cells/s "
        f"({wd['synced_plans_vs_simulate_speedup']:.1f}x, floor "
        f"{WAVE_DRAIN_FLOOR:g}x; {wd['cells']} candidate cells, "
        f"{wd['instances']} instances / {wd['barriers']} barriers each, "
        f"{wd['waves_drained_per_round']:.0f} waves/round, "
        f"{wd['wave_fallbacks']} fallbacks), parity "
        f"{'ok' if wd['parity'] else 'DIVERGED'}, fallback parity "
        f"{'ok' if wd['parity_fallback'] else 'DIVERGED'}"
    )


def _format(payload: dict) -> str:
    fused = payload["fused"]
    return (
        f"events:               {payload['events']} over "
        f"{payload['resources']} resources, best of {payload['rounds']}\n"
        f"oracle replay:        "
        f"{payload['oracle_traced_events_per_sec']:,.0f} ev/s traced, "
        f"{payload['oracle_untraced_events_per_sec']:,.0f} ev/s untraced\n"
        f"fast engine:          "
        f"{payload['fast_traced_events_per_sec']:,.0f} ev/s traced, "
        f"{payload['fast_traced_lane_events_per_sec']:,.0f} ev/s lane-traced, "
        f"{payload['traced_batch_events_per_sec']:,.0f} ev/s batch-traced, "
        f"{payload['events_per_sec']:,.0f} ev/s lane replay\n"
        f"headline speedup:     {payload['fast_vs_oracle_speedup']:9.1f}x "
        f"(floor {EVENTS_SPEEDUP_FLOOR:g}x; engine loop alone "
        f"{payload['untraced_engine_speedup']:.1f}x)\n"
        f"traced path:          {payload['traced_batch_speedup']:9.1f}x "
        f"batch (floor {TRACED_BATCH_FLOOR:g}x; per-event rows "
        f"{payload['traced_speedup']:.1f}x, per-event lanes "
        f"{payload['traced_lane_speedup']:.1f}x)\n"
        f"end-to-end run:       {payload['fast_run_s']:.2f} s fast vs "
        f"{payload['oracle_run_s']:.2f} s oracle "
        f"({payload['run_speedup']:.2f}x, floor {RUN_SPEEDUP_FLOOR:g}x, "
        f"best of {payload['run_rounds']}), parity "
        f"{'ok' if payload['parity'] else 'DIVERGED'}\n"
        f"fused dispatch:       {fused['fused_cells_per_sec']:,.1f} cells/s "
        f"vs {fused['per_cell_cells_per_sec']:,.1f} per-cell "
        f"({fused['fused_vs_per_cell_speedup']:.2f}x, "
        f"{fused['cells']} cells, {fused['jobs']} jobs), results "
        f"{'match' if fused['match'] else 'DIVERGED'}\n"
        + _format_plan_eval(payload["plan_eval"]) + "\n"
        + _format_wave_drain(payload["wave_drain"])
    )


def test_event_core(benchmark):
    payload = benchmark.pedantic(measure_sim_core, rounds=1, iterations=1)
    check(payload)
    from conftest import emit

    emit("Event core — slot-dispatched engine vs closure oracle",
         _format(payload) + f"\nwrote {OUTPUT.name}")
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dump-artifact", metavar="FILE", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument(
        "--smoke", action="store_true",
        help="replay measurements only (skips the end-to-end/parity/"
        "fused sections; CI's bench-smoke step)",
    )
    parser.add_argument(
        "--plan-eval", action="store_true",
        help="plan-evaluator section only: compiled-plan replays vs fused "
        f"simulate_many on the same cells, gated at {PLAN_EVAL_FLOOR:g}x "
        "with both parity bits (CI's search-smoke step)",
    )
    parser.add_argument(
        "--check-baseline", metavar="FILE", default=None,
        help="fail when a speedup ratio regresses more than "
        f"{BASELINE_TOLERANCE:.0%} below the committed baseline JSON",
    )
    args = parser.parse_args(argv)
    if args.dump_artifact:
        _dump_artifact(args.dump_artifact)
        return 0
    if args.plan_eval:
        plan_eval = measure_plan_eval()
        print(_format_plan_eval(plan_eval))
        check_plan_eval(plan_eval)
        return 0

    if args.smoke:
        # replay measurements only: the hard floors stay with the full
        # bench (they assume a quiet box); smoke regressions are caught
        # relative to the committed baseline ratios instead — except the
        # wave-drain parity/engagement bits, which are deterministic and
        # checked here too
        artifact, _ = _scenario_artifact(oracle=False)
        payload = measure_event_core(artifact)
        assert payload["events"] > 1000, payload
        payload["wave_drain"] = measure_wave_drain()
        check_wave_drain(payload["wave_drain"])
    else:
        payload = measure_sim_core()
        check(payload)
    print(_format(payload) if not args.smoke else json.dumps(payload, indent=2))
    if args.check_baseline:
        failures = check_baseline(payload, args.check_baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            return 1
        print(f"baseline ratios ok ({args.check_baseline})")
    if not args.smoke:
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
