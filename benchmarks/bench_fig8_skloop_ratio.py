"""Figure 8: SK-Loop partitioning ratios."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_ratio_table


def test_fig8_skloop_ratios(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig8", platform), rounds=1, iterations=1
    )
    emit("Figure 8 — partitioning ratio of strategies in SK-Loop",
         format_ratio_table(results))
    nbody, hotspot = results
    # Nbody: most work on the GPU; HotSpot: large partition on the CPU
    assert nbody.outcome("SP-Single").gpu_fraction >= 0.85
    assert hotspot.outcome("SP-Single").gpu_fraction <= 0.45
    # DP-Perf detects a similar (GPU-heavier) partitioning
    assert nbody.outcome("DP-Perf").gpu_fraction >= \
        nbody.outcome("SP-Single").gpu_fraction
