"""Related work: adaptive chunking (ref [11]) vs the paper's strategies.

The paper's related-work section says adaptive single-kernel schemes
"efficiently reduce scheduling overhead, but still cannot outperform the
optimal partitioning determined by the static partitioning approaches."
This bench reproduces that comparison with the Boyer-style DP-Guided
strategy.
"""

from conftest import emit

from repro.apps import get_application
from repro.partition import get_strategy


def test_related_work_guided_chunking(benchmark, platform):
    apps = ("MatrixMul", "BlackScholes", "Nbody", "HotSpot")
    strategies = ("SP-Single", "DP-Guided", "DP-Perf", "DP-Dep")

    def measure():
        rows = {}
        for app_name in apps:
            program = get_application(app_name).program()
            rows[app_name] = {
                s: get_strategy(s).run(program, platform).makespan_ms
                for s in strategies
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'application':<14}" + "".join(f"{s:>12}" for s in strategies)]
    for app_name, times in rows.items():
        lines.append(
            f"{app_name:<14}" + "".join(f"{times[s]:>12.1f}" for s in strategies)
        )
    emit("Related work — Boyer-style adaptive chunking (DP-Guided), ms",
         "\n".join(lines))
    for app_name, times in rows.items():
        # the headline claim: adaptive chunking still cannot outperform
        # the optimal static partitioning
        assert times["SP-Single"] <= times["DP-Guided"]
    # where the GPU is the right destination, adaptive chunking fixes
    # DP-Dep's imbalance (on CPU-won HotSpot, DP-Dep's accidental CPU bias
    # is already near-optimal, so there is nothing to fix)
    for app_name in ("MatrixMul", "BlackScholes", "Nbody"):
        assert rows[app_name]["DP-Guided"] <= rows[app_name]["DP-Dep"]
