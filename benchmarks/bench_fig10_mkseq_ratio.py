"""Figure 10: MK-Seq partitioning ratios (per kernel for SP-Varied)."""

from conftest import emit

from repro.bench.experiments import run_experiment
from repro.bench.tables import format_ratio_table


def test_fig10_mkseq_ratios(benchmark, platform):
    results = benchmark.pedantic(
        lambda: run_experiment("fig10", platform), rounds=1, iterations=1
    )
    emit("Figure 10 — partitioning ratio of strategies in MK-Seq",
         format_ratio_table(results, per_kernel=True))
    without = results[0]
    # SP-Unified: one split for all kernels, ~44% GPU (CPU gets more:
    # "The GPU gets less work mainly because its data transfer takes too
    # much time")
    unified = without.outcome("SP-Unified")
    per_kernel = unified.ratio_by_kernel
    fractions = {
        k: v.get("gpu", 0) / sum(v.values()) for k, v in per_kernel.items()
    }
    assert len(set(round(f, 3) for f in fractions.values())) == 1
    assert 0.30 <= unified.gpu_fraction <= 0.55
    # SP-Varied skewed toward the CPU compared to SP-Unified
    varied = without.outcome("SP-Varied")
    assert varied.gpu_fraction < unified.gpu_fraction
