"""Human-readable reports of analysis and matchmaking outcomes."""

from __future__ import annotations

from repro.core.analyzer import AnalysisReport
from repro.core.matchmaker import MatchResult


def format_analysis(report: AnalysisReport) -> str:
    """Multi-line summary of an analysis report."""
    s = report.structure
    lines = [
        f"Application: {report.application}",
        f"  kernels:        {s.n_kernels} ({', '.join(s.kernel_names)})",
        f"  execution flow: {s.flow.value}"
        + (f" x {s.iterations} iterations" if s.iterations > 1 else ""),
        f"  inter-kernel sync: {'yes' if report.needs_sync else 'no'}",
        f"  class:          {report.app_class.value} "
        f"(Class {report.app_class.roman})",
        f"  ranking:        ({report.ranker}) "
        + " > ".join(
            f"{i + 1}.{name}" for i, name in enumerate(report.ranked_strategies)
        ),
        f"  => best strategy: {report.best_strategy}",
    ]
    return "\n".join(lines)


def format_match(outcome: MatchResult) -> str:
    """Multi-line summary of a matchmaking outcome."""
    lines = [format_analysis(outcome.report)]
    decision = outcome.plan.decision
    lines.append(f"  hardware config: {decision.hardware_config}")
    if decision.gpu_fraction_by_kernel:
        for kernel, frac in decision.gpu_fraction_by_kernel.items():
            lines.append(
                f"  planned split [{kernel}]: "
                f"GPU {frac:6.1%} / CPU {1 - frac:6.1%}"
            )
    if outcome.result is not None:
        r = outcome.result
        lines.append(f"  simulated makespan: {r.makespan_ms:.2f} ms")
        if r.elements_by_device:
            lines.append(
                f"  executed split: GPU {r.gpu_fraction:6.1%} / "
                f"CPU {r.cpu_fraction:6.1%}"
            )
        lines.append(
            "  transfers: "
            f"H2D {r.transfer_bytes.get('h2d', 0) / 1e6:.1f} MB, "
            f"D2H {r.transfer_bytes.get('d2h', 0) / 1e6:.1f} MB"
        )
    return "\n".join(lines)
