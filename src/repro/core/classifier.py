"""Mapping kernel structures to the five application classes (§III-B)."""

from __future__ import annotations

from repro.core.classes import AppClass
from repro.core.structure import FlowType, KernelStructure, derive_structure
from repro.runtime.graph import Program


def classify(structure: KernelStructure) -> AppClass:
    """Classify a kernel structure.

    * one kernel, executed once → **SK-One**
    * one kernel, iterated → **SK-Loop**
    * multiple kernels, totally ordered, single pass → **MK-Seq**
    * multiple kernels, totally ordered, iterated → **MK-Loop**
    * multiple kernels with parallel (incomparable) invocations → **MK-DAG**
    """
    if structure.n_kernels == 1:
        return (
            AppClass.SK_LOOP if structure.flow is FlowType.LOOP else AppClass.SK_ONE
        )
    if structure.flow is FlowType.DAG:
        return AppClass.MK_DAG
    if structure.flow is FlowType.LOOP:
        return AppClass.MK_LOOP
    return AppClass.MK_SEQ


def classify_program(program: Program) -> AppClass:
    """Derive the structure of ``program`` and classify it."""
    return classify(derive_structure(program))
