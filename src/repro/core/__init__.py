"""The application analyzer — the paper's primary contribution (§III).

Given an application, the analyzer:

1. derives its **kernel structure** from the program
   (:mod:`repro.core.structure`),
2. **classifies** it into one of the five classes
   (:mod:`repro.core.classifier`),
3. looks up the **performance ranking** of the suitable partitioning
   strategies for that class (:mod:`repro.core.ranking`, Table I),
4. **matches** the application with the best-ranked strategy and can run
   it end-to-end (:mod:`repro.core.matchmaker`).
"""

from repro.core.classes import AppClass
from repro.core.structure import FlowType, KernelStructure, derive_structure
from repro.core.classifier import classify, classify_program
from repro.core.ranking import (
    PROPOSITIONS,
    RankingProvider,
    TableRankingProvider,
    best_strategy,
    ranking,
    resolve_ranker,
    suitable_strategies,
)
from repro.core.tournament import (
    MeasuredRankingProvider,
    TournamentResult,
    format_tournament,
    run_tournament,
)
from repro.core.analyzer import AnalysisReport, analyze, analyze_program
from repro.core.matchmaker import MatchResult, match, run_best
from repro.core.report import format_analysis, format_match

__all__ = [
    "AppClass",
    "FlowType",
    "KernelStructure",
    "derive_structure",
    "classify",
    "classify_program",
    "PROPOSITIONS",
    "RankingProvider",
    "TableRankingProvider",
    "MeasuredRankingProvider",
    "TournamentResult",
    "format_tournament",
    "run_tournament",
    "best_strategy",
    "ranking",
    "resolve_ranker",
    "suitable_strategies",
    "AnalysisReport",
    "analyze",
    "analyze_program",
    "MatchResult",
    "match",
    "run_best",
    "format_analysis",
    "format_match",
]
