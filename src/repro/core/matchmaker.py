"""Matchmaking: select the best strategy and execute it (§III-A step 4).

This is the end-to-end entry point a user of the library calls: give it an
application and a platform, get back the class, the chosen strategy, and
the (simulated) execution outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Application
from repro.artifact import RunArtifact
from repro.core.analyzer import AnalysisReport, analyze
from repro.core.ranking import RankingProvider, resolve_ranker
from repro.partition.base import ExecutionPlan, PlanConfig, get_strategy, run_plan
from repro.platform.topology import Platform
from repro.runtime.executor import RuntimeConfig


@dataclass
class MatchResult:
    """Outcome of matchmaking one application."""

    report: AnalysisReport
    plan: ExecutionPlan
    result: RunArtifact | None = None

    @property
    def strategy(self) -> str:
        return self.plan.strategy_name

    @property
    def makespan_ms(self) -> float:
        if self.result is None:
            raise ValueError("match() was called with execute=False")
        return self.result.makespan_ms


def match(
    app: Application,
    platform: Platform,
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    config: PlanConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    execute: bool = True,
    detail: str = "full",
    ranker: str | RankingProvider | None = None,
) -> MatchResult:
    """Classify ``app``, pick the best-ranked strategy, plan, and run it.

    ``ranker`` selects who orders the strategies: the paper's Table I
    (``"table"``, default) or a tournament played on *this* platform
    (``"measured"``) — see :mod:`repro.core.ranking`.
    """
    cfg = config or PlanConfig()
    provider = resolve_ranker(ranker, platform)
    report = analyze(app, n=n, iterations=iterations, sync=sync, ranker=provider)
    effective_sync = app.needs_sync if sync is None else sync
    program = app.program(n, iterations=iterations, sync=effective_sync)
    strategy = get_strategy(report.best_strategy)
    plan = strategy.plan(program, platform, cfg)
    result = None
    if execute:
        rt = runtime_config or RuntimeConfig(cpu_threads=cfg.threads(platform))
        result = run_plan(plan, platform, rt, detail=detail)
    return MatchResult(report=report, plan=plan, result=result)


def run_best(
    app: Application,
    platform: Platform,
    **kwargs,
) -> RunArtifact:
    """Convenience wrapper: matchmake and return the execution result."""
    outcome = match(app, platform, execute=True, **kwargs)
    assert outcome.result is not None
    return outcome.result
