"""Measured rankings: earn Table I instead of asserting it.

The paper *derives* its per-class strategy ranking from three
propositions and validates it on one machine.  This module re-derives the
ranking empirically on any simulated platform: a **tournament** round-robin
runs every applicable (ranked) strategy over a scenario suite — the Table
II applications plus Cholesky for MK-DAG, each MK application in both
sync variants — and orders strategies per ``(class, sync)`` group by the
geometric mean of their makespan ratio to the per-scenario winner.

Matches are dispatched through :func:`repro.bench.harness.run_sweep_iter`,
so a tournament parallelizes exactly like any other sweep (``--jobs``,
``--workers``, fused batches).  Outcomes are memoized in the
``"tournament"`` cache store keyed by platform/scenario/strategy
fingerprints; because named stores ride the :mod:`repro.cache` snapshot
machinery, a ``--cache-dir`` warm start replays previous tournaments
without simulating a single match.

:class:`MeasuredRankingProvider` wraps a (lazily run) tournament in the
:class:`~repro.core.ranking.RankingProvider` seam, making ``ranker=
"measured"`` a drop-in for the Table I default everywhere the analyzer
and matchmaker are used.  :mod:`repro.bench.matchup` compares the two
providers cell by cell and flags where the paper's propositions stop
holding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cache import get_cache, platform_fingerprint
from repro.core.classes import AppClass
from repro.core.ranking import TABLE, RankingProvider
from repro.errors import ClassificationError, ConfigurationError
from repro.partition.base import strategies_for_class
from repro.platform.topology import Platform

#: scenario apps: Table II order, Cholesky appended for MK-DAG coverage
DEFAULT_APPS = (
    "MatrixMul",
    "BlackScholes",
    "Nbody",
    "HotSpot",
    "STREAM-Seq",
    "STREAM-Loop",
    "Cholesky",
)

#: class labels whose ranking depends on the sync sub-case (Table I)
_SYNC_SENSITIVE = ("MK-Seq", "MK-Loop")


@dataclass(frozen=True)
class Scenario:
    """One tournament fixture: an application at a size and sync setting."""

    app: str
    app_class: str
    needs_sync: bool
    n: int
    iterations: int | None = None

    @property
    def label(self) -> str:
        sync = "+sync" if self.needs_sync else ""
        return f"{self.app}{sync}@{self.n}"


@dataclass(frozen=True)
class MatchRecord:
    """One strategy's measured outcome on one scenario."""

    scenario: Scenario
    strategy: str
    makespan_s: float
    cached: bool = False


@dataclass(frozen=True)
class ClassRanking:
    """Measured ordering for one ``(class, sync)`` group."""

    app_class: str
    needs_sync: bool
    #: strategy names, best (lowest mean ratio) first
    ranking: tuple[str, ...]
    #: geometric-mean makespan ratio to the per-scenario winner (>= 1.0)
    scores: dict[str, float] = field(default_factory=dict)
    #: scenario labels the group aggregates over
    scenarios: tuple[str, ...] = ()


@dataclass(frozen=True)
class TournamentResult:
    """Everything one tournament measured."""

    platform: str
    scale: float
    matches: tuple[MatchRecord, ...]
    #: ``(class label, needs_sync)`` -> measured ordering
    rankings: dict[tuple[str, bool], ClassRanking]

    @property
    def simulated(self) -> int:
        """Matches actually simulated (not replayed from the memo store)."""
        return sum(1 for m in self.matches if not m.cached)

    def ranking_for(
        self, app_class: AppClass | str, *, needs_sync: bool = False
    ) -> tuple[str, ...]:
        """The measured ordering for a class, honoring the sync sub-case."""
        label = getattr(app_class, "value", app_class)
        sync = needs_sync if label in _SYNC_SENSITIVE else False
        try:
            return self.rankings[(label, sync)].ranking
        except KeyError:
            raise ClassificationError(
                f"tournament has no ranking for class {label!r} "
                f"(needs_sync={sync}); scenarios covered: "
                f"{sorted(set(k for k in self.rankings))}"
            ) from None


def default_scenarios(
    *, scale: float = 1.0, apps: tuple[str, ...] = DEFAULT_APPS
) -> list[Scenario]:
    """The standard fixture list: each MK app in both sync variants.

    Single-kernel and DAG applications keep their natural sync setting
    (the sub-case only changes the Table I row for MK-Seq/MK-Loop).
    Problem sizes follow :func:`repro.bench.experiments.scaled_size`.
    """
    from repro.apps import get_application
    from repro.bench.experiments import scaled_size

    scenarios: list[Scenario] = []
    for name in apps:
        app = get_application(name)
        n = scaled_size(name, scale)
        if app.paper_class in _SYNC_SENSITIVE:
            for sync in (False, True):
                scenarios.append(
                    Scenario(
                        app=name, app_class=app.paper_class,
                        needs_sync=sync, n=n,
                    )
                )
        else:
            scenarios.append(
                Scenario(
                    app=name, app_class=app.paper_class,
                    needs_sync=app.needs_sync, n=n,
                )
            )
    return scenarios


def _match_key(platform: Platform, scenario: Scenario, strategy: str) -> tuple:
    return (
        "match",
        platform_fingerprint(platform),
        scenario.app,
        scenario.needs_sync,
        scenario.n,
        scenario.iterations,
        strategy,
    )


def _table_position(app_class: str, needs_sync: bool) -> dict[str, int]:
    """Tie-break order: Table I position first, unranked names after."""
    row = TABLE.ranking(AppClass(app_class), needs_sync=needs_sync)
    return {name: i for i, name in enumerate(row)}


def run_tournament(
    platform: Platform,
    *,
    scale: float = 1.0,
    apps: tuple[str, ...] = DEFAULT_APPS,
    jobs: int = 1,
    workers=None,
    fuse: int | None = None,
    config=None,
    runtime_config=None,
) -> TournamentResult:
    """Round-robin every applicable ranked strategy over the scenarios.

    ``jobs``/``workers``/``fuse`` forward to
    :func:`~repro.bench.harness.run_sweep_iter` untouched.  Previously
    played matches are replayed from the ``"tournament"`` memo store (and
    therefore from any ``--cache-dir`` snapshot) instead of re-simulated.
    """
    from repro.bench.harness import SweepCell, run_sweep_iter

    scenarios = default_scenarios(scale=scale, apps=apps)
    pairs: list[tuple[Scenario, str]] = []
    for scenario in scenarios:
        names = strategies_for_class(scenario.app_class)
        if not names:
            raise ConfigurationError(
                f"no ranked strategies registered for class "
                f"{scenario.app_class!r}"
            )
        pairs.extend((scenario, name) for name in names)

    store = get_cache("tournament")
    known = store.entries()
    records: dict[tuple, MatchRecord] = {}
    todo: list[tuple[Scenario, str]] = []
    for scenario, strategy in pairs:
        key = _match_key(platform, scenario, strategy)
        if key in known:
            makespan = store.get_or_compute(key, lambda: known[key])
            records[key] = MatchRecord(scenario, strategy, makespan, cached=True)
        else:
            todo.append((scenario, strategy))

    if todo:
        cells = [
            SweepCell(
                app=scenario.app,
                strategy=strategy,
                platform=platform,
                n=scenario.n,
                iterations=scenario.iterations,
                sync=scenario.needs_sync,
                config=config,
                runtime_config=runtime_config,
            )
            for scenario, strategy in todo
        ]
        for index, artifact in run_sweep_iter(
            cells, jobs=jobs, workers=workers, fuse=fuse
        ):
            scenario, strategy = todo[index]
            makespan = artifact.makespan_s
            key = _match_key(platform, scenario, strategy)
            store.get_or_compute(key, lambda m=makespan: m)
            records[key] = MatchRecord(scenario, strategy, makespan)

    matches = tuple(
        records[_match_key(platform, scenario, strategy)]
        for scenario, strategy in pairs
    )
    devices = [platform.host.device_id] + [
        acc.device_id for acc in platform.accelerators
    ]
    return TournamentResult(
        platform="+".join(devices),
        scale=scale,
        matches=matches,
        rankings=_aggregate(matches),
    )


def _aggregate(
    matches: tuple[MatchRecord, ...]
) -> dict[tuple[str, bool], ClassRanking]:
    """Per-``(class, sync)`` geometric-mean-of-ratios orderings."""
    # group matches by (class, sync bucket), then by scenario within it
    groups: dict[tuple[str, bool], dict[Scenario, list[MatchRecord]]] = {}
    for record in matches:
        scenario = record.scenario
        sync = scenario.needs_sync if scenario.app_class in _SYNC_SENSITIVE else False
        by_scenario = groups.setdefault((scenario.app_class, sync), {})
        by_scenario.setdefault(scenario, []).append(record)

    rankings: dict[tuple[str, bool], ClassRanking] = {}
    for (app_class, sync), by_scenario in groups.items():
        log_ratios: dict[str, float] = {}
        for scenario, recs in by_scenario.items():
            best = min(r.makespan_s for r in recs)
            for r in recs:
                log_ratios[r.strategy] = (
                    log_ratios.get(r.strategy, 0.0)
                    + math.log(r.makespan_s / best)
                )
        k = len(by_scenario)
        scores = {
            name: math.exp(total / k) for name, total in log_ratios.items()
        }
        position = _table_position(app_class, sync)
        ordered = tuple(
            sorted(
                scores,
                key=lambda name: (
                    scores[name],
                    position.get(name, len(position)),
                    name,
                ),
            )
        )
        rankings[(app_class, sync)] = ClassRanking(
            app_class=app_class,
            needs_sync=sync,
            ranking=ordered,
            scores=scores,
            scenarios=tuple(s.label for s in by_scenario),
        )
    return rankings


class MeasuredRankingProvider(RankingProvider):
    """A :class:`RankingProvider` backed by a lazily run tournament.

    The first ``ranking()`` call plays (or replays from the memo store)
    the whole tournament for the provider's platform; later calls are
    dictionary lookups.  ``platform`` defaults to the paper's Table III
    machine.
    """

    name = "measured"

    def __init__(
        self,
        platform: Platform | None = None,
        *,
        scale: float = 1.0,
        apps: tuple[str, ...] = DEFAULT_APPS,
        jobs: int = 1,
        workers=None,
        fuse: int | None = None,
    ) -> None:
        if platform is None:
            from repro.platform.presets import shen_icpp15_platform

            platform = shen_icpp15_platform()
        self.platform = platform
        self.scale = scale
        self.apps = apps
        self.jobs = jobs
        self.workers = workers
        self.fuse = fuse
        self._result: TournamentResult | None = None

    def result(self) -> TournamentResult:
        """The backing tournament, playing it on first use."""
        if self._result is None:
            self._result = run_tournament(
                self.platform,
                scale=self.scale,
                apps=self.apps,
                jobs=self.jobs,
                workers=self.workers,
                fuse=self.fuse,
            )
        return self._result

    def ranking(
        self, app_class: AppClass, *, needs_sync: bool = False
    ) -> tuple[str, ...]:
        return self.result().ranking_for(app_class, needs_sync=needs_sync)


def format_tournament(result: TournamentResult) -> str:
    """Human-readable tournament report (the ``repro rank`` output)."""
    lines = [
        f"tournament on {result.platform} "
        f"(scale {result.scale:g}, {len(result.matches)} matches, "
        f"{result.simulated} simulated / "
        f"{len(result.matches) - result.simulated} replayed)",
    ]
    for (app_class, sync), ranking in sorted(result.rankings.items()):
        sync_note = ""
        if app_class in _SYNC_SENSITIVE:
            sync_note = " (w sync)" if sync else " (w/o sync)"
        lines.append(f"\n{app_class}{sync_note}:")
        table_row = _table_position(app_class, sync)
        for place, name in enumerate(ranking.ranking, start=1):
            score = ranking.scores[name]
            in_table = "" if name in table_row else "  [not in Table I]"
            lines.append(
                f"  {place}. {name:11s} geomean ratio {score:6.3f}{in_table}"
            )
        lines.append(f"  scenarios: {', '.join(ranking.scenarios)}")
    return "\n".join(lines)
