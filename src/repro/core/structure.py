"""Deriving an application's kernel structure from its program.

The classifier needs two facts (paper §III-B): the number of kernels and
the type of kernel execution flow — sequence, loop, or DAG.  Both are
derived from the program itself:

* kernels are counted by distinct kernel *name* (double-buffered variants
  of one kernel share a name and count once);
* the flow type comes from the invocation-level dependence graph: if every
  pair of invocations is ordered (the graph's reachability is a total
  order) the flow is a sequence, otherwise it is a DAG; iteration tags
  distinguish loops from plain sequences.

Inner loops around individual kernels (repeated consecutive invocations of
the same kernel) unroll into the sequence and do not affect the class, as
§III-B prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ClassificationError
from repro.runtime.dependence import build_dependences
from repro.runtime.graph import InstanceKind, Program, expand_program


class FlowType(enum.Enum):
    """Kernel execution-flow shape."""

    SEQUENCE = "sequence"
    LOOP = "loop"
    DAG = "dag"


@dataclass(frozen=True)
class KernelStructure:
    """Structural summary of one application."""

    kernel_names: tuple[str, ...]
    flow: FlowType
    iterations: int
    #: whether a taskwait separates non-final invocations
    has_inter_kernel_sync: bool
    n_invocations: int

    @property
    def n_kernels(self) -> int:
        return len(self.kernel_names)


def _invocation_level_graph(program: Program):
    """Task graph with exactly one instance per invocation."""
    graph = expand_program(program, lambda inv: [(0, inv.n, None, None)])
    return build_dependences(graph)


def _is_total_order(graph) -> bool:
    """Whether reachability makes the compute instances a total order.

    Instances are created in program order, which is a topological order,
    so the graph is a total order iff every compute instance reaches the
    next compute instance.  Reachability is computed with bitsets in
    reverse program order over *all* instances, so barriers transmit
    ordering rather than breaking the traversal.
    """
    instances = graph.instances
    computes = [
        k for k, inst in enumerate(instances)
        if inst.kind is InstanceKind.COMPUTE
    ]
    if len(computes) <= 1:
        return True
    index = {inst.instance_id: k for k, inst in enumerate(instances)}
    reach = [0] * len(instances)
    for k in range(len(instances) - 1, -1, -1):
        bits = 0
        for succ in instances[k].succs:
            j = index[succ]
            bits |= (1 << j) | reach[j]
        reach[k] = bits
    return all(
        reach[a] >> b & 1 for a, b in zip(computes, computes[1:])
    )


def derive_structure(program: Program) -> KernelStructure:
    """Analyze ``program`` and summarize its kernel structure."""
    if not program.invocations:
        raise ClassificationError("cannot classify an empty program")
    names: dict[str, None] = {}
    for inv in program.invocations:
        names.setdefault(inv.kernel.name, None)
    kernel_names = tuple(names)
    iterations = max(inv.iteration for inv in program.invocations) + 1
    sync = any(inv.sync_after for inv in program.invocations[:-1])

    if len(kernel_names) == 1:
        flow = FlowType.LOOP if len(program.invocations) > 1 else FlowType.SEQUENCE
    else:
        # the flow type is a property of one loop body: analyze the first
        # iteration only, so legitimate cross-iteration pipelining does not
        # turn an MK-Loop application into MK-DAG
        first_iter = [
            inv for inv in program.invocations if inv.iteration == 0
        ]
        body = Program(invocations=first_iter, arrays=dict(program.arrays))
        graph = _invocation_level_graph(body)
        if not _is_total_order(graph):
            flow = FlowType.DAG
        elif iterations > 1:
            flow = FlowType.LOOP
        else:
            flow = FlowType.SEQUENCE

    return KernelStructure(
        kernel_names=kernel_names,
        flow=flow,
        iterations=iterations,
        has_inter_kernel_sync=sync,
        n_invocations=len(program.invocations),
    )
