"""Ranking providers: who gets to order the strategies (§III-C and beyond).

The paper's Table I is one *answer* to the ranking question — a static
per-class ordering backed by the three propositions.  This module turns
the question into a seam: a :class:`RankingProvider` maps ``(application
class, sync requirement)`` to a best-first strategy tuple, and everything
downstream (analyzer, matchmaker, CLI) asks a provider instead of
hard-coding the table.

Two providers exist:

* :class:`TableRankingProvider` — Table I verbatim (the default):

  ==============================  ==========================================
  Application class               Ranking (best first)
  ==============================  ==========================================
  SK-One, SK-Loop                 SP-Single, DP-Perf, DP-Dep
  MK-Seq, MK-Loop (w/o sync)      SP-Unified, DP-Perf, DP-Dep, SP-Varied
  MK-Seq, MK-Loop (w sync)        SP-Varied, DP-Perf, DP-Dep, SP-Unified
  MK-DAG                          DP-Perf, DP-Dep
  ==============================  ==========================================

* :class:`~repro.core.tournament.MeasuredRankingProvider` — *earns* the
  ordering by round-robin simulating every applicable strategy across the
  paper suite on a concrete platform (``repro rank`` on the CLI).

The table ranking rests on the paper's three propositions, reproduced in
:data:`PROPOSITIONS` and validated empirically by the integration tests,
:mod:`repro.bench.experiments`, and — strategy by strategy, cell by cell —
:mod:`repro.bench.matchup`.

The module-level :func:`ranking` / :func:`suitable_strategies` /
:func:`best_strategy` functions delegate to the table provider, keeping
the historical API intact.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.classes import AppClass
from repro.errors import ClassificationError, ConfigurationError

#: the paper's three ranking propositions ("≥" = outperforms or equals)
PROPOSITIONS: dict[int, str] = {
    1: "For all classes, DP-Perf >= DP-Dep: performance-aware scheduling "
       "distinguishes device capabilities; breadth-first cannot, and may "
       "overload the weaker device.",
    2: "For SK-One and SK-Loop, SP-Single > DP-Perf >= DP-Dep: the static "
       "split is optimal and pays no runtime scheduling overhead; at best "
       "a dynamic policy discovers the same split, later and at a cost.",
    3: "For MK-Seq and MK-Loop: without inter-kernel synchronization, "
       "SP-Unified > DP-Perf >= DP-Dep >= SP-Varied (SP-Varied adds "
       "synchronization and transfers the application never needed); with "
       "synchronization, SP-Varied > DP-Perf >= DP-Dep >= SP-Unified "
       "(per-kernel optima win; a unified split ignores kernel "
       "differences).",
}

_SK_RANKING = ("SP-Single", "DP-Perf", "DP-Dep")
_MK_NOSYNC = ("SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied")
_MK_SYNC = ("SP-Varied", "DP-Perf", "DP-Dep", "SP-Unified")
_DAG_RANKING = ("DP-Perf", "DP-Dep")


class RankingProvider(ABC):
    """Maps an application class (and sync need) to a strategy ordering."""

    #: short identifier, e.g. for report headers ("table", "measured")
    name: str = "provider"

    @abstractmethod
    def ranking(
        self, app_class: AppClass, *, needs_sync: bool = False
    ) -> tuple[str, ...]:
        """Strategy names ranked best-first for ``app_class``.

        ``needs_sync`` selects the MK-Seq/MK-Loop sub-case: whether the
        application originally uses — or, because of partitioned outputs
        feeding post-processing, needs — inter-kernel synchronization.
        """

    def suitable_strategies(self, app_class: AppClass) -> tuple[str, ...]:
        """All strategies applicable to a class, regardless of sync.

        Default: the union of both sync sub-cases, ranked order of the
        no-sync case first (matches Table I's single row per class).
        """
        nosync = self.ranking(app_class, needs_sync=False)
        extra = [
            s
            for s in self.ranking(app_class, needs_sync=True)
            if s not in nosync
        ]
        return nosync + tuple(extra)

    def best_strategy(
        self, app_class: AppClass, *, needs_sync: bool = False
    ) -> str:
        """The top-ranked strategy for a class."""
        return self.ranking(app_class, needs_sync=needs_sync)[0]


class TableRankingProvider(RankingProvider):
    """The paper's Table I, verbatim."""

    name = "table"

    def ranking(
        self, app_class: AppClass, *, needs_sync: bool = False
    ) -> tuple[str, ...]:
        if app_class.single_kernel:
            return _SK_RANKING
        if app_class is AppClass.MK_DAG:
            return _DAG_RANKING
        if app_class in (AppClass.MK_SEQ, AppClass.MK_LOOP):
            return _MK_SYNC if needs_sync else _MK_NOSYNC
        raise ClassificationError(f"unhandled class {app_class}")  # pragma: no cover


#: the default provider behind the module-level functions
TABLE = TableRankingProvider()


def resolve_ranker(
    ranker: "str | RankingProvider | None", platform=None
) -> RankingProvider:
    """Resolve a ``ranker=`` argument to a provider instance.

    ``None`` and ``"table"`` yield the Table I provider; ``"measured"``
    builds a :class:`~repro.core.tournament.MeasuredRankingProvider` for
    ``platform`` (the Table III machine when omitted); an existing
    provider passes through.
    """
    if ranker is None or ranker == "table":
        return TABLE
    if isinstance(ranker, RankingProvider):
        return ranker
    if ranker == "measured":
        from repro.core.tournament import MeasuredRankingProvider

        return MeasuredRankingProvider(platform=platform)
    raise ConfigurationError(
        f"unknown ranker {ranker!r}; known: 'table', 'measured' "
        "(or pass a RankingProvider instance)"
    )


def ranking(app_class: AppClass, *, needs_sync: bool = False) -> tuple[str, ...]:
    """Strategy names ranked best-first for a class (paper Table I)."""
    return TABLE.ranking(app_class, needs_sync=needs_sync)


def suitable_strategies(app_class: AppClass) -> tuple[str, ...]:
    """All strategies applicable to a class, regardless of sync (Table I)."""
    return TABLE.suitable_strategies(app_class)


def best_strategy(app_class: AppClass, *, needs_sync: bool = False) -> str:
    """The top-ranked strategy for a class."""
    return TABLE.best_strategy(app_class, needs_sync=needs_sync)
