"""Table I: suitable strategies and their performance ranking (§III-C).

==============================  ==============================================
Application class               Ranking (best first)
==============================  ==============================================
SK-One, SK-Loop                 SP-Single, DP-Perf, DP-Dep
MK-Seq, MK-Loop (w/o sync)      SP-Unified, DP-Perf, DP-Dep, SP-Varied
MK-Seq, MK-Loop (w sync)        SP-Varied, DP-Perf, DP-Dep, SP-Unified
MK-DAG                          DP-Perf, DP-Dep
==============================  ==============================================

The ranking rests on the paper's three propositions, reproduced in
:data:`PROPOSITIONS` and validated empirically by the integration tests
and :mod:`repro.bench.experiments`.
"""

from __future__ import annotations

from repro.core.classes import AppClass
from repro.errors import ClassificationError

#: the paper's three ranking propositions ("≥" = outperforms or equals)
PROPOSITIONS: dict[int, str] = {
    1: "For all classes, DP-Perf >= DP-Dep: performance-aware scheduling "
       "distinguishes device capabilities; breadth-first cannot, and may "
       "overload the weaker device.",
    2: "For SK-One and SK-Loop, SP-Single > DP-Perf >= DP-Dep: the static "
       "split is optimal and pays no runtime scheduling overhead; at best "
       "a dynamic policy discovers the same split, later and at a cost.",
    3: "For MK-Seq and MK-Loop: without inter-kernel synchronization, "
       "SP-Unified > DP-Perf >= DP-Dep >= SP-Varied (SP-Varied adds "
       "synchronization and transfers the application never needed); with "
       "synchronization, SP-Varied > DP-Perf >= DP-Dep >= SP-Unified "
       "(per-kernel optima win; a unified split ignores kernel "
       "differences).",
}

_SK_RANKING = ("SP-Single", "DP-Perf", "DP-Dep")
_MK_NOSYNC = ("SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied")
_MK_SYNC = ("SP-Varied", "DP-Perf", "DP-Dep", "SP-Unified")
_DAG_RANKING = ("DP-Perf", "DP-Dep")


def ranking(app_class: AppClass, *, needs_sync: bool = False) -> tuple[str, ...]:
    """Strategy names ranked best-first for a class (paper Table I).

    ``needs_sync`` selects the MK-Seq/MK-Loop sub-case: whether the
    application originally uses — or, because of partitioned outputs
    feeding post-processing, needs — inter-kernel synchronization.
    """
    if app_class.single_kernel:
        return _SK_RANKING
    if app_class is AppClass.MK_DAG:
        return _DAG_RANKING
    if app_class in (AppClass.MK_SEQ, AppClass.MK_LOOP):
        return _MK_SYNC if needs_sync else _MK_NOSYNC
    raise ClassificationError(f"unhandled class {app_class}")  # pragma: no cover


def suitable_strategies(app_class: AppClass) -> tuple[str, ...]:
    """All strategies applicable to a class, regardless of sync (Table I)."""
    if app_class.single_kernel:
        return _SK_RANKING
    if app_class is AppClass.MK_DAG:
        return _DAG_RANKING
    return _MK_NOSYNC  # both MK orderings contain the same four strategies


def best_strategy(app_class: AppClass, *, needs_sync: bool = False) -> str:
    """The top-ranked strategy for a class."""
    return ranking(app_class, needs_sync=needs_sync)[0]
