"""The analysis step: program -> class -> ranked strategies (§III-A).

The analyzer implements steps (2) and (3) of the paper's Figure 2 flow:
analyze the kernel structure, identify the class, and select the ranked
strategies.  Step (4) — enabling the chosen strategy — is the matchmaker's
job (:mod:`repro.core.matchmaker`).

Which *ranking* step (3) consults is pluggable: the default is the
paper's Table I, ``ranker="measured"`` substitutes a tournament-derived
ordering (see :mod:`repro.core.ranking`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import Application
from repro.core.classes import AppClass
from repro.core.classifier import classify
from repro.core.ranking import RankingProvider, resolve_ranker
from repro.core.structure import KernelStructure, derive_structure
from repro.runtime.graph import Program


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the analyzer determined about one application."""

    application: str
    structure: KernelStructure
    app_class: AppClass
    needs_sync: bool
    #: suitable strategies, best-ranked first, per the ranking provider
    ranked_strategies: tuple[str, ...]
    #: name of the provider that produced the ordering ("table"/"measured")
    ranker: str = "table"

    @property
    def best_strategy(self) -> str:
        return self.ranked_strategies[0]


def analyze_program(
    program: Program,
    *,
    name: str = "<program>",
    needs_sync: bool | None = None,
    ranker: str | RankingProvider | None = None,
) -> AnalysisReport:
    """Analyze a raw program.

    ``needs_sync`` defaults to what the program itself declares (taskwait
    markers between kernels); pass it explicitly for applications that
    *need* synchronization for post-processing even though the ported code
    does not yet contain it.  ``ranker`` selects the ranking provider
    (``"table"`` — the default — or ``"measured"``, or a
    :class:`~repro.core.ranking.RankingProvider` instance).
    """
    provider = resolve_ranker(ranker)
    structure = derive_structure(program)
    app_class = classify(structure)
    sync = structure.has_inter_kernel_sync if needs_sync is None else needs_sync
    return AnalysisReport(
        application=name,
        structure=structure,
        app_class=app_class,
        needs_sync=sync,
        ranked_strategies=provider.ranking(app_class, needs_sync=sync),
        ranker=provider.name,
    )


def analyze(
    app: Application,
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    ranker: str | RankingProvider | None = None,
) -> AnalysisReport:
    """Analyze an :class:`~repro.apps.base.Application`.

    The application's own ``needs_sync`` declaration is used unless
    overridden — STREAM, for instance, is analyzed as needing sync only in
    its ``-w`` configuration.
    """
    effective_sync = app.needs_sync if sync is None else sync
    program = app.program(n, iterations=iterations, sync=effective_sync)
    return analyze_program(
        program, name=app.name, needs_sync=effective_sync, ranker=ranker
    )
