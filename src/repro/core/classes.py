"""The five application classes (paper §III-B, Figure 3)."""

from __future__ import annotations

import enum


class AppClass(enum.Enum):
    """Application classification by kernel structure.

    The two criteria are the number of kernels and the type of kernel
    execution flow (a sequence, a loop, or a full DAG).
    """

    #: Class I — a single kernel
    SK_ONE = "SK-One"
    #: Class II — a single kernel iterated in a loop
    SK_LOOP = "SK-Loop"
    #: Class III — multiple kernels executed in a sequence
    MK_SEQ = "MK-Seq"
    #: Class IV — multiple kernels in a sequence, iterated in a loop
    MK_LOOP = "MK-Loop"
    #: Class V — multiple kernels whose execution forms a DAG
    MK_DAG = "MK-DAG"

    @property
    def roman(self) -> str:
        """The paper's roman-numeral class label."""
        return {
            AppClass.SK_ONE: "I",
            AppClass.SK_LOOP: "II",
            AppClass.MK_SEQ: "III",
            AppClass.MK_LOOP: "IV",
            AppClass.MK_DAG: "V",
        }[self]

    @property
    def single_kernel(self) -> bool:
        return self in (AppClass.SK_ONE, AppClass.SK_LOOP)

    @property
    def multi_kernel(self) -> bool:
        return not self.single_kernel

    @classmethod
    def from_label(cls, label: str) -> "AppClass":
        """Parse a class from its paper label (``"SK-One"`` ...)."""
        for member in cls:
            if member.value == label:
                return member
        raise ValueError(f"unknown application class label {label!r}")
