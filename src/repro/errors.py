"""Exception taxonomy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration problems from runtime-model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters."""


class PlatformError(ConfigurationError):
    """A platform/topology description is invalid (e.g. no host device)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PlanCompileError(SimulationError):
    """An execution plan is not expressible as a compiled run-plan.

    Raised by :func:`repro.sim.plan.compile_plan` when a plan uses a
    dynamic scheduler or carries unpinned instances; callers fall back to
    the general event-driven engine.
    """


class SchedulingError(ReproError):
    """A scheduler produced an invalid decision (unknown device, etc.)."""


class DependenceError(ReproError):
    """Task dependence analysis failed (e.g. malformed data regions)."""


class MemoryModelError(ReproError):
    """The multi-memory-space coherence model was driven inconsistently."""


class PartitioningError(ReproError):
    """A partitioning strategy could not produce a valid plan."""


class StrategyInapplicableError(PartitioningError):
    """The requested strategy is not applicable to the application class.

    Raised for instance when ``SP-Single`` is requested for a multi-kernel
    application, or a static strategy for an MK-DAG application.
    """


class ClassificationError(ReproError):
    """An application kernel structure could not be classified."""


class ExperimentError(ReproError):
    """A benchmark/experiment driver was misconfigured."""


class DistributedSweepError(ReproError):
    """A distributed sweep could not complete (workers unreachable/failed)."""


class WorkerProtocolError(DistributedSweepError):
    """A distrib frame was malformed, truncated, or version-incompatible."""
