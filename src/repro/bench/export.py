"""Export experiment results to CSV/JSON for external plotting.

The paper's figures are bar charts; downstream users typically want the
underlying series in a machine-readable form.  These writers keep the
library free of plotting dependencies while making every regenerated
table/figure consumable by pandas/gnuplot/spreadsheets.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable

from repro.bench.harness import ScenarioResult
from repro.bench.speedup import SpeedupRow


def scenario_rows(scenarios: Iterable[ScenarioResult]) -> list[dict]:
    """Flatten scenario results into one record per (scenario, strategy).

    Every value is read from the outcome's
    :class:`~repro.artifact.RunArtifact` summary, so summarized sweep
    results (the ``detail="summary"`` default) export identically to
    full-trace ones.
    """
    rows = []
    for scenario in scenarios:
        for outcome in scenario.outcomes:
            result = outcome.result
            rows.append({
                "scenario": scenario.label,
                "application": scenario.application,
                "sync": scenario.sync,
                "strategy": outcome.strategy,
                "makespan_ms": round(result.makespan_ms, 4),
                "gpu_fraction": round(result.gpu_fraction, 4),
                "cpu_fraction": round(result.cpu_fraction, 4),
                "h2d_bytes": result.transfer_bytes.get("h2d", 0),
                "d2h_bytes": result.transfer_bytes.get("d2h", 0),
                "transfer_time_ms": round(
                    result.total_transfer_time_s * 1e3, 4
                ),
                "instances": result.instance_count,
            })
    return rows


def speedup_rows(rows: Iterable[SpeedupRow]) -> list[dict]:
    """Flatten Figure 12 rows."""
    return [
        {
            "scenario": r.scenario,
            "best_strategy": r.best_strategy,
            "best_ms": round(r.best_ms, 4),
            "only_gpu_ms": round(r.only_gpu_ms, 4),
            "only_cpu_ms": round(r.only_cpu_ms, 4),
            "speedup_vs_only_gpu": round(r.vs_only_gpu, 4),
            "speedup_vs_only_cpu": round(r.vs_only_cpu, 4),
        }
        for r in rows
    ]


def to_csv(records: list[dict]) -> str:
    """Render records as CSV text (header from the first record)."""
    if not records:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(records[0]))
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()


def to_json(records: list[dict]) -> str:
    """Render records as pretty-printed JSON."""
    return json.dumps(records, indent=2, sort_keys=False)


def write_records(records: list[dict], path: str | Path) -> Path:
    """Write records to ``path``; the suffix picks the format (.csv/.json)."""
    path = Path(path)
    if path.suffix == ".csv":
        text = to_csv(records)
    elif path.suffix == ".json":
        text = to_json(records)
    else:
        raise ValueError(f"unsupported export format {path.suffix!r}")
    path.write_text(text)
    return path
