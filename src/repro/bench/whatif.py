"""What-if exploration: the measured response curve T(β) of a split.

The Glinda papers argue from the shape of ``T(β)`` — execution time as a
function of the GPU fraction — that the optimum is the intersection of the
(rising) GPU line and the (falling) CPU line.  This module *measures* that
curve on the simulator by pinning every candidate split and running it,
then locates the empirical optimum so it can be compared against the
model's prediction.  If the model and the executor ever drift apart, the
predicted β stops sitting in the measured valley — the strongest
end-to-end validation of the static-partitioning stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.partition._static_common import static_chunks
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    StrategyDecision,
    finalize_graph,
    run_plan,
)
from repro.platform.topology import Platform
from repro.runtime.graph import Program
from repro.runtime.schedulers.base import StaticScheduler
from repro.units import round_up


@dataclass(frozen=True)
class ResponseCurve:
    """Measured makespans over a sweep of GPU fractions."""

    fractions: tuple[float, ...]
    makespans_ms: tuple[float, ...]

    @property
    def best_fraction(self) -> float:
        idx = min(range(len(self.fractions)),
                  key=lambda i: self.makespans_ms[i])
        return self.fractions[idx]

    @property
    def best_ms(self) -> float:
        return min(self.makespans_ms)

    def makespan_at(self, fraction: float) -> float:
        return self.makespans_ms[self.fractions.index(fraction)]

    def valley_contains(self, fraction: float, *, tolerance: float = 0.05
                        ) -> bool:
        """Whether ``fraction``'s measured time is within ``tolerance`` of
        the sweep minimum — i.e., it sits in the response curve's valley."""
        nearest = min(self.fractions, key=lambda f: abs(f - fraction))
        return self.makespan_at(nearest) <= self.best_ms * (1 + tolerance)


def pinned_split_plan(
    program: Program,
    platform: Platform,
    gpu_fraction: float,
    *,
    config: PlanConfig | None = None,
) -> ExecutionPlan:
    """A static plan with an explicit GPU fraction (no Glinda involved)."""
    if not (0.0 <= gpu_fraction <= 1.0):
        raise ExperimentError(f"gpu_fraction {gpu_fraction} outside [0, 1]")
    config = config or PlanConfig()
    m = config.threads(platform)

    def chunker(inv):
        n_gpu = min(
            round_up(int(round(gpu_fraction * inv.n)), config.warp_size),
            inv.n,
        )
        if gpu_fraction == 0.0:
            n_gpu = 0
        return static_chunks(inv, n_gpu, platform=platform, m=m)

    graph = finalize_graph(program, chunker)
    return ExecutionPlan(
        graph=graph,
        scheduler=StaticScheduler(),
        decision=StrategyDecision(
            strategy=f"pinned-{gpu_fraction:.2f}",
            hardware_config="cpu+gpu",
            gpu_fraction_by_kernel={
                k.name: gpu_fraction for k in program.kernels
            },
        ),
    )


def split_response_curve(
    program: Program,
    platform: Platform,
    *,
    fractions: tuple[float, ...] = (
        0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ),
    config: PlanConfig | None = None,
) -> ResponseCurve:
    """Measure the makespan at every candidate GPU fraction."""
    if not fractions:
        raise ExperimentError("need at least one fraction")
    makespans = []
    for fraction in fractions:
        plan = pinned_split_plan(program, platform, fraction, config=config)
        makespans.append(run_plan(plan, platform).makespan_ms)
    return ResponseCurve(
        fractions=tuple(fractions), makespans_ms=tuple(makespans)
    )


def format_curve(curve: ResponseCurve, *, predicted: float | None = None,
                 width: int = 40) -> str:
    """ASCII rendering of the response curve."""
    worst = max(curve.makespans_ms)
    lines = []
    for fraction, ms in zip(curve.fractions, curve.makespans_ms):
        bar = "#" * max(1, int(ms / worst * width))
        markers = []
        if fraction == curve.best_fraction:
            markers.append("measured optimum")
        if predicted is not None and abs(fraction - predicted) <= (
            0.5 * min(
                abs(a - b)
                for a, b in zip(curve.fractions, curve.fractions[1:])
            )
        ):
            markers.append(f"Glinda predicts {predicted:.1%}")
        suffix = ("   <- " + ", ".join(markers)) if markers else ""
        lines.append(f"  GPU {fraction:>5.0%} {ms:>10.1f} ms {bar}{suffix}")
    return "\n".join(lines)
