"""Crossover analysis: where do the paper's win/lose boundaries sit?

Three crossovers structure the paper's evaluation:

* **STREAM: Only-GPU vs Only-CPU over iterations** — a single pass is
  CPU-won (transfers dominate), the iterated form is GPU-won (transfers
  amortize).  Somewhere in between the two baselines cross.
* **HotSpot: Only-CPU vs Only-GPU over link bandwidth** — the stencil is
  CPU-won on PCIe but GPU-won once the link is fast enough (the §VII
  future-work axis).
* **Hardware-configuration thresholds** — the problem size below which
  Glinda's decision step collapses a GPU-favoured kernel to a single
  device.

These sweeps locate the boundaries on the simulated platform so changes to
the models move a *number*, not just a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.harness import SweepCell, run_sweep
from repro.errors import ExperimentError
from repro.platform.device import Device
from repro.platform.interconnect import Link
from repro.platform.topology import Platform


@dataclass(frozen=True)
class CrossoverPoint:
    """Result of a 1-D sweep: the first x where ``b`` beats ``a``."""

    parameter: str
    values: tuple[float, ...]
    a: str
    b: str
    #: measured a/b time ratios per value (>1 means b wins)
    ratios: tuple[float, ...]
    crossover: float | None  # None when b never wins in the sweep

    def winner_at(self, value: float) -> str:
        idx = self.values.index(value)
        return self.b if self.ratios[idx] > 1.0 else self.a


def _ratio(a_ms: float, b_ms: float) -> float:
    return a_ms / b_ms


def stream_iteration_crossover(
    platform: Platform,
    *,
    iterations: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 10),
    n: int | None = None,
    jobs: int = 1,
    workers: Sequence[str] | None = None,
    progress: bool = False,
) -> CrossoverPoint:
    """Sweep STREAM-Loop iterations: where Only-GPU overtakes Only-CPU."""
    cells = [
        SweepCell(
            app="STREAM-Loop", strategy=strategy, platform=platform,
            n=n, iterations=it, sync=False,
        )
        for it in iterations
        for strategy in ("Only-CPU", "Only-GPU")
    ]
    outcomes = run_sweep(cells, jobs=jobs, workers=workers, progress=progress)
    ratios = []
    crossover = None
    for i, it in enumerate(iterations):
        oc = outcomes[2 * i].makespan_ms
        og = outcomes[2 * i + 1].makespan_ms
        ratios.append(_ratio(oc, og))
        if crossover is None and ratios[-1] > 1.0:
            crossover = float(it)
    return CrossoverPoint(
        parameter="iterations",
        values=tuple(float(i) for i in iterations),
        a="Only-CPU",
        b="Only-GPU",
        ratios=tuple(ratios),
        crossover=crossover,
    )


def with_link_bandwidth(platform: Platform, bandwidth_gbs: float) -> Platform:
    """A copy of ``platform`` with every host link at ``bandwidth_gbs``."""
    if bandwidth_gbs <= 0:
        raise ExperimentError("bandwidth must be positive")
    links = {
        dev: Link(
            name=f"{link.name}@{bandwidth_gbs:g}GB/s",
            bandwidth_gbs=bandwidth_gbs,
            latency_s=link.latency_s,
            duplex=link.duplex,
        )
        for dev, link in platform.links.items()
    }
    return Platform(
        host=Device(
            platform.host.device_id, platform.host.spec,
            platform.host.cost_model,
        ),
        accelerators=[
            Device(a.device_id, a.spec, a.cost_model)
            for a in platform.accelerators
        ],
        links=links,
    )


def hotspot_bandwidth_crossover(
    platform: Platform,
    *,
    bandwidths_gbs: tuple[float, ...] = (3.0, 6.0, 12.0, 24.0, 48.0, 96.0),
    n: int | None = None,
    iterations: int | None = None,
    jobs: int = 1,
    workers: Sequence[str] | None = None,
    progress: bool = False,
) -> CrossoverPoint:
    """Sweep link bandwidth: where Only-GPU overtakes Only-CPU on HotSpot."""
    cells = [
        SweepCell(
            app="HotSpot", strategy=strategy,
            platform=with_link_bandwidth(platform, bw),
            n=n, iterations=iterations,
        )
        for bw in bandwidths_gbs
        for strategy in ("Only-CPU", "Only-GPU")
    ]
    outcomes = run_sweep(cells, jobs=jobs, workers=workers, progress=progress)
    ratios = []
    crossover = None
    for i, bw in enumerate(bandwidths_gbs):
        oc = outcomes[2 * i].makespan_ms
        og = outcomes[2 * i + 1].makespan_ms
        ratios.append(_ratio(oc, og))
        if crossover is None and ratios[-1] > 1.0:
            crossover = bw
    return CrossoverPoint(
        parameter="link_bandwidth_gbs",
        values=tuple(bandwidths_gbs),
        a="Only-CPU",
        b="Only-GPU",
        ratios=tuple(ratios),
        crossover=crossover,
    )


def format_crossover(point: CrossoverPoint) -> str:
    """Plain-text rendering of a sweep."""
    lines = [
        f"sweep over {point.parameter}: {point.a} vs {point.b} "
        f"(ratio > 1 means {point.b} wins)"
    ]
    for value, ratio in zip(point.values, point.ratios):
        marker = "<-- crossover" if value == point.crossover else ""
        lines.append(
            f"  {point.parameter}={value:<8g} "
            f"{point.a}/{point.b} = {ratio:6.2f} {marker}"
        )
    if point.crossover is None:
        lines.append(f"  ({point.b} never wins in this range)")
    return "\n".join(lines)
