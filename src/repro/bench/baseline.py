"""Regression baselines: persist a run's numbers and diff later runs.

A reproduction only stays reproduced while its numbers hold.  This module
snapshots the full experiment matrix into JSON and compares a fresh run
against a stored snapshot with a relative tolerance, so model changes that
move results show up as a *diff*, not as silent drift.

Workflow::

    python -m repro baseline --save results/baseline.json
    ...hack on the models...
    python -m repro baseline --check results/baseline.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import ScenarioResult
from repro.bench.validation import run_full_matrix
from repro.platform.topology import Platform

#: snapshot format version (bump on breaking layout changes)
FORMAT_VERSION = 1


def snapshot(matrix: dict[str, ScenarioResult]) -> dict:
    """Condense a matrix into a JSON-serializable snapshot."""
    scenarios = {}
    for label, scenario in matrix.items():
        scenarios[label] = {
            o.strategy: {
                "makespan_ms": round(o.makespan_ms, 6),
                "gpu_fraction": round(o.gpu_fraction, 6),
            }
            for o in scenario.outcomes
        }
    return {"version": FORMAT_VERSION, "scenarios": scenarios}


def save_baseline(platform: Platform, path: str | Path) -> Path:
    """Run the full matrix and persist its snapshot."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = snapshot(run_full_matrix(platform))
    path.write_text(json.dumps(data, indent=2, sort_keys=True))
    return path


@dataclass
class BaselineDiff:
    """Differences between a stored snapshot and a fresh run."""

    changes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.changes

    def summary(self) -> str:
        if self.ok:
            return "baseline check: no drift"
        return "baseline check: drift detected\n  " + "\n  ".join(self.changes)


def compare(
    stored: dict,
    fresh: dict,
    *,
    rtol: float = 0.01,
    atol_fraction: float = 0.02,
) -> BaselineDiff:
    """Diff two snapshots; times use ``rtol``, ratios use ``atol``."""
    diff = BaselineDiff()
    if stored.get("version") != fresh.get("version"):
        diff.changes.append(
            f"format version {stored.get('version')} != {fresh.get('version')}"
        )
        return diff
    old = stored["scenarios"]
    new = fresh["scenarios"]
    for label in sorted(set(old) | set(new)):
        if label not in old:
            diff.changes.append(f"new scenario {label}")
            continue
        if label not in new:
            diff.changes.append(f"missing scenario {label}")
            continue
        for strategy in sorted(set(old[label]) | set(new[label])):
            if strategy not in old[label]:
                diff.changes.append(f"{label}: new strategy {strategy}")
                continue
            if strategy not in new[label]:
                diff.changes.append(f"{label}: missing strategy {strategy}")
                continue
            o, n = old[label][strategy], new[label][strategy]
            t_old, t_new = o["makespan_ms"], n["makespan_ms"]
            if abs(t_new - t_old) > rtol * max(abs(t_old), 1e-9):
                diff.changes.append(
                    f"{label}/{strategy}: makespan {t_old:.1f} -> "
                    f"{t_new:.1f} ms ({(t_new - t_old) / t_old:+.1%})"
                )
            f_old, f_new = o["gpu_fraction"], n["gpu_fraction"]
            if abs(f_new - f_old) > atol_fraction:
                diff.changes.append(
                    f"{label}/{strategy}: gpu fraction {f_old:.3f} -> "
                    f"{f_new:.3f}"
                )
    return diff


def check_baseline(
    platform: Platform, path: str | Path, *, rtol: float = 0.01
) -> BaselineDiff:
    """Run the matrix and diff it against a stored snapshot."""
    stored = json.loads(Path(path).read_text())
    fresh = snapshot(run_full_matrix(platform))
    return compare(stored, fresh, rtol=rtol)
