"""One experiment driver per paper table/figure (see DESIGN.md §4).

Each :class:`Experiment` names the paper artifact it regenerates, the
scenarios (application + sync mode) involved, and the strategies compared.
:func:`run_experiment` executes it on a platform; ``scale`` shrinks the
problem sizes for quick runs (tests use ``scale`` well below 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.registry import get_application
from repro.bench.harness import (
    MK_STRATEGIES,
    SK_STRATEGIES,
    DAG_STRATEGIES,
    ScenarioResult,
    SweepCell,
    assemble_scenario,
    run_scenario,
    run_sweep,
)
from repro.core.analyzer import analyze
from repro.errors import ExperimentError
from repro.platform.topology import Platform
from repro.units import round_up


@dataclass(frozen=True)
class Scenario:
    """One application configuration inside an experiment."""

    app: str
    sync: bool | None = None  # None = the application's natural mode


@dataclass(frozen=True)
class Experiment:
    """A paper table/figure to regenerate."""

    key: str
    paper_artifact: str
    description: str
    scenarios: tuple[Scenario, ...]
    strategies: tuple[str, ...]

    def label(self) -> str:
        return f"{self.paper_artifact}: {self.description}"


EXPERIMENTS: dict[str, Experiment] = {
    "fig5": Experiment(
        key="fig5",
        paper_artifact="Figure 5",
        description="SK-One execution times (MatrixMul, BlackScholes)",
        scenarios=(Scenario("MatrixMul"), Scenario("BlackScholes")),
        strategies=SK_STRATEGIES,
    ),
    "fig6": Experiment(
        key="fig6",
        paper_artifact="Figure 6",
        description="SK-One partitioning ratios",
        scenarios=(Scenario("MatrixMul"), Scenario("BlackScholes")),
        strategies=("SP-Single", "DP-Perf", "DP-Dep"),
    ),
    "fig7": Experiment(
        key="fig7",
        paper_artifact="Figure 7",
        description="SK-Loop execution times (Nbody, HotSpot)",
        scenarios=(Scenario("Nbody"), Scenario("HotSpot")),
        strategies=SK_STRATEGIES,
    ),
    "fig8": Experiment(
        key="fig8",
        paper_artifact="Figure 8",
        description="SK-Loop partitioning ratios",
        scenarios=(Scenario("Nbody"), Scenario("HotSpot")),
        strategies=("SP-Single", "DP-Perf", "DP-Dep"),
    ),
    "fig9": Experiment(
        key="fig9",
        paper_artifact="Figure 9",
        description="MK-Seq execution times (STREAM-Seq, w/ and w/o sync)",
        scenarios=(
            Scenario("STREAM-Seq", sync=False),
            Scenario("STREAM-Seq", sync=True),
        ),
        strategies=MK_STRATEGIES,
    ),
    "fig10": Experiment(
        key="fig10",
        paper_artifact="Figure 10",
        description="MK-Seq partitioning ratios (per kernel for SP-Varied)",
        scenarios=(
            Scenario("STREAM-Seq", sync=False),
            Scenario("STREAM-Seq", sync=True),
        ),
        strategies=("SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied"),
    ),
    "fig11": Experiment(
        key="fig11",
        paper_artifact="Figure 11",
        description="MK-Loop execution times (STREAM-Loop, w/ and w/o sync)",
        scenarios=(
            Scenario("STREAM-Loop", sync=False),
            Scenario("STREAM-Loop", sync=True),
        ),
        strategies=MK_STRATEGIES,
    ),
    "mkdag": Experiment(
        key="mkdag",
        paper_artifact="Section IV footnote 3 / ref [20]",
        description="MK-DAG dynamic scheduling (blocked Cholesky extension)",
        scenarios=(Scenario("Cholesky"),),
        strategies=DAG_STRATEGIES,
    ),
    "spmv": Experiment(
        key="spmv",
        paper_artifact="ref [9] (imbalanced workloads)",
        description="Imbalanced SpMV (heavy-tailed, degree-ordered CSR)",
        scenarios=(Scenario("SpMV"),),
        strategies=SK_STRATEGIES,
    ),
    "fdtd": Experiment(
        key="fdtd",
        paper_artifact="extension (MK-Loop via halo dependences)",
        description="FDTD E/H updates chained by halos, no taskwaits",
        scenarios=(Scenario("FDTD"),),
        strategies=MK_STRATEGIES,
    ),
}


def scaled_size(app_name: str, scale: float) -> int:
    """The application's paper problem size scaled by ``scale``.

    Sizes are kept structurally valid: at least 256 indices (but never
    more than the paper size — tile-granular applications like Cholesky
    have small index spaces), rounded to a warp multiple so static GPU
    rounding stays representative.
    """
    if not (0.0 < scale <= 1.0):
        raise ExperimentError(f"scale must be in (0, 1], got {scale}")
    app = get_application(app_name)
    floor = min(256, app.paper_n)
    n = max(floor, int(app.paper_n * scale))
    if n <= floor:
        return n
    return round_up(n, 32)


def run_experiment(
    key: str,
    platform: Platform,
    *,
    scale: float = 1.0,
    iterations: int | None = None,
    jobs: int = 1,
    workers: Sequence[str] | None = None,
    detail: str = "summary",
    fuse: int | None = None,
    progress: bool = False,
) -> list[ScenarioResult]:
    """Run one experiment; returns one :class:`ScenarioResult` per scenario.

    All scenario x strategy cells are flattened into one sweep, so
    ``jobs > 1`` parallelizes across the whole experiment, not just
    within a scenario, and ``workers=["host:port", ...]`` shards the
    same flat sweep over remote workers (see :mod:`repro.distrib`).
    Results are order-deterministic either way.
    Every reported number comes from the artifacts'
    :class:`~repro.artifact.TraceSummary`; pass ``detail="full"`` to also
    keep the raw traces on the outcomes.  ``progress`` reports
    ``completed/total`` cells to stderr as the sweep streams.
    """
    try:
        experiment = EXPERIMENTS[key]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    cells = []
    for scenario in experiment.scenarios:
        n = scaled_size(scenario.app, scale) if scale != 1.0 else None
        for name in experiment.strategies:
            cells.append(
                SweepCell(
                    app=scenario.app, strategy=name, platform=platform,
                    n=n, iterations=iterations, sync=scenario.sync,
                )
            )
    outcomes = run_sweep(
        cells, jobs=jobs, workers=workers, detail=detail, fuse=fuse,
        progress=progress,
    )
    results = []
    stride = len(experiment.strategies)
    for i, scenario in enumerate(experiment.scenarios):
        app = get_application(scenario.app)
        results.append(
            assemble_scenario(
                app, scenario.sync, experiment.strategies,
                outcomes[i * stride: (i + 1) * stride],
            )
        )
    return results


@dataclass
class RankingComparison:
    """Theoretical (Table I) vs empirical strategy ranking for one scenario."""

    scenario: str
    theoretical: tuple[str, ...]
    empirical: tuple[str, ...]
    #: measured makespans, ms, keyed by strategy
    times_ms: dict[str, float] = field(default_factory=dict)

    def matches(self, *, tie_tolerance: float = 1.12) -> bool:
        """Whether the measured times respect the theoretical order.

        Adjacent strategies in the theoretical ranking may appear swapped
        when within ``tie_tolerance`` of each other — the paper's own ">="
        relations ("outperforms or equals").  The top-ranked strategy must
        be fastest up to the same tolerance.
        """
        order = list(self.theoretical)
        times = [self.times_ms[s] for s in order]
        if min(self.times_ms.values()) * tie_tolerance < times[0]:
            return False
        return all(
            times[i] <= times[i + 1] * tie_tolerance for i in range(len(times) - 1)
        )


def empirical_ranking(
    app_name: str,
    platform: Platform,
    *,
    sync: bool | None = None,
    scale: float = 1.0,
    iterations: int | None = None,
) -> RankingComparison:
    """Run all suitable strategies and compare against Table I."""
    app = get_application(app_name)
    report = analyze(app, sync=sync)
    n = scaled_size(app_name, scale) if scale != 1.0 else None
    scenario = run_scenario(
        app,
        platform,
        report.ranked_strategies,
        n=n,
        iterations=iterations,
        sync=sync,
    )
    times = {o.strategy: o.makespan_ms for o in scenario.outcomes}
    empirical = tuple(sorted(times, key=times.__getitem__))
    return RankingComparison(
        scenario=scenario.label,
        theoretical=report.ranked_strategies,
        empirical=empirical,
        times_ms=times,
    )
