"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.bench.harness` — run one application under a set of
  strategies and collect :class:`StrategyOutcome` rows,
* :mod:`repro.bench.experiments` — one driver per paper table/figure,
* :mod:`repro.bench.tables` — plain-text rendering of result tables,
* :mod:`repro.bench.speedup` — Figure 12 (best strategy vs Only-GPU /
  Only-CPU speedups),
* :mod:`repro.bench.matchup` — measured tournament rankings vs Table I,
  proposition violations and new-family upsets.
"""

from repro.bench.harness import (
    ScenarioResult,
    StrategyOutcome,
    SweepCell,
    run_scenario,
    run_sweep,
    simulate_many,
    sk_strategies,
    mk_strategies,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    empirical_ranking,
    run_experiment,
)
from repro.bench.matchup import (
    CellVerdict,
    MatchupReport,
    check_propositions,
    compare_to_table,
    format_matchup,
)
from repro.bench.speedup import SpeedupRow, figure12
from repro.bench.tables import format_ratio_table, format_time_table

__all__ = [
    "ScenarioResult",
    "StrategyOutcome",
    "SweepCell",
    "run_scenario",
    "run_sweep",
    "simulate_many",
    "sk_strategies",
    "mk_strategies",
    "EXPERIMENTS",
    "Experiment",
    "empirical_ranking",
    "run_experiment",
    "CellVerdict",
    "MatchupReport",
    "check_propositions",
    "compare_to_table",
    "format_matchup",
    "SpeedupRow",
    "figure12",
    "format_ratio_table",
    "format_time_table",
]
