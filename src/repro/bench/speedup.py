"""Figure 12: speedup of the best strategy vs Only-GPU / Only-CPU."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import get_application
from repro.bench.experiments import scaled_size
from repro.bench.harness import MK_STRATEGIES, SK_STRATEGIES, run_scenario
from repro.platform.topology import Platform

#: the eight configurations of Figure 12, in the paper's order
FIG12_CONFIGS: tuple[tuple[str, bool | None], ...] = (
    ("MatrixMul", None),
    ("BlackScholes", None),
    ("Nbody", None),
    ("HotSpot", None),
    ("STREAM-Seq", True),
    ("STREAM-Seq", False),
    ("STREAM-Loop", True),
    ("STREAM-Loop", False),
)


@dataclass(frozen=True)
class SpeedupRow:
    """One group of Figure 12 bars."""

    scenario: str
    best_strategy: str
    best_ms: float
    only_gpu_ms: float
    only_cpu_ms: float

    @property
    def vs_only_gpu(self) -> float:
        return self.only_gpu_ms / self.best_ms

    @property
    def vs_only_cpu(self) -> float:
        return self.only_cpu_ms / self.best_ms


def figure12(
    platform: Platform,
    *,
    scale: float = 1.0,
    iterations: int | None = None,
) -> list[SpeedupRow]:
    """Regenerate Figure 12 across the eight application configurations."""
    rows = []
    for app_name, sync in FIG12_CONFIGS:
        app = get_application(app_name)
        strategies = (
            SK_STRATEGIES if app.paper_class.startswith("SK") else MK_STRATEGIES
        )
        n = scaled_size(app_name, scale) if scale != 1.0 else None
        scenario = run_scenario(
            app, platform, strategies, n=n, iterations=iterations, sync=sync
        )
        best = scenario.best_strategy(exclude_baselines=True)
        rows.append(
            SpeedupRow(
                scenario=scenario.label,
                best_strategy=best,
                best_ms=scenario.makespan_ms(best),
                only_gpu_ms=scenario.makespan_ms("Only-GPU"),
                only_cpu_ms=scenario.makespan_ms("Only-CPU"),
            )
        )
    return rows


def average_speedups(rows: list[SpeedupRow]) -> tuple[float, float]:
    """``(mean vs Only-GPU, mean vs Only-CPU)`` — the paper's 3.0x/5.3x."""
    n = len(rows)
    return (
        sum(r.vs_only_gpu for r in rows) / n,
        sum(r.vs_only_cpu for r in rows) / n,
    )


def format_figure12(rows: list[SpeedupRow]) -> str:
    """Plain-text rendering of Figure 12."""
    lines = [
        f"{'scenario':<18} {'best':<12} {'vs Only-GPU':>12} {'vs Only-CPU':>12}"
    ]
    for r in rows:
        lines.append(
            f"{r.scenario:<18} {r.best_strategy:<12} "
            f"{r.vs_only_gpu:>11.2f}x {r.vs_only_cpu:>11.2f}x"
        )
    avg_og, avg_oc = average_speedups(rows)
    lines.append(
        f"{'average':<18} {'':<12} {avg_og:>11.2f}x {avg_oc:>11.2f}x"
    )
    return "\n".join(lines)
