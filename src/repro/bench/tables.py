"""Plain-text rendering of experiment results (the figures' data tables)."""

from __future__ import annotations

from typing import Iterable

from repro.bench.harness import ScenarioResult


def format_time_table(
    scenarios: Iterable[ScenarioResult], *, title: str = ""
) -> str:
    """Execution times (ms) per strategy per scenario — a paper bar chart."""
    scenarios = list(scenarios)
    strategies: list[str] = []
    for scenario in scenarios:
        for o in scenario.outcomes:
            if o.strategy not in strategies:
                strategies.append(o.strategy)
    name_w = max(len(s) for s in strategies) + 2
    col_w = max(12, max(len(s.label) for s in scenarios) + 2)
    lines = []
    if title:
        lines.append(title)
    header = " " * name_w + "".join(f"{s.label:>{col_w}}" for s in scenarios)
    lines.append(header)
    for strategy in strategies:
        row = f"{strategy:<{name_w}}"
        for scenario in scenarios:
            try:
                row += f"{scenario.makespan_ms(strategy):>{col_w}.1f}"
            except KeyError:
                row += f"{'-':>{col_w}}"
        lines.append(row)
    return "\n".join(lines)


def format_ratio_table(
    scenarios: Iterable[ScenarioResult],
    *,
    title: str = "",
    per_kernel: bool = False,
) -> str:
    """GPU/CPU partitioning ratios per strategy — the Figs. 6/8/10 data.

    With ``per_kernel`` each kernel's split is listed separately (the way
    Fig. 10 reports SP-Varied).
    """
    scenarios = list(scenarios)
    lines = []
    if title:
        lines.append(title)
    for scenario in scenarios:
        lines.append(f"{scenario.label}:")
        for o in scenario.outcomes:
            if per_kernel:
                parts = []
                for kernel, split in sorted(o.ratio_by_kernel.items()):
                    total = sum(split.values())
                    gpu = split.get("gpu", 0) / total if total else 0.0
                    parts.append(f"{kernel}={gpu:.0%}G/{1 - gpu:.0%}C")
                detail = "  ".join(parts)
            else:
                gpu = o.gpu_fraction
                detail = f"GPU {gpu:6.1%} / CPU {1 - gpu:6.1%}"
            lines.append(f"  {o.strategy:<12} {detail}")
    return "\n".join(lines)
