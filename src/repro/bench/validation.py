"""Paper-shape validation: every qualitative claim of the evaluation.

This module encodes the paper's findings as machine-checkable constraints:
who wins each scenario, the characteristic partitioning ratios, the
transfer-boundedness observations, and the Figure 12 speedup envelope.
``scripts/calibrate.py``, the integration tests, and the benchmark harness
all run the same checks.

Absolute numbers are not expected to match the paper (our substrate is a
calibrated simulator, not the authors' testbed); orderings and ratios are.
The paper's ">=" relations ("outperforms or equals") are validated with a
12% tie tolerance, the magnitude of the paper's own empirical ties (e.g.
DP-Perf vs DP-Dep on STREAM: "no visible performance difference").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import get_application
from repro.bench.harness import MK_STRATEGIES, SK_STRATEGIES, ScenarioResult, run_scenario
from repro.bench.speedup import SpeedupRow, average_speedups, figure12
from repro.platform.topology import Platform
from repro.runtime.executor import RuntimeConfig

#: tolerance for "outperforms or equals" relations
TIE = 1.12


@dataclass
class ShapeReport:
    """Outcome of the full shape validation."""

    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    avg_speedup_vs_gpu: float = 0.0
    avg_speedup_vs_cpu: float = 0.0
    max_speedup: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [
            f"shape checks: {len(self.passed)} passed, {len(self.failed)} failed",
            f"speedups: avg vs Only-GPU {self.avg_speedup_vs_gpu:.2f}x "
            f"(paper 3.0x), avg vs Only-CPU {self.avg_speedup_vs_cpu:.2f}x "
            f"(paper 5.3x), max {self.max_speedup:.1f}x (paper 22.2x)",
        ]
        lines.extend(f"  FAIL: {f}" for f in self.failed)
        return "\n".join(lines)


def run_full_matrix(
    platform: Platform,
    *,
    runtime_config: RuntimeConfig | None = None,
) -> dict[str, ScenarioResult]:
    """All eight Figure-5..11 scenarios at paper problem sizes."""
    matrix: dict[str, ScenarioResult] = {}
    for name in ("MatrixMul", "BlackScholes", "Nbody", "HotSpot"):
        scenario = run_scenario(
            get_application(name), platform, SK_STRATEGIES,
            runtime_config=runtime_config,
        )
        matrix[scenario.label] = scenario
    for name in ("STREAM-Seq", "STREAM-Loop"):
        for sync in (False, True):
            scenario = run_scenario(
                get_application(name), platform, MK_STRATEGIES, sync=sync,
                runtime_config=runtime_config,
            )
            matrix[scenario.label] = scenario
    return matrix


def validate_shapes(
    matrix: dict[str, ScenarioResult],
    *,
    rows: list[SpeedupRow] | None = None,
    tie: float = TIE,
) -> ShapeReport:
    """Check every paper claim against a full experiment matrix."""
    report = ShapeReport()

    def t(label: str, s: str) -> float:
        return matrix[label].makespan_ms(s)

    def frac(label: str, s: str) -> float:
        return matrix[label].outcome(s).gpu_fraction

    def expect(cond: bool, desc: str) -> None:
        (report.passed if cond else report.failed).append(desc)

    def faster(label: str, a: str, b: str, desc: str, tol: float = 1.0) -> None:
        expect(
            t(label, a) <= t(label, b) * tol,
            f"{label}: {desc} [{a}={t(label, a):.0f}ms vs "
            f"{b}={t(label, b):.0f}ms]",
        )

    # --- MatrixMul (Figs. 5a/6)
    expect(t("MatrixMul", "Only-GPU") * 5 < t("MatrixMul", "Only-CPU"),
           "MatrixMul: Only-GPU much better than Only-CPU")
    faster("MatrixMul", "SP-Single", "DP-Perf", "SP-Single best")
    faster("MatrixMul", "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep")
    expect(0.85 <= frac("MatrixMul", "SP-Single") <= 0.95,
           f"MatrixMul: SP-Single ~90% GPU "
           f"(got {frac('MatrixMul', 'SP-Single'):.2f})")
    expect(frac("MatrixMul", "DP-Perf") > 0.95,
           "MatrixMul: DP-Perf assigns (nearly) all instances to the GPU")
    expect(t("MatrixMul", "DP-Dep") > 0.7 * t("MatrixMul", "Only-CPU"),
           "MatrixMul: DP-Dep ~ Only-CPU (one GPU instance, imbalance)")

    # --- BlackScholes (Figs. 5b/6)
    faster("BlackScholes", "SP-Single", "DP-Perf", "SP-Single best")
    faster("BlackScholes", "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep")
    expect(0.50 <= frac("BlackScholes", "SP-Single") <= 0.68,
           f"BlackScholes: SP-Single ~59% GPU "
           f"(got {frac('BlackScholes', 'SP-Single'):.2f})")
    expect(frac("BlackScholes", "DP-Perf") > frac("BlackScholes", "SP-Single"),
           "BlackScholes: DP-Perf GPU share exceeds the optimal")

    # --- Nbody (Figs. 7a/8)
    expect(t("Nbody", "Only-GPU") * 10 < t("Nbody", "Only-CPU"),
           "Nbody: Only-GPU much better than Only-CPU")
    faster("Nbody", "SP-Single", "DP-Perf", "SP-Single best among strategies")
    faster("Nbody", "SP-Single", "Only-GPU", "SP-Single ~ Only-GPU", tol=tie)
    faster("Nbody", "Only-GPU", "DP-Perf", "DP-Perf worse than Only-GPU")
    faster("Nbody", "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep")
    expect(frac("Nbody", "SP-Single") >= 0.85, "Nbody: SP-Single mostly GPU")

    # --- HotSpot (Figs. 7b/8)
    faster("HotSpot", "Only-CPU", "Only-GPU", "Only-CPU beats Only-GPU")
    faster("HotSpot", "SP-Single", "Only-CPU", "SP-Single beats Only-CPU")
    faster("HotSpot", "SP-Single", "DP-Perf", "SP-Single best")
    faster("HotSpot", "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep", tol=tie)
    expect(frac("HotSpot", "SP-Single") <= 0.45,
           "HotSpot: the CPU receives the larger share")

    # --- STREAM-Seq without sync (Figs. 9/10)
    lbl = "STREAM-Seq-w/o"
    faster(lbl, "SP-Unified", "DP-Perf", "SP-Unified best")
    faster(lbl, "SP-Unified", "SP-Varied", "SP-Unified beats SP-Varied")
    faster(lbl, "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep", tol=tie)
    faster(lbl, "DP-Dep", "SP-Varied", "DP-Dep >= SP-Varied", tol=tie)
    expect(0.30 <= frac(lbl, "SP-Unified") <= 0.55,
           f"STREAM-Seq: SP-Unified ~44% GPU "
           f"(got {frac(lbl, 'SP-Unified'):.2f})")
    og = matrix[lbl].outcome("Only-GPU").result
    share = og.total_transfer_time_s / og.makespan_s
    expect(share > 0.75,
           f"STREAM-Seq Only-GPU: transfers ~88% of execution "
           f"(got {share:.0%})")

    # --- STREAM-Seq with sync
    lbl = "STREAM-Seq-w"
    faster(lbl, "SP-Varied", "DP-Perf", "SP-Varied best")
    faster(lbl, "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep", tol=tie)
    faster(lbl, "DP-Dep", "SP-Unified", "DP-Dep >= SP-Unified", tol=tie)
    dyn_wo = matrix["STREAM-Seq-w/o"].makespan_ms("DP-Dep")
    dyn_w = matrix["STREAM-Seq-w"].makespan_ms("DP-Dep")
    expect(1.05 <= dyn_w / dyn_wo <= 1.75,
           f"STREAM-Seq: sync degrades dynamic execution (paper ~35%, "
           f"got {dyn_w / dyn_wo - 1:.0%})")

    # --- STREAM-Loop without sync (Fig. 11)
    lbl = "STREAM-Loop-w/o"
    faster(lbl, "Only-GPU", "Only-CPU",
           "Only-GPU beats Only-CPU (transfers amortized)")
    faster(lbl, "SP-Unified", "DP-Perf", "SP-Unified best")
    faster(lbl, "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep", tol=tie)
    faster(lbl, "DP-Dep", "SP-Varied", "DP-Dep >= SP-Varied", tol=tie)

    # --- STREAM-Loop with sync
    lbl = "STREAM-Loop-w"
    faster(lbl, "SP-Varied", "DP-Perf", "SP-Varied best")
    faster(lbl, "DP-Perf", "DP-Dep", "DP-Perf >= DP-Dep", tol=tie)
    faster(lbl, "DP-Dep", "SP-Unified", "DP-Dep >= SP-Unified", tol=tie)

    # --- Figure 12
    if rows is not None:
        avg_og, avg_oc = average_speedups(rows)
        report.avg_speedup_vs_gpu = avg_og
        report.avg_speedup_vs_cpu = avg_oc
        report.max_speedup = max(
            max(r.vs_only_gpu for r in rows), max(r.vs_only_cpu for r in rows)
        )
        expect(1.5 <= avg_og <= 5.0,
               f"mean speedup vs Only-GPU near paper's 3.0x (got {avg_og:.2f})")
        expect(3.0 <= avg_oc <= 9.0,
               f"mean speedup vs Only-CPU near paper's 5.3x (got {avg_oc:.2f})")
        expect(report.max_speedup >= 12,
               f"max speedup of the same order as paper's 22.2x "
               f"(got {report.max_speedup:.1f})")
        for row in rows:
            app = get_application(row.scenario.split("-w")[0].rstrip("-"))
            expect(
                row.best_strategy
                == {"SK-One": "SP-Single", "SK-Loop": "SP-Single"}.get(
                    app.paper_class,
                    "SP-Varied" if row.scenario.endswith("-w") else "SP-Unified",
                ),
                f"{row.scenario}: empirical best matches Table I "
                f"(got {row.best_strategy})",
            )
    return report


def validate_platform(platform: Platform) -> ShapeReport:
    """Run the full matrix + Figure 12 and validate everything."""
    matrix = run_full_matrix(platform)
    rows = figure12(platform)
    return validate_shapes(matrix, rows=rows)
