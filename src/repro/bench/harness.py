"""Common machinery for running an application under many strategies.

Experiment drivers decompose their work into :class:`SweepCell` units —
one (application, strategy, platform, size) point each — and hand them to
:func:`run_sweep`, which runs them serially or fans them out across worker
processes.  Results always come back in cell order, so parallel runs are
byte-identical to serial ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.apps.base import Application
from repro.apps.registry import get_application
from repro.partition.base import PlanConfig, get_strategy
from repro.platform.topology import Platform
from repro.runtime.executor import ExecutionResult, RuntimeConfig

#: strategy sets per class family (baselines first, paper figure order)
SK_STRATEGIES = ("Only-GPU", "Only-CPU", "SP-Single", "DP-Perf", "DP-Dep")
MK_STRATEGIES = (
    "Only-GPU", "Only-CPU", "SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied",
)
DAG_STRATEGIES = ("Only-GPU", "Only-CPU", "DP-Perf", "DP-Dep")


def sk_strategies() -> tuple[str, ...]:
    """Strategies compared for SK-One/SK-Loop applications (Figs. 5/7)."""
    return SK_STRATEGIES


def mk_strategies() -> tuple[str, ...]:
    """Strategies compared for MK-Seq/MK-Loop applications (Figs. 9/11)."""
    return MK_STRATEGIES


@dataclass
class StrategyOutcome:
    """One bar of a paper figure: one strategy on one scenario."""

    strategy: str
    result: ExecutionResult

    @property
    def makespan_ms(self) -> float:
        return self.result.makespan_ms

    @property
    def gpu_fraction(self) -> float:
        return self.result.gpu_fraction

    @property
    def ratio_by_kernel(self) -> dict[str, dict[str, int]]:
        return self.result.ratio_by_kernel()


@dataclass
class ScenarioResult:
    """All strategies of one scenario (one figure group)."""

    label: str
    application: str
    sync: bool | None
    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: str) -> StrategyOutcome:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o
        raise KeyError(f"{self.label}: no outcome for {strategy!r}")

    def makespan_ms(self, strategy: str) -> float:
        return self.outcome(strategy).makespan_ms

    def best_strategy(self, *, exclude_baselines: bool = True) -> str:
        """The fastest strategy (by default excluding Only-CPU/Only-GPU)."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return min(candidates, key=lambda o: o.makespan_ms).strategy

    def ordered(self, *, exclude_baselines: bool = True) -> list[str]:
        """Strategies from fastest to slowest."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return [o.strategy for o in sorted(candidates, key=lambda o: o.makespan_ms)]


@dataclass(frozen=True)
class SweepCell:
    """One experiment point: an application under one strategy.

    Cells carry the *names* of the application and strategy (workers
    rebuild both through the registries) plus everything needed to
    reconstruct the program deterministically — input arrays are seeded,
    so a cell re-run in any process yields the same graph and therefore
    the same simulated trace.
    """

    app: str
    strategy: str
    platform: Platform
    n: int | None = None
    iterations: int | None = None
    sync: bool | None = None
    config: PlanConfig | None = None
    runtime_config: RuntimeConfig | None = None


def _run_cell(cell: SweepCell) -> ExecutionResult:
    """Execute one cell (module-level so worker processes can unpickle it)."""
    app = get_application(cell.app)
    sync = app.needs_sync if cell.sync is None else cell.sync
    program = app.program(cell.n, iterations=cell.iterations, sync=sync)
    strategy = get_strategy(cell.strategy)
    return strategy.run(
        program, cell.platform,
        config=cell.config, runtime_config=cell.runtime_config,
    )


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores'."""
    return max(1, os.cpu_count() or 1)


def run_sweep(
    cells: Iterable[SweepCell], *, jobs: int = 1
) -> list[ExecutionResult]:
    """Run every cell; results are returned in cell order.

    ``jobs > 1`` fans the cells out over a :class:`ProcessPoolExecutor`.
    ``pool.map`` preserves input order, so the output is independent of
    worker completion order — a parallel sweep is byte-identical to a
    serial one.  ``jobs <= 0`` means one worker per core.
    """
    cells = list(cells)
    if jobs <= 0:
        jobs = default_jobs()
    if jobs == 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))


def scenario_label(app: Application, sync: bool | None) -> str:
    """The figure-row label of a scenario (w/ vs w/o sync variants)."""
    return app.name if sync is None else (
        f"{app.name}-{'w' if sync else 'w/o'}"
    )


def assemble_scenario(
    app: Application,
    sync: bool | None,
    strategies: Sequence[str],
    results: Sequence[ExecutionResult],
    *,
    label: str | None = None,
) -> ScenarioResult:
    """Zip strategy names with their sweep results into a scenario row."""
    scenario = ScenarioResult(
        label=label or scenario_label(app, sync),
        application=app.name,
        sync=sync,
    )
    for name, result in zip(strategies, results):
        scenario.outcomes.append(StrategyOutcome(strategy=name, result=result))
    return scenario


def run_scenario(
    app: Application,
    platform: Platform,
    strategies: tuple[str, ...],
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    config: PlanConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    label: str | None = None,
    jobs: int = 1,
) -> ScenarioResult:
    """Run ``app`` under every strategy; returns the scenario row."""
    cells = [
        SweepCell(
            app=app.name, strategy=name, platform=platform,
            n=n, iterations=iterations, sync=sync,
            config=config, runtime_config=runtime_config,
        )
        for name in strategies
    ]
    results = run_sweep(cells, jobs=jobs)
    return assemble_scenario(app, sync, strategies, results, label=label)
