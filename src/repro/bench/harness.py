"""Common machinery for running an application under many strategies.

Experiment drivers decompose their work into :class:`SweepCell` units —
one (application, strategy, platform, size) point each — and hand them to
:func:`run_sweep`, which runs them serially or fans them out across worker
processes.  Results always come back in cell order, so parallel runs are
byte-identical to serial ones.

Sweeps are **streaming pipelines** underneath: :func:`run_sweep_iter`
yields ``(index, artifact)`` pairs *as cells complete* — on the serial
path, the process-pool path (``as_completed`` over submitted futures),
and the distributed path (workers stream one result frame per finished
cell, see :mod:`repro.distrib`) — so reporting can overlap execution and
time-to-first-result is one cell, not the whole sweep.  :func:`run_sweep`
is a thin collect-and-reorder wrapper over the iterator, which is what
preserves the byte-parity contract: reordering completion-ordered
artifacts by index reproduces the buffered output exactly.

Sweeps exchange :class:`~repro.artifact.RunArtifact` bundles.  By default
(``detail="summary"``) workers return artifacts *without* the raw trace —
every figure/table number lives in the precomputed
:class:`~repro.artifact.TraceSummary`, so the pickled returns are a tiny
fraction of the full-trace size (``benchmarks/bench_pipeline_perf.py``
records the ratio).  Pass ``detail="full"`` to keep the traces.

Parallel sweeps also ship a read-only snapshot of the parent's
:mod:`repro.cache` stores to every worker through the pool initializer,
so workers replay the probes/predictions the parent already has instead
of re-running them cold (each artifact carries its own hit/miss delta in
``cache_stats``).
"""

from __future__ import annotations

import dataclasses
import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import repro.cache as _cache
from repro.apps.base import Application
from repro.apps.registry import get_application
from repro.artifact import RunArtifact, check_detail
from repro.partition.base import PlanConfig, get_strategy
from repro.platform.topology import Platform
from repro.runtime.executor import RuntimeConfig

#: strategy sets per class family (baselines first, paper figure order)
SK_STRATEGIES = ("Only-GPU", "Only-CPU", "SP-Single", "DP-Perf", "DP-Dep")
MK_STRATEGIES = (
    "Only-GPU", "Only-CPU", "SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied",
)
DAG_STRATEGIES = ("Only-GPU", "Only-CPU", "DP-Perf", "DP-Dep")


def sk_strategies() -> tuple[str, ...]:
    """Strategies compared for SK-One/SK-Loop applications (Figs. 5/7)."""
    return SK_STRATEGIES


def mk_strategies() -> tuple[str, ...]:
    """Strategies compared for MK-Seq/MK-Loop applications (Figs. 9/11)."""
    return MK_STRATEGIES


@dataclass
class StrategyOutcome:
    """One bar of a paper figure: one strategy on one scenario."""

    strategy: str
    result: RunArtifact

    @property
    def makespan_ms(self) -> float:
        return self.result.makespan_ms

    @property
    def gpu_fraction(self) -> float:
        return self.result.gpu_fraction

    @property
    def ratio_by_kernel(self) -> dict[str, dict[str, int]]:
        return self.result.ratio_by_kernel()


@dataclass
class ScenarioResult:
    """All strategies of one scenario (one figure group)."""

    label: str
    application: str
    sync: bool | None
    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: str) -> StrategyOutcome:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o
        raise KeyError(f"{self.label}: no outcome for {strategy!r}")

    def makespan_ms(self, strategy: str) -> float:
        return self.outcome(strategy).makespan_ms

    def best_strategy(self, *, exclude_baselines: bool = True) -> str:
        """The fastest strategy (by default excluding Only-CPU/Only-GPU)."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return min(candidates, key=lambda o: o.makespan_ms).strategy

    def ordered(self, *, exclude_baselines: bool = True) -> list[str]:
        """Strategies from fastest to slowest."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return [o.strategy for o in sorted(candidates, key=lambda o: o.makespan_ms)]


@dataclass(frozen=True)
class SweepCell:
    """One experiment point: an application under one strategy.

    Cells carry the *names* of the application and strategy (workers
    rebuild both through the registries) plus everything needed to
    reconstruct the program deterministically — input arrays are seeded,
    so a cell re-run in any process yields the same graph and therefore
    the same simulated trace.
    """

    app: str
    strategy: str
    platform: Platform
    n: int | None = None
    iterations: int | None = None
    sync: bool | None = None
    config: PlanConfig | None = None
    runtime_config: RuntimeConfig | None = None


def _run_cell(cell: SweepCell, detail: str = "summary") -> RunArtifact:
    """Execute one cell (module-level so worker processes can unpickle it)."""
    app = get_application(cell.app)
    sync = app.needs_sync if cell.sync is None else cell.sync
    program = app.program(cell.n, iterations=cell.iterations, sync=sync)
    strategy = get_strategy(cell.strategy)
    return strategy.run(
        program, cell.platform,
        config=cell.config, runtime_config=cell.runtime_config,
        detail=detail,
    )


def _run_cells_fused(cells: Sequence[SweepCell], detail: str = "summary") -> list[RunArtifact]:
    """Execute a block of cells in one process pass (fused multi-run).

    Module-level so pool workers can unpickle it.  The cells of a block
    share this process's interned pools and memo stores: the first cell's
    probes/profiles warm the later ones, and a block submit pickles a
    shared :class:`~repro.platform.topology.Platform` once per *block*
    (pickle memoizes the repeated reference) instead of once per cell —
    the dominant dispatch cost when the cells themselves are cheap.
    """
    return [_run_cell(cell, detail) for cell in cells]


def simulate_many(
    cells: Iterable[SweepCell], *, detail: str = "summary"
) -> list[RunArtifact]:
    """Run several independent cells fused in this process, in order.

    The public entry point of the fused multi-run mode: one process pass
    over all cells, sharing memo stores and interned string pools between
    them.  Artifacts come back canonicalized, in cell order — the same
    simulated results :func:`run_sweep` produces, without per-cell
    process dispatch.
    """
    check_detail(detail)
    return [
        _canonicalize(artifact)
        for artifact in _run_cells_fused(list(cells), detail)
    ]


def _init_worker(snapshot) -> None:
    """Pool initializer: warm this worker from the parent's memo stores."""
    _cache.preload_snapshot(snapshot)


def _canonicalize(obj):
    """Re-intern every string reachable through plain containers.

    Pickling an artifact across a process or socket boundary loses
    *object identity* between equal strings (and between a string and an
    enum member's ``.value``), so a re-pickle on the consuming side
    memoizes them differently than a freshly built artifact —
    byte-different pickles for semantically equal results.  Interning
    collapses every equal string back to one object, giving artifacts a
    single canonical pickle form.  Every ``run_sweep_iter`` backend
    (serial, local pool, distributed) funnels its artifacts through this
    before yielding, which is what makes sweep output byte-identical
    across backends.
    """
    if isinstance(obj, str):
        return sys.intern(obj)
    if isinstance(obj, dict):
        return {_canonicalize(k): _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, tuple):
        return type(obj)(*map(_canonicalize, obj)) if hasattr(obj, "_fields") \
            else tuple(_canonicalize(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {
            f.name: _canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return dataclasses.replace(obj, **changes)
    return obj


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores'.

    Respects the process's CPU affinity mask where the platform exposes
    one (containers and pinned CI runners often grant far fewer CPUs
    than ``os.cpu_count()`` reports), so ``--jobs 0`` never
    oversubscribes a cgroup/taskset-restricted run.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - exotic platform failure
            pass
    return max(1, os.cpu_count() or 1)


def _fused_block_size(n_cells: int, jobs: int, fuse: int) -> int:
    """The per-block cell count for a fused pool dispatch.

    ``fuse > 0`` pins the block size.  ``fuse == 0`` sizes blocks
    automatically: about four blocks per worker (so completion streaming
    and load balancing survive), capped at 16 cells so one straggler
    block cannot serialize a large sweep.
    """
    if fuse > 0:
        return fuse
    return max(1, min(16, -(-n_cells // (jobs * 4))))


def run_sweep_iter(
    cells: Iterable[SweepCell],
    *,
    jobs: int = 1,
    detail: str = "summary",
    share_cache: bool = True,
    workers: Sequence[str] | None = None,
    batch_size: int | None = None,
    fuse: int | None = None,
) -> Iterator[tuple[int, RunArtifact]]:
    """Stream ``(index, artifact)`` pairs as cells complete.

    The streaming core of :func:`run_sweep`: cells are yielded in
    *completion* order, each tagged with its position in ``cells``, so a
    consumer can report (or persist, or abort) incrementally instead of
    waiting for the whole sweep.  Every backend streams:

    * serial — each cell is yielded as soon as it executes;
    * ``jobs`` — futures are submitted per cell to a
      :class:`ProcessPoolExecutor` and drained with ``as_completed``;
    * ``workers`` — remote workers stream one result frame per finished
      cell (see :mod:`repro.distrib`), with the adaptive dispatcher
      sizing batches from observed per-cell latency.

    ``fuse`` switches the pool backend to fused dispatch: cells are
    chunked into blocks of ``fuse`` (``0`` = auto-sized, see
    :func:`_fused_block_size`) and each block runs as *one* submission
    through :func:`_run_cells_fused`, amortizing pickling and cache
    warm-up over the block — worthwhile when individual cells are cheap
    and dispatch overhead dominates.  The serial path is already fully
    fused (one process, shared stores), and the distributed path fuses
    through its adaptive batch dispatcher, so ``fuse`` only changes the
    local pool backend.

    Cell execution is deterministic, so collecting the pairs and sorting
    by index reproduces the buffered :func:`run_sweep` output exactly —
    that wrapper is the byte-parity guarantee's home.
    """
    check_detail(detail)
    cells = list(cells)
    if workers:
        from repro.distrib.executor import DistributedSweepExecutor

        executor = DistributedSweepExecutor(
            workers, jobs=jobs, batch_size=batch_size
        )
        yield from executor.run_iter(
            cells, detail=detail, share_cache=share_cache
        )
        return
    if jobs <= 0:
        jobs = default_jobs()
    if jobs == 1 or len(cells) <= 1:
        for index, cell in enumerate(cells):
            yield index, _canonicalize(_run_cell(cell, detail))
        return
    pool_size = min(jobs, len(cells))
    snapshot = _cache.snapshot_stores() if share_cache else {}
    with ProcessPoolExecutor(
        max_workers=pool_size, initializer=_init_worker, initargs=(snapshot,)
    ) as pool:
        if fuse is not None:
            block = _fused_block_size(len(cells), pool_size, fuse)
            futures = {
                pool.submit(_run_cells_fused, cells[start:start + block], detail): start
                for start in range(0, len(cells), block)
            }
            for future in as_completed(futures):
                start = futures[future]
                for offset, artifact in enumerate(future.result()):
                    yield start + offset, _canonicalize(artifact)
            return
        futures = {
            pool.submit(_run_cell, cell, detail): index
            for index, cell in enumerate(cells)
        }
        for future in as_completed(futures):
            yield futures[future], _canonicalize(future.result())


def run_sweep(
    cells: Iterable[SweepCell],
    *,
    jobs: int = 1,
    detail: str = "summary",
    share_cache: bool = True,
    workers: Sequence[str] | None = None,
    batch_size: int | None = None,
    fuse: int | None = None,
    progress: bool = False,
) -> list[RunArtifact]:
    """Run every cell; artifacts are returned in cell order.

    A thin collect-and-reorder wrapper over :func:`run_sweep_iter`:
    completion-ordered artifacts are written into their cell's original
    index, so the output is independent of completion order — a parallel
    or distributed sweep is byte-identical to a serial one.

    ``jobs > 1`` fans the cells out over a :class:`ProcessPoolExecutor`;
    ``jobs <= 0`` means one worker per core.

    ``workers`` switches to the distributed path: cells are dispatched
    over the given ``"host:port"`` worker servers (see
    :mod:`repro.distrib`), with ``jobs`` forwarded as each worker's
    intra-batch parallelism.  ``batch_size`` pins a fixed dispatch size;
    by default an adaptive controller sizes each dispatch from the
    worker's observed per-cell latency.  Cells a dead pool cannot finish
    fall back to local execution.

    ``detail="summary"`` (default) returns artifacts without raw traces —
    the cheap cross-process form; ``detail="full"`` keeps them.  With
    ``share_cache`` (default), parallel workers start from a read-only
    snapshot of the parent's :mod:`repro.cache` stores (shipped once per
    remote session at handshake), recovering the serial run's memo hit
    rates under ``jobs > 1`` and ``workers=[...]`` alike.

    ``fuse`` (pool backend only) dispatches cells to workers in fused
    blocks of that size (``0`` = auto) through one
    :func:`_run_cells_fused` submission each — cheaper dispatch when
    cells are small; see :func:`run_sweep_iter`.

    ``progress`` prints ``completed/total`` cells to stderr as results
    stream in (the CLI's ``--progress``).
    """
    cells = list(cells)
    results: list[RunArtifact | None] = [None] * len(cells)
    done = 0
    for index, artifact in run_sweep_iter(
        cells, jobs=jobs, detail=detail, share_cache=share_cache,
        workers=workers, batch_size=batch_size, fuse=fuse,
    ):
        results[index] = artifact
        done += 1
        if progress:
            print(f"[sweep] {done}/{len(cells)} cells", file=sys.stderr)
    return results


def scenario_label(app: Application, sync: bool | None) -> str:
    """The figure-row label of a scenario (w/ vs w/o sync variants)."""
    return app.name if sync is None else (
        f"{app.name}-{'w' if sync else 'w/o'}"
    )


def assemble_scenario(
    app: Application,
    sync: bool | None,
    strategies: Sequence[str],
    results: Sequence[RunArtifact],
    *,
    label: str | None = None,
) -> ScenarioResult:
    """Zip strategy names with their sweep results into a scenario row."""
    scenario = ScenarioResult(
        label=label or scenario_label(app, sync),
        application=app.name,
        sync=sync,
    )
    for name, result in zip(strategies, results):
        scenario.outcomes.append(StrategyOutcome(strategy=name, result=result))
    return scenario


def run_scenario(
    app: Application,
    platform: Platform,
    strategies: tuple[str, ...],
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    config: PlanConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    label: str | None = None,
    jobs: int = 1,
    detail: str = "summary",
) -> ScenarioResult:
    """Run ``app`` under every strategy; returns the scenario row."""
    cells = [
        SweepCell(
            app=app.name, strategy=name, platform=platform,
            n=n, iterations=iterations, sync=sync,
            config=config, runtime_config=runtime_config,
        )
        for name in strategies
    ]
    results = run_sweep(cells, jobs=jobs, detail=detail)
    return assemble_scenario(app, sync, strategies, results, label=label)
