"""Common machinery for running an application under many strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import Application
from repro.partition.base import PlanConfig, get_strategy
from repro.platform.topology import Platform
from repro.runtime.executor import ExecutionResult, RuntimeConfig

#: strategy sets per class family (baselines first, paper figure order)
SK_STRATEGIES = ("Only-GPU", "Only-CPU", "SP-Single", "DP-Perf", "DP-Dep")
MK_STRATEGIES = (
    "Only-GPU", "Only-CPU", "SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied",
)
DAG_STRATEGIES = ("Only-GPU", "Only-CPU", "DP-Perf", "DP-Dep")


def sk_strategies() -> tuple[str, ...]:
    """Strategies compared for SK-One/SK-Loop applications (Figs. 5/7)."""
    return SK_STRATEGIES


def mk_strategies() -> tuple[str, ...]:
    """Strategies compared for MK-Seq/MK-Loop applications (Figs. 9/11)."""
    return MK_STRATEGIES


@dataclass
class StrategyOutcome:
    """One bar of a paper figure: one strategy on one scenario."""

    strategy: str
    result: ExecutionResult

    @property
    def makespan_ms(self) -> float:
        return self.result.makespan_ms

    @property
    def gpu_fraction(self) -> float:
        return self.result.gpu_fraction

    @property
    def ratio_by_kernel(self) -> dict[str, dict[str, int]]:
        return self.result.ratio_by_kernel()


@dataclass
class ScenarioResult:
    """All strategies of one scenario (one figure group)."""

    label: str
    application: str
    sync: bool | None
    outcomes: list[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: str) -> StrategyOutcome:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o
        raise KeyError(f"{self.label}: no outcome for {strategy!r}")

    def makespan_ms(self, strategy: str) -> float:
        return self.outcome(strategy).makespan_ms

    def best_strategy(self, *, exclude_baselines: bool = True) -> str:
        """The fastest strategy (by default excluding Only-CPU/Only-GPU)."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return min(candidates, key=lambda o: o.makespan_ms).strategy

    def ordered(self, *, exclude_baselines: bool = True) -> list[str]:
        """Strategies from fastest to slowest."""
        candidates = [
            o for o in self.outcomes
            if not (exclude_baselines and o.strategy.startswith("Only-"))
        ]
        return [o.strategy for o in sorted(candidates, key=lambda o: o.makespan_ms)]


def run_scenario(
    app: Application,
    platform: Platform,
    strategies: tuple[str, ...],
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    config: PlanConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    label: str | None = None,
) -> ScenarioResult:
    """Run ``app`` under every strategy; returns the scenario row."""
    effective_sync = app.needs_sync if sync is None else sync
    program = app.program(n, iterations=iterations, sync=effective_sync)
    if label is None:
        label = app.name if sync is None else (
            f"{app.name}-{'w' if sync else 'w/o'}"
        )
    scenario = ScenarioResult(label=label, application=app.name, sync=sync)
    for name in strategies:
        strategy = get_strategy(name)
        result = strategy.run(
            program, platform, config=config, runtime_config=runtime_config
        )
        scenario.outcomes.append(StrategyOutcome(strategy=name, result=result))
    return scenario
