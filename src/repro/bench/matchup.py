"""Measured vs Table I: where does the paper's ranking stop holding?

The tournament (:mod:`repro.core.tournament`) produces a measured
per-class ordering over *all* ranked strategies; Table I asserts an
ordering over the paper's original five.  This module confronts the two:

* per ``(class, sync)`` cell, does the measured data respect the Table I
  order (up to the same ``>=``-style tie tolerance the validation layer
  uses)?
* which of the paper's three propositions break, with the measured
  geometric-mean makespan ratios as evidence?
* which *new* strategy families (DP-Aff, HYB-Static, DP-Guided, ...)
  upset the cell — beat the strategy Table I would have picked?

The summary ``agreement`` fraction feeds the perf-bench baseline
(``matchmaking.agreement``), so a model change that silently flips a
ranking cell fails CI with the divergent cell named.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classes import AppClass
from repro.core.ranking import TABLE
from repro.core.tournament import TournamentResult

#: adjacent strategies within this makespan-ratio factor count as tied
#: (the paper's ">=" relations; same default as the validation layer)
TIE_TOLERANCE = 1.12


@dataclass(frozen=True)
class CellVerdict:
    """One ``(class, sync)`` cell's measured-vs-table confrontation."""

    app_class: str
    needs_sync: bool
    #: Table I's ordering for the cell
    table: tuple[str, ...]
    #: measured ordering restricted to Table I's strategies
    measured: tuple[str, ...]
    #: full measured ordering (new families included)
    measured_full: tuple[str, ...]
    #: geometric-mean makespan ratio to the cell winner, per strategy
    scores: dict[str, float]
    #: whether the Table I order holds within the tie tolerance
    agrees: bool
    #: broken propositions, with measured ratios as evidence
    violations: tuple[str, ...]
    #: non-Table strategies strictly beating Table I's pick
    upsets: tuple[str, ...]

    @property
    def label(self) -> str:
        if self.app_class in ("MK-Seq", "MK-Loop"):
            return f"{self.app_class} ({'w' if self.needs_sync else 'w/o'} sync)"
        return self.app_class


@dataclass(frozen=True)
class MatchupReport:
    """All cell verdicts of one tournament."""

    platform: str
    cells: tuple[CellVerdict, ...]
    tie_tolerance: float = TIE_TOLERANCE

    @property
    def agreement(self) -> float:
        """Fraction of cells where the Table I ordering holds."""
        if not self.cells:
            return 1.0
        return sum(c.agrees for c in self.cells) / len(self.cells)

    @property
    def divergent(self) -> tuple[CellVerdict, ...]:
        return tuple(c for c in self.cells if not c.agrees)


def _ordered_ok(
    scores: dict[str, float], order: tuple[str, ...], tol: float
) -> bool:
    """Whether ``order`` is non-worsening within ``tol`` at each step."""
    chain = [scores[s] for s in order if s in scores]
    return all(chain[i] <= chain[i + 1] * tol for i in range(len(chain) - 1))


def _evidence(scores: dict[str, float], names: tuple[str, ...]) -> str:
    return ", ".join(f"{n} {scores[n]:.3f}" for n in names if n in scores)


def check_propositions(
    app_class: str,
    needs_sync: bool,
    scores: dict[str, float],
    *,
    tie_tolerance: float = TIE_TOLERANCE,
) -> tuple[str, ...]:
    """Which of the paper's propositions the measured cell breaks.

    Each violation message names the proposition and quotes the measured
    geometric-mean ratios (the makespan evidence).
    """
    tol = tie_tolerance
    out: list[str] = []
    if not _ordered_ok(scores, ("DP-Perf", "DP-Dep"), tol):
        out.append(
            "Prop 1 (DP-Perf >= DP-Dep): "
            + _evidence(scores, ("DP-Perf", "DP-Dep"))
        )
    if app_class in ("SK-One", "SK-Loop"):
        if not _ordered_ok(scores, ("SP-Single", "DP-Perf", "DP-Dep"), tol):
            out.append(
                "Prop 2 (SP-Single > DP-Perf >= DP-Dep): "
                + _evidence(scores, ("SP-Single", "DP-Perf", "DP-Dep"))
            )
    if app_class in ("MK-Seq", "MK-Loop"):
        chain = (
            ("SP-Varied", "DP-Perf", "DP-Dep", "SP-Unified")
            if needs_sync
            else ("SP-Unified", "DP-Perf", "DP-Dep", "SP-Varied")
        )
        if not _ordered_ok(scores, chain, tol):
            case = "w sync" if needs_sync else "w/o sync"
            out.append(
                f"Prop 3 ({case}: {' >= '.join(chain)}): "
                + _evidence(scores, chain)
            )
    return tuple(out)


def compare_to_table(
    result: TournamentResult, *, tie_tolerance: float = TIE_TOLERANCE
) -> MatchupReport:
    """Confront every tournament cell with its Table I row."""
    cells: list[CellVerdict] = []
    for (app_class, sync), ranking in sorted(result.rankings.items()):
        table = TABLE.ranking(AppClass(app_class), needs_sync=sync)
        scores = ranking.scores
        measured = tuple(s for s in ranking.ranking if s in table)
        # the Table order holds if it is non-worsening step by step and
        # its pick is within tolerance of the best Table strategy
        table_scores = [scores[s] for s in table if s in scores]
        agrees = bool(table_scores) and _ordered_ok(scores, table, tie_tolerance)
        if table_scores and table[0] in scores:
            agrees = agrees and scores[table[0]] <= min(table_scores) * tie_tolerance
        winner_score = scores.get(table[0], float("inf"))
        upsets = tuple(
            f"{name} {scores[name]:.3f} vs {table[0]} {winner_score:.3f}"
            for name in ranking.ranking
            if name not in table and scores[name] < winner_score
        )
        cells.append(
            CellVerdict(
                app_class=app_class,
                needs_sync=sync,
                table=table,
                measured=measured,
                measured_full=ranking.ranking,
                scores=dict(scores),
                agrees=agrees,
                violations=check_propositions(
                    app_class, sync, scores, tie_tolerance=tie_tolerance
                ),
                upsets=upsets,
            )
        )
    return MatchupReport(
        platform=result.platform,
        cells=tuple(cells),
        tie_tolerance=tie_tolerance,
    )


def format_matchup(report: MatchupReport) -> str:
    """Human-readable measured-vs-table report (``repro rank --compare``)."""
    lines = [
        f"measured vs Table I on {report.platform} "
        f"(tie tolerance {report.tie_tolerance:g}x): "
        f"{report.agreement:.0%} of cells agree",
    ]
    for cell in report.cells:
        mark = "ok" if cell.agrees else "DIVERGES"
        lines.append(f"\n{cell.label}: {mark}")
        lines.append(f"  table:    {' > '.join(cell.table)}")
        lines.append(f"  measured: {' > '.join(cell.measured)}")
        if cell.measured_full != cell.measured:
            lines.append(f"  with new families: {' > '.join(cell.measured_full)}")
        for violation in cell.violations:
            lines.append(f"  broken: {violation}")
        for upset in cell.upsets:
            lines.append(f"  upset:  {upset}")
    return "\n".join(lines)
