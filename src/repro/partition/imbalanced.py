"""Static partitioning of imbalanced workloads (Glinda lineage, ref [9]).

"Improving Performance by Matching Imbalanced Workloads with Heterogeneous
Platforms" (Shen et al., ICS'14) extends the Glinda model to kernels whose
per-index work varies (acoustic ray tracing there; CSR SpMV here).  The
partitioning question changes from "how many indices per device" to
"*which contiguous index range* gives each device its share of the
*work*":

* the split boundary ``b`` balances ``T_gpu(b) = work(0,b)/Θ_g +
  transfers(b) = work(b,n)/Θ_c = T_cpu(b)`` — found by bisection, since
  ``T_gpu`` is non-decreasing and ``T_cpu`` non-increasing in ``b``;
* the CPU's range is further divided into ``m`` thread ranges of equal
  *work*, not equal index counts (:func:`weighted_ranges`).

Throughputs are in work units per second, exactly what profiling measures
for a weighted kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.partition.glinda import GlindaMetrics, TransferModel
from repro.platform.interconnect import Link
from repro.runtime.kernels import Kernel
from repro.units import round_up


@dataclass(frozen=True)
class ImbalancedDecision:
    """Boundary-index split of an imbalanced kernel."""

    kernel: str
    n: int
    boundary: int  # GPU gets [0, boundary), CPU [boundary, n)
    gpu_work: float
    cpu_work: float
    predicted_time_s: float
    metrics: GlindaMetrics

    @property
    def gpu_fraction(self) -> float:
        """Fraction of *work* (not indices) on the GPU."""
        total = self.gpu_work + self.cpu_work
        return self.gpu_work / total if total else 0.0

    @property
    def gpu_index_fraction(self) -> float:
        return self.boundary / self.n if self.n else 0.0


def weighted_ranges(
    kernel: Kernel, lo: int, hi: int, k: int
) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into up to ``k`` ranges of near-equal *work*.

    Falls back to equal index counts for uniform kernels.  Ranges are
    never empty; fewer than ``k`` are returned when the span is short.
    """
    if hi <= lo:
        return []
    if k <= 0:
        raise PartitioningError("k must be positive")
    if kernel.work_prefix is None:
        from repro.partition._static_common import cpu_thread_ranges

        return cpu_thread_ranges(lo, hi, k)
    prefix = kernel.work_prefix
    total = prefix[hi] - prefix[lo]
    k = min(k, hi - lo)
    targets = prefix[lo] + total * np.arange(1, k) / k
    cuts = np.searchsorted(prefix, targets, side="left")
    bounds = [lo]
    for cut in cuts:
        cut = int(min(max(cut, bounds[-1] + 1), hi - (k - len(bounds))))
        bounds.append(cut)
    bounds.append(hi)
    return [
        (a, b) for a, b in zip(bounds, bounds[1:]) if b > a
    ]


def imbalanced_split(
    kernel: Kernel,
    n: int,
    *,
    theta_gpu: float,
    theta_cpu: float,
    link: Link,
    transfer: TransferModel,
    warp_size: int = 32,
) -> ImbalancedDecision:
    """Find the boundary index balancing weighted GPU and CPU times."""
    if kernel.work_prefix is None:
        raise PartitioningError(
            f"kernel {kernel.name!r} is uniform; use GlindaModel instead"
        )
    if n <= 0 or n + 1 > len(kernel.work_prefix):
        raise PartitioningError(
            f"problem size {n} incompatible with the work prefix "
            f"(length {len(kernel.work_prefix)})"
        )
    if theta_gpu <= 0 or theta_cpu <= 0:
        raise PartitioningError("throughputs must be positive")
    bw = link.bandwidth

    def t_gpu(b: int) -> float:
        if b == 0:
            return 0.0
        return kernel.work_units(0, b) / theta_gpu + \
            transfer.bytes_for(b, n) / bw

    def t_cpu(b: int) -> float:
        return kernel.work_units(b, n) / theta_cpu

    # bisection on the sign of t_gpu - t_cpu (monotone in b)
    lo_b, hi_b = 0, n
    while hi_b - lo_b > 1:
        mid = (lo_b + hi_b) // 2
        if t_gpu(mid) < t_cpu(mid):
            lo_b = mid
        else:
            hi_b = mid
    candidates = {lo_b, hi_b}
    # warp-rounded variants of both bisection endpoints
    for b in (lo_b, hi_b):
        candidates.add(min(round_up(b, warp_size), n))
    boundary = min(
        candidates, key=lambda b: max(t_gpu(b), t_cpu(b))
    )
    predicted = max(t_gpu(boundary), t_cpu(boundary))
    metrics = GlindaMetrics(
        relative_capability=theta_gpu / theta_cpu,
        compute_transfer_gap=theta_gpu * transfer.gpu_share_b / bw,
    )
    return ImbalancedDecision(
        kernel=kernel.name,
        n=n,
        boundary=boundary,
        gpu_work=kernel.work_units(0, boundary),
        cpu_work=kernel.work_units(boundary, n),
        predicted_time_s=predicted,
        metrics=metrics,
    )
