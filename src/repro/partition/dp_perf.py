"""DP-Perf: dynamic partitioning with performance-aware scheduling.

Usable for every application class.  Like DP-Dep it divides each kernel
invocation into ``m`` unpinned task instances, but scheduling follows the
Planas-style earliest-finish policy seeded by a profiling phase: each
device's rate per kernel is measured with small probe instances before the
run (the paper gives each device 3 task instances and excludes the phase
from the comparison — here the probes run against the simulated platform
and the measured run likewise starts with warm estimates).
"""

from __future__ import annotations

from repro.cache import counters, stats_delta
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.partition.profiling import build_profile_table
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program, chunk_ranges
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler


class DPPerf(Strategy):
    """Dynamic partitioning, performance-aware earliest-finish scheduling."""

    name = "DP-Perf"
    static = False

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        chunks = config.chunks(platform)
        cache_before = counters()
        profile = build_profile_table(program, platform)

        def chunker(inv: KernelInvocation):
            return [
                (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
            ]

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=PerfAwareScheduler(profile),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                notes={
                    "task_count": chunks,
                    "profile": profile,
                    # probe/plan memo traffic of *this* planning phase (a
                    # window delta, not lifetime counters — deltas are
                    # history-free, so a warm plan is byte-identical no
                    # matter how many runs preceded it in the process)
                    "cache": stats_delta(cache_before),
                },
            ),
        )


register_strategy(
    DPPerf.name, DPPerf,
    family="dynamic",
    description="dynamic, performance-aware earliest finish",
)
