"""The Glinda static partitioning model (paper §II-A, refs [9][10]).

Glinda predicts the optimal GPU/CPU split of one kernel in three steps:

1. **Model the partitioning.**  With throughputs ``Θ_g``/``Θ_c`` (kernel
   indices per second on the whole GPU / whole CPU), link bandwidth ``B``
   and a linear :class:`TransferModel` ``(p, q, D)`` — per-index traffic
   proportional to the GPU share, per-index traffic proportional to the
   CPU share (e.g. re-reading the CPU-updated part of a FULL input every
   iteration), and fixed traffic — a split of ``n_g`` indices executes in

   ``T_gpu(n_g) = n_g/Θ_g + (n_g·p + (n-n_g)·q + D) / B``
   ``T_cpu(n_g) = (n - n_g) / Θ_c``

   The optimum is the perfect overlap ``T_gpu = T_cpu``:

   ``n_g* = (n/Θ_c - (n·q + D)/B) / (1/Θ_g + (p-q)/B + 1/Θ_c)``

   The paper expresses the same model through two derived metrics — the
   **relative hardware capability** ``r = Θ_g/Θ_c`` and the
   **computation-to-transfer gap** ``g = Θ_g·p/B``; with ``q = D = 0``
   the optimum reduces to ``β* = r / (r + 1 + g)``.

2. **Profile** to estimate ``Θ_g`` and ``Θ_c``
   (:mod:`repro.partition.profiling`).

3. **Decide the hardware configuration**: round ``n_g`` up to a warp
   multiple, then collapse to Only-GPU / Only-CPU when the other side's
   share is too small to use its cores efficiently.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass

from repro.cache import get_cache
from repro.errors import PartitioningError
from repro.partition.profiling import KernelProfile
from repro.platform.interconnect import Link
from repro.units import round_up


class HardwareConfig(enum.Enum):
    """Glinda's final decision on which processors to use.

    Values are interned so the member value string *is* the process-wide
    canonical object for that text — a decision's ``hardware_config``
    string and the enum member then pickle with shared memo references
    whether the artifact was produced locally or re-interned after a
    trip through :mod:`repro.distrib` (pickle byte-identity).
    """

    ONLY_CPU = sys.intern("only-cpu")
    ONLY_GPU = sys.intern("only-gpu")
    CPU_GPU = sys.intern("cpu+gpu")


@dataclass(frozen=True)
class TransferModel:
    """Linear model of GPU traffic as a function of the split.

    ``bytes(n_g) = n_g * gpu_share_b + (n - n_g) * cpu_share_b + fixed_b``

    Construction helpers on :class:`KernelProfile`-derived quantities live
    in the strategies; the common scenarios are:

    * **single pass** — ``p`` = partitioned in+out bytes/index, ``D`` =
      FULL input bytes (everything crosses the link once);
    * **loop with per-iteration sync** — identical to a single pass per
      iteration: the ``taskwait`` flushes *and invalidates* the device
      caches (OmpSs-0.7 semantics), so each iteration re-fetches its
      inputs and flushes its outputs;
    * **loop without sync** — all zeros (the boundary transfers amortize
      over the iterations; the paper: "the data transfer is not
      profiled").
    """

    gpu_share_b: float = 0.0
    cpu_share_b: float = 0.0
    fixed_b: float = 0.0

    NONE: "TransferModel" = None  # type: ignore[assignment]

    def bytes_for(self, n_gpu: int, n: int) -> float:
        return self.gpu_share_b * n_gpu + self.cpu_share_b * (n - n_gpu) + self.fixed_b

    @staticmethod
    def single_pass(profile: KernelProfile) -> "TransferModel":
        return TransferModel(
            gpu_share_b=profile.partitioned_bytes_per_index,
            fixed_b=float(profile.full_bytes),
        )

    @staticmethod
    def synced_loop(profile: KernelProfile, n: int) -> "TransferModel":
        # flush + invalidate at every taskwait => each iteration pays a
        # full single pass of traffic
        return TransferModel.single_pass(profile)

    @staticmethod
    def amortized() -> "TransferModel":
        return TransferModel()


TransferModel.NONE = TransferModel()


@dataclass(frozen=True)
class GlindaMetrics:
    """The two derived metrics of the partitioning model."""

    #: ``r`` — ratio of GPU throughput to CPU throughput
    relative_capability: float
    #: ``g`` — ratio of GPU throughput to transfer bandwidth (index units)
    compute_transfer_gap: float


@dataclass(frozen=True)
class GlindaDecision:
    """The predicted optimal partitioning of one kernel."""

    kernel: str
    n: int
    n_gpu: int
    n_cpu: int
    config: HardwareConfig
    metrics: GlindaMetrics
    predicted_time_s: float

    @property
    def gpu_fraction(self) -> float:
        return self.n_gpu / self.n if self.n else 0.0

    @property
    def cpu_fraction(self) -> float:
        return self.n_cpu / self.n if self.n else 0.0


@dataclass(frozen=True)
class GlindaModel:
    """The partitioning predictor.

    Parameters
    ----------
    warp_size:
        ``n_gpu`` is rounded up to a multiple of this (paper footnote 5).
    gpu_only_threshold / cpu_only_threshold:
        Hardware-configuration thresholds on the predicted GPU fraction:
        beyond them the decision collapses to a single processor
        ("checking if the obtained partitioning is able to efficiently
        use a certain amount of hardware cores of each processor").
    """

    warp_size: int = 32
    gpu_only_threshold: float = 0.97
    cpu_only_threshold: float = 0.03

    def predict(
        self,
        *,
        kernel: str,
        n: int,
        theta_gpu: float,
        theta_cpu: float,
        link: Link,
        transfer: TransferModel,
    ) -> GlindaDecision:
        """Predict the optimal split of ``n`` indices.

        Memoized through :mod:`repro.cache` (store ``"glinda"``): a sweep
        re-deriving the same split sees a cache hit instead of re-solving
        the model.  Every model input is part of the key — the model
        parameters (``self`` is frozen), the throughputs, the link
        bandwidth, and the transfer coefficients — so a stale prediction
        cannot be replayed.  :class:`GlindaDecision` is frozen, so the
        cached instance is shared safely.
        """
        key = (self, kernel, n, theta_gpu, theta_cpu, link.bandwidth, transfer)
        return get_cache("glinda").get_or_compute(
            key,
            lambda: self._predict(
                kernel=kernel, n=n, theta_gpu=theta_gpu,
                theta_cpu=theta_cpu, link=link, transfer=transfer,
            ),
        )

    def _predict(
        self,
        *,
        kernel: str,
        n: int,
        theta_gpu: float,
        theta_cpu: float,
        link: Link,
        transfer: TransferModel,
    ) -> GlindaDecision:
        if n <= 0:
            raise PartitioningError("problem size must be positive")
        if theta_gpu <= 0 or theta_cpu <= 0:
            raise PartitioningError("throughputs must be positive")
        bw = link.bandwidth
        p, q, d = transfer.gpu_share_b, transfer.cpu_share_b, transfer.fixed_b

        metrics = GlindaMetrics(
            relative_capability=theta_gpu / theta_cpu,
            compute_transfer_gap=theta_gpu * p / bw,
        )

        denom = 1.0 / theta_gpu + (p - q) / bw + 1.0 / theta_cpu
        if denom <= 0:
            # pathological (q dominates): sending work to the GPU always
            # pays off; saturate at the full problem.
            beta = 1.0
        else:
            n_gpu_star = (n / theta_cpu - (n * q + d) / bw) / denom
            beta = min(max(n_gpu_star / n, 0.0), 1.0)

        if beta >= self.gpu_only_threshold:
            n_gpu, n_cpu = n, 0
            config = HardwareConfig.ONLY_GPU
        elif beta <= self.cpu_only_threshold:
            n_gpu, n_cpu = 0, n
            config = HardwareConfig.ONLY_CPU
        else:
            n_gpu = min(round_up(int(round(beta * n)), self.warp_size), n)
            n_cpu = n - n_gpu
            config = HardwareConfig.CPU_GPU if n_cpu else HardwareConfig.ONLY_GPU

        predicted = self.predicted_time(
            n=n, n_gpu=n_gpu, theta_gpu=theta_gpu, theta_cpu=theta_cpu,
            link=link, transfer=transfer,
        )
        return GlindaDecision(
            kernel=kernel,
            n=n,
            n_gpu=n_gpu,
            n_cpu=n_cpu,
            config=config,
            metrics=metrics,
            predicted_time_s=predicted,
        )

    @staticmethod
    def predicted_time(
        *,
        n: int,
        n_gpu: int,
        theta_gpu: float,
        theta_cpu: float,
        link: Link,
        transfer: TransferModel,
    ) -> float:
        """Model-predicted makespan of an arbitrary split (for what-ifs)."""
        if not (0 <= n_gpu <= n):
            raise PartitioningError(f"n_gpu={n_gpu} outside [0, {n}]")
        t_gpu = 0.0
        if n_gpu:
            t_gpu = n_gpu / theta_gpu + transfer.bytes_for(n_gpu, n) / link.bandwidth
        t_cpu = (n - n_gpu) / theta_cpu
        return max(t_gpu, t_cpu)
