"""DP-Aff: dynamic partitioning with affinity/locality-aware scheduling.

Usable for every application class.  Task creation is identical to DP-Dep
— each kernel invocation becomes ``m`` unpinned instances of size ``n/m``
— but scheduling follows the locality-aware work-stealing of Bleuse et
al. (XKaapi on heterogeneous platforms): a device prefers the ready
instance whose **input regions it already holds**, takes fresh (nowhere-
resident) work next, and steals remote-resident work only to avoid going
idle (:class:`~repro.runtime.schedulers.affinity.AffinityScheduler`).

Compared to DP-Dep's coarse chain binding, region residency follows data
through *joins*: an instance reading the outputs of two chains has real
affinity to whichever device produced more of its inputs, where the chain
policy sees only the chain it was arbitrarily merged into.  The policy is
still capability-blind, so it inherits DP-Dep's imbalance on
compute-bound GPU-favouring workloads — its edge shows on transfer-bound
applications, which is exactly the upset the measured-ranking bench
watches for (DP-Aff vs the SP-* row of Table I).
"""

from __future__ import annotations

from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program, chunk_ranges
from repro.runtime.schedulers.affinity import AffinityScheduler


class DPAff(Strategy):
    """Dynamic partitioning, region-affinity work-stealing scheduling."""

    name = "DP-Aff"
    static = False

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        chunks = config.chunks(platform)

        def chunker(inv: KernelInvocation):
            return [
                (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
            ]

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=AffinityScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                notes={"task_count": chunks},
            ),
        )


register_strategy(
    DPAff.name, DPAff,
    family="affinity",
    description="dynamic, region-affinity work stealing (Bleuse et al.)",
)
