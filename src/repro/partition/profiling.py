"""Low-cost profiling of kernels on a platform (Glinda step 2).

On real hardware Glinda times a small probe run of the kernel on each
processor to estimate its throughput; here the probe runs against the
simulated platform's cost model.  The *pipeline* is identical — model,
profile, predict — only the stopwatch is simulated (see DESIGN.md §2).

The same machinery seeds DP-Perf's :class:`ProfileTable` (the paper's
"fixed profiling phase where each device gets 3 task instances").

Probe results are memoized through :mod:`repro.cache`: the simulated
stopwatch is deterministic, so a probe of the same kernel on the same
device at the same size is computed once per process and replayed for
every later sweep point (keys are device/kernel fingerprints — any change
to the cost models changes the key).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import (
    device_fingerprint,
    get_cache,
    kernel_fingerprint,
    platform_fingerprint,
)
from repro.errors import PartitioningError
from repro.platform.topology import Platform
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern, Kernel
from repro.runtime.schedulers.perf_aware import ProfileTable

#: fraction of the problem used as the probe size (low-cost profiling)
PROBE_FRACTION = 0.01
#: minimum probe size in kernel indices
PROBE_MIN = 256
#: number of probe task instances per device (the paper uses 3)
PROBE_RUNS = 3


@dataclass(frozen=True)
class KernelProfile:
    """Measured characteristics of one kernel on one platform.

    Attributes
    ----------
    kernel:
        Kernel name.
    cpu_throughput / gpu_throughput:
        Sustained kernel indices per second on the whole CPU / the GPU.
    partitioned_bytes_per_index:
        Host<->device traffic per index implied by partitioned accesses
        (inputs + outputs) — the ``b_t`` coefficient of the Glinda model.
    input_bytes_per_index / output_bytes_per_index:
        Partitioned *input* / *output* bytes per index separately (the
        loop steady-state transfer model needs outputs only).
    full_bytes:
        Bytes of FULL-pattern (unpartitionable) input arrays, transferred
        wholly to the GPU regardless of the split.
    """

    kernel: str
    cpu_throughput: float
    gpu_throughput: float
    partitioned_bytes_per_index: float
    input_bytes_per_index: float
    output_bytes_per_index: float
    full_bytes: int


def _probe_size(n: int) -> int:
    return max(PROBE_MIN, min(n, int(n * PROBE_FRACTION)))


def _measured_throughput(kernel: Kernel, device, n: int) -> float:
    """Median of PROBE_RUNS probe timings (deterministic model: identical).

    Memoized per (device, kernel, probe size, problem size): repeated
    probes across a sweep are simulated once.
    """
    probe = _probe_size(n)
    key = (device_fingerprint(device), kernel_fingerprint(kernel), probe, n)
    return get_cache("probe").get_or_compute(
        key, lambda: _probe_throughput(kernel, device, probe, n)
    )


def _probe_throughput(kernel: Kernel, device, probe: int, n: int) -> float:
    times = [
        kernel.chunk_time(device, probe, n, include_launch=False)
        for _ in range(PROBE_RUNS)
    ]
    times.sort()
    t = times[len(times) // 2]
    if t <= 0:
        raise PartitioningError(
            f"kernel {kernel.name!r}: probe produced non-positive time"
        )
    return probe / t


def transfer_footprint(kernel: Kernel) -> tuple[float, float, float, int]:
    """``(in+out B/idx, in B/idx, out B/idx, FULL input bytes)`` of a kernel.

    Only PARTITIONED accesses contribute per-index bytes; FULL accesses
    (read-only by construction) contribute their whole array size.
    """
    part_total = 0.0
    part_in = 0.0
    part_out = 0.0
    full = 0
    for acc in kernel.accesses:
        if acc.pattern is AccessPattern.FULL:
            # FULL reads (FULL writes are rejected at AccessSpec level)
            full += acc.array.nbytes
            continue
        if acc.pattern is AccessPattern.PREFIX:
            # variable extents: use the average per-index volume
            n_idx = len(acc.prefix) - 1
            per_index = float(acc.prefix[-1]) / n_idx * acc.array.elem_bytes
        else:
            per_index = acc.elems_per_index * acc.array.elem_bytes
        if acc.mode.reads:
            part_total += per_index
            part_in += per_index
        if acc.mode.writes:
            part_total += per_index
            part_out += per_index
    return part_total, part_in, part_out, full


def profile_kernel(kernel: Kernel, platform: Platform, n: int) -> KernelProfile:
    """Profile one kernel of problem size ``n`` on ``platform``.

    Memoized per (platform, kernel, n); :class:`KernelProfile` is frozen,
    so the cached instance is shared safely.
    """
    if n <= 0:
        raise PartitioningError("problem size must be positive")
    key = (platform_fingerprint(platform), kernel_fingerprint(kernel), n)
    return get_cache("profile").get_or_compute(
        key, lambda: _profile_kernel(kernel, platform, n)
    )


def _profile_kernel(kernel: Kernel, platform: Platform, n: int) -> KernelProfile:
    gpu = platform.gpu
    cpu_thr = _measured_throughput(kernel, platform.host, n)
    gpu_thr = _measured_throughput(kernel, gpu, n)
    part_total, part_in, part_out, full = transfer_footprint(kernel)
    return KernelProfile(
        kernel=kernel.name,
        cpu_throughput=cpu_thr,
        gpu_throughput=gpu_thr,
        partitioned_bytes_per_index=part_total,
        input_bytes_per_index=part_in,
        output_bytes_per_index=part_out,
        full_bytes=full,
    )


def build_profile_table(program: Program, platform: Platform) -> ProfileTable:
    """Seed DP-Perf's estimates: rates per (kernel, device) + link cost.

    Rates come from the same probes as Glinda profiling (3 instances per
    device per kernel, excluded from measured makespans, as in the paper).
    The scheduler refines its table online (EWMA), so the memoized seed
    is copied into a fresh :class:`ProfileTable` for every call.
    """
    sizes: dict[str, int] = {}
    for inv in program.invocations:
        sizes.setdefault(inv.kernel.name, inv.n)
    kernels = {k.name: k for k in program.kernels}
    key = (
        platform_fingerprint(platform),
        tuple(
            (kernel_fingerprint(kernel), sizes[name])
            for name, kernel in kernels.items()
        ),
    )

    def seed() -> dict[tuple[str, str], float]:
        rates: dict[tuple[str, str], float] = {}
        for name, kernel in kernels.items():
            n = sizes[name]
            for device in platform.devices:
                thr = _measured_throughput(kernel, device, n)
                rates[(name, device.device_id)] = 1.0 / thr
        return rates

    table = ProfileTable()
    table.rate_s_per_index.update(get_cache("profile-table").get_or_compute(key, seed))
    for acc_dev in platform.accelerators:
        link = platform.link_for(acc_dev.device_id)
        table.transfer_s_per_byte[acc_dev.device_id] = 1.0 / link.bandwidth
    return table
