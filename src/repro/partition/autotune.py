"""Task-size auto-tuning for dynamic strategies (paper §V).

"The task size (the granularity of partitioning) impacts performance as
well. ... the task size variation leads to performance variation.  Thus,
auto-tuning is recommended to find the best performing one."

:func:`autotune_task_count` sweeps candidate task counts (multiples of the
thread count, as the paper varies ``m``) for a dynamic strategy and returns
the best-performing one together with the sweep results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.partition.base import PlanConfig, Strategy
from repro.platform.topology import Platform
from repro.runtime.executor import RuntimeConfig
from repro.runtime.graph import Program


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of a task-count sweep."""

    best_task_count: int
    best_makespan_s: float
    #: task count -> measured makespan in seconds
    sweep: dict[int, float]

    @property
    def speedup_over_worst(self) -> float:
        return max(self.sweep.values()) / self.best_makespan_s


def autotune_task_count(
    strategy: Strategy,
    program: Program,
    platform: Platform,
    *,
    config: PlanConfig | None = None,
    multipliers: tuple[int, ...] = (1, 2, 4, 8),
) -> AutotuneResult:
    """Sweep dynamic task counts ``m * multiplier`` and pick the fastest.

    The strategy is re-planned for every candidate (its profiling is
    cheap), and every candidate is executed on the simulated runtime with
    the same thread count.
    """
    if strategy.static:
        raise PartitioningError(
            f"{strategy.name} is static; task-size tuning applies to "
            "dynamic strategies"
        )
    if not multipliers:
        raise PartitioningError("need at least one multiplier")
    base = config or PlanConfig()
    m = base.threads(platform)
    sweep: dict[int, float] = {}
    for mult in multipliers:
        if mult <= 0:
            raise PartitioningError("multipliers must be positive")
        count = m * mult
        cfg = PlanConfig(
            cpu_threads=base.cpu_threads,
            task_count=count,
            warp_size=base.warp_size,
            gpu_only_threshold=base.gpu_only_threshold,
            cpu_only_threshold=base.cpu_only_threshold,
        )
        result = strategy.run(
            program,
            platform,
            config=cfg,
            runtime_config=RuntimeConfig(cpu_threads=m),
        )
        sweep[count] = result.makespan_s
    best = min(sweep, key=lambda c: (sweep[c], c))
    return AutotuneResult(
        best_task_count=best, best_makespan_s=sweep[best], sweep=sweep
    )
