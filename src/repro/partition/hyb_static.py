"""HYB-Static: probe-seeded static split with a dynamically scheduled tail.

The Beaumont/Marchal line of work ("are static schedules so bad?")
brackets the SP-*/DP-* dichotomy of the paper with a *hybrid* spectrum: a
static schedule computed from a performance model covers most of the
work, and a small dynamically scheduled remainder absorbs whatever the
model got wrong.  This strategy realizes that spectrum point on the
paper's substrate:

* each kernel gets a Glinda decision exactly as SP-Single/SP-Varied would
  compute it (probe throughputs + the transfer model matching the
  program's loop/sync shape);
* a ``1 - tail_fraction`` share of **each device's** predicted slice is
  pinned statically — one fused GPU body, ``m`` thread-pinned CPU ranges
  — keeping the per-chunk overhead of static partitioning;
* the remaining ``tail_fraction`` of the index space (the ranges adjacent
  to the predicted split point, where a model error materializes) is cut
  into small unpinned chunks scheduled by the performance-aware policy,
  seeded from the same probe table.

With a perfect model the tail chunks land where the static split would
have put them and the plan behaves like SP-* with slightly more tasks;
when probes mispredict (imbalanced kernels, contended links) the tail
migrates and caps the error at roughly ``tail_fraction`` of a device's
share.  The executor supports the mix natively: pinned instances dispatch
through its internal static path, unpinned ones through the plan's
scheduler, and dynamic decision overhead is charged to the tail only.

Requires a uniform problem size across kernels (like the SP-* strategies)
and a single accelerator (the probe model is two-processor).  Registered
for every class but MK-DAG: the split assumes breadth-parallel kernels
whose whole index space is ready at once, not a tile DAG where the
"static body" would serialize behind dependences.
"""

from __future__ import annotations

from repro.errors import PartitioningError, StrategyInapplicableError
from repro.partition._static_common import (
    Chunk,
    cpu_thread_ranges,
    glinda_kwargs,
    uniform_problem_size,
)
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.partition.glinda import GlindaDecision, GlindaModel, TransferModel
from repro.partition.profiling import build_profile_table, profile_kernel
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program, chunk_ranges
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler


def split_static_tail(
    n: int, n_gpu: int, *, tail_fraction: float, warp_size: int
) -> tuple[int, int]:
    """Boundaries of the pinned bodies under a ``tail_fraction`` hold-back.

    Returns ``(gpu_pin, cpu_static_lo)``: the GPU keeps ``[0, gpu_pin)``
    (warp-aligned, ``1 - tail_fraction`` of its predicted share) and the
    CPU keeps ``[cpu_static_lo, n)``; the middle ``[gpu_pin,
    cpu_static_lo)`` straddling the predicted split point is the dynamic
    tail.  Degenerate shares collapse gracefully: with ``n_gpu == 0`` the
    whole tail comes out of the CPU's low end, with ``n_gpu == n`` out of
    the GPU's high end.
    """
    if not (0 <= n_gpu <= n):
        raise PartitioningError(f"n_gpu={n_gpu} outside [0, {n}]")
    if not (0.0 < tail_fraction < 1.0):
        raise PartitioningError("tail_fraction must be in (0, 1)")
    gpu_pin = int(n_gpu * (1.0 - tail_fraction))
    gpu_pin -= gpu_pin % warp_size
    cpu_share = n - n_gpu
    cpu_static_lo = n - int(cpu_share * (1.0 - tail_fraction))
    return gpu_pin, cpu_static_lo


class HYBStatic(Strategy):
    """Static split from the probe model, dynamic work-stealing tail."""

    name = "HYB-Static"
    static = False  # the tail makes the plan partially dynamic

    def __init__(self, *, tail_fraction: float = 0.2):
        if not (0.0 < tail_fraction < 1.0):
            raise PartitioningError("tail_fraction must be in (0, 1)")
        self.tail_fraction = tail_fraction

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        if len(platform.accelerators) != 1:
            raise StrategyInapplicableError(
                f"{self.name} uses the two-processor probe model; platform "
                f"has {len(platform.accelerators)} accelerators"
            )
        n = uniform_problem_size(program, self.name)
        m = config.threads(platform)
        gpu_id = platform.gpu.device_id
        host = platform.host.device_id
        link = platform.link_for(gpu_id)

        looped = len(program.invocations) > len(program.kernels)
        synced = any(inv.sync_after for inv in program.invocations)

        model = GlindaModel(**glinda_kwargs(config))
        decisions: dict[str, GlindaDecision] = {}
        for kernel in program.kernels:
            profile = profile_kernel(kernel, platform, n)
            if looped and synced:
                transfer = TransferModel.synced_loop(profile, n)
            elif looped:
                transfer = TransferModel.amortized()
            else:
                transfer = TransferModel.single_pass(profile)
            decisions[kernel.name] = model.predict(
                kernel=kernel.name,
                n=n,
                theta_gpu=profile.gpu_throughput,
                theta_cpu=profile.cpu_throughput,
                link=link,
                transfer=transfer,
            )

        # the tail is cut fine enough that both processors can trade it:
        # aim for ~2m tail chunks per invocation across both gap ranges
        tail_chunks_per_gap = max(1, m)

        def chunker(inv: KernelInvocation) -> list[Chunk]:
            decision = decisions[inv.kernel.name]
            gpu_pin, cpu_static_lo = split_static_tail(
                inv.n,
                decision.n_gpu,
                tail_fraction=self.tail_fraction,
                warp_size=config.warp_size,
            )
            chunks: list[Chunk] = []
            if gpu_pin > 0:
                chunks.append((0, gpu_pin, gpu_id, None))
            for i, (lo, hi) in enumerate(
                cpu_thread_ranges(cpu_static_lo, inv.n, m)
            ):
                chunks.append((lo, hi, None, f"{host}:{i}"))
            tail = cpu_static_lo - gpu_pin
            if tail > 0:
                for lo, hi in chunk_ranges(tail, tail_chunks_per_gap):
                    chunks.append((gpu_pin + lo, gpu_pin + hi, None, None))
            return chunks

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=PerfAwareScheduler(build_profile_table(program, platform)),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                gpu_fraction_by_kernel={
                    name: d.gpu_fraction for name, d in decisions.items()
                },
                notes={
                    "glinda": decisions,
                    "tail_fraction": self.tail_fraction,
                },
            ),
        )


register_strategy(
    HYBStatic.name, HYBStatic,
    family="hybrid",
    applies_to=("SK-One", "SK-Loop", "MK-Seq", "MK-Loop"),
    description="probe-seeded static split, dynamic tail (Beaumont/Marchal)",
)
