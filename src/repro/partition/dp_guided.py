"""DP-Guided: adaptive-chunk dynamic partitioning (related work, ref [11]).

Boyer et al. ("Load Balancing in a Changing World") schedule a single
kernel with chunks that *grow* over time: small probe chunks let the
runtime learn device speeds cheaply, large later chunks amortize the
per-chunk overhead.  The paper's related-work section observes that such
schemes "efficiently reduce scheduling overhead, but still cannot
outperform the optimal partitioning determined by the static partitioning
approaches" — a claim `benchmarks/bench_related_guided.py` validates on
this substrate.

Implementation: each invocation is cut into a geometric chunk sequence
(small probe chunks first, ratio ``growth``, capped so no late grab hands
a slow device a large slice), scheduled by the performance-aware policy —
Boyer's runtime uses "the execution times of the scheduled chunks ... to
partition the remaining work", which is exactly the earliest-finish
estimate refresh of :class:`PerfAwareScheduler` minus its profiling phase
(the probe chunks *are* the profiling).
"""

from __future__ import annotations

from repro.errors import PartitioningError
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.schedulers.perf_aware import PerfAwareScheduler


def geometric_chunks(
    n: int, *, initial: int, growth: float, cap_fraction: float = 0.25
) -> list[tuple[int, int]]:
    """Cut ``[0, n)`` into chunks growing by ``growth`` per step.

    Chunk sizes are capped at ``cap_fraction * n`` so one late grab cannot
    hand the slow device a quarter-problem; the final chunk absorbs the
    remainder.
    """
    if n <= 0:
        raise PartitioningError("n must be positive")
    if initial <= 0:
        raise PartitioningError("initial chunk size must be positive")
    if growth < 1.0:
        raise PartitioningError("growth must be >= 1")
    cap = max(initial, int(n * cap_fraction))
    chunks = []
    lo = 0
    size = initial
    while lo < n:
        hi = min(lo + min(int(size), cap), n)
        if n - hi < initial // 2:  # avoid a dust-sized tail
            hi = n
        chunks.append((lo, hi))
        lo = hi
        size *= growth
    return chunks


class DPGuided(Strategy):
    """Self-scheduled geometric chunks (Boyer-style adaptive sizing)."""

    name = "DP-Guided"
    static = False

    def __init__(
        self,
        *,
        growth: float = 1.6,
        probes_per_thread: int = 4,
        cap_fraction: float = 0.05,
    ):
        if growth < 1.0:
            raise PartitioningError("growth must be >= 1")
        if probes_per_thread <= 0:
            raise PartitioningError("probes_per_thread must be positive")
        if not (0.0 < cap_fraction <= 1.0):
            raise PartitioningError("cap_fraction must be in (0, 1]")
        self.growth = growth
        self.probes_per_thread = probes_per_thread
        self.cap_fraction = cap_fraction

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        m = config.threads(platform)

        def chunker(inv: KernelInvocation):
            # the first wave hands every resource a probe chunk; probes are
            # kept small so a slow device's first grab costs little
            initial = max(
                1, inv.n // (4 * self.probes_per_thread * (m + 1))
            )
            return [
                (lo, hi, None, None)
                for lo, hi in geometric_chunks(
                    inv.n,
                    initial=initial,
                    growth=self.growth,
                    cap_fraction=self.cap_fraction,
                )
            ]

        graph = finalize_graph(program, chunker)
        # no seeded profile: the probe chunks teach the scheduler (fast
        # EWMA — Boyer reacts chunk by chunk)
        return ExecutionPlan(
            graph=graph,
            scheduler=PerfAwareScheduler(ewma_alpha=0.7),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                notes={
                    "growth": self.growth,
                    "probes_per_thread": self.probes_per_thread,
                },
            ),
        )


register_strategy(
    DPGuided.name, DPGuided,
    family="dynamic",
    description="self-scheduled geometric chunks (Boyer, ref [11])",
)
