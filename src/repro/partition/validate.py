"""Plan validation: structural invariants every execution plan must hold.

Strategies are easy to get subtly wrong (a chunker that drops a warp, a
pin to a thread that does not exist, overlapping writes).  This validator
checks a plan against its platform *before* execution:

* every invocation's index space is covered exactly once by its compute
  instances (no gaps, no overlaps);
* every pin names a real device/resource of the platform;
* static plans are fully pinned; barriers appear exactly where the
  program's sync markers say;
* the dependence graph is acyclic.

``run_plan`` stays fast by not validating implicitly; tests and the CLI
call :func:`validate_plan` explicitly, and strategy unit tests assert
every bundled strategy always produces valid plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.partition.base import ExecutionPlan
from repro.platform.topology import Platform
from repro.runtime.graph import InstanceKind


@dataclass
class PlanValidation:
    """Validation outcome; ``problems`` is empty for a valid plan."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_invalid(self) -> None:
        if self.problems:
            from repro.errors import PartitioningError

            raise PartitioningError(
                "invalid execution plan:\n  " + "\n  ".join(self.problems)
            )


def validate_plan(
    plan: ExecutionPlan,
    platform: Platform,
    *,
    cpu_threads: int | None = None,
) -> PlanValidation:
    """Check a plan's structural invariants against a platform."""
    v = PlanValidation()
    graph = plan.graph
    program = graph.program

    device_ids = {d.device_id for d in platform.devices}
    resource_ids = {
        r.resource_id
        for r in platform.compute_resources(cpu_threads=cpu_threads)
    }

    # --- per-invocation coverage
    by_invocation: dict[int, list] = {}
    for inst in graph.instances:
        if inst.kind is InstanceKind.COMPUTE:
            by_invocation.setdefault(
                inst.invocation.invocation_id, []
            ).append(inst)

    for inv in program.invocations:
        chunks = sorted(
            ((i.lo, i.hi) for i in by_invocation.get(inv.invocation_id, [])),
        )
        if not chunks:
            v.problems.append(
                f"invocation {inv.invocation_id} ({inv.kernel.name}) has "
                "no task instances"
            )
            continue
        if chunks[0][0] != 0:
            v.problems.append(
                f"invocation {inv.invocation_id}: indices "
                f"[0, {chunks[0][0]}) uncovered"
            )
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            if b < c:
                v.problems.append(
                    f"invocation {inv.invocation_id}: gap [{b}, {c})"
                )
            elif b > c:
                v.problems.append(
                    f"invocation {inv.invocation_id}: overlap [{c}, {b})"
                )
        if chunks[-1][1] != inv.n:
            v.problems.append(
                f"invocation {inv.invocation_id}: indices "
                f"[{chunks[-1][1]}, {inv.n}) uncovered"
            )

    # --- pin validity
    for inst in graph.instances:
        if inst.pinned_device and inst.pinned_device not in device_ids:
            v.problems.append(
                f"instance {inst.instance_id}: unknown device "
                f"{inst.pinned_device!r}"
            )
        if inst.pinned_resource and inst.pinned_resource not in resource_ids:
            v.problems.append(
                f"instance {inst.instance_id}: unknown resource "
                f"{inst.pinned_resource!r}"
            )

    # --- static plans are fully pinned
    if not plan.scheduler.dynamic:
        for inst in graph.instances:
            if (
                inst.kind is InstanceKind.COMPUTE
                and inst.pinned_device is None
                and inst.pinned_resource is None
            ):
                v.problems.append(
                    f"static plan leaves instance {inst.instance_id} unpinned"
                )

    # --- barrier placement matches the program's sync markers
    expected_barriers = sum(
        1 for inv in program.invocations if inv.sync_after
    )
    actual_barriers = sum(1 for i in graph.instances if i.is_barrier)
    if expected_barriers != actual_barriers:
        v.problems.append(
            f"program declares {expected_barriers} taskwaits but the plan "
            f"has {actual_barriers} barriers"
        )

    # --- acyclicity
    try:
        graph.validate_acyclic()
    except Exception as exc:  # DependenceError
        v.problems.append(str(exc))

    return v
