"""Strategy interface, plan objects, and the strategy registry.

A :class:`Strategy` turns a :class:`~repro.runtime.graph.Program` into an
:class:`ExecutionPlan`: an expanded, dependence-annotated task graph plus
the scheduler that should drive it.  Static strategies pin instances to
resources; dynamic strategies leave them to the scheduler.

Strategies never import application code — the matchmaker in
:mod:`repro.core` connects :class:`~repro.apps.base.Application` objects to
strategies.
"""

from __future__ import annotations

import abc
import difflib
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import repro.cache as _cache
from repro.artifact import RunArtifact
from repro.errors import ConfigurationError, PartitioningError
from repro.platform.topology import Platform
from repro.runtime.dependence import build_dependences
from repro.runtime.executor import RuntimeConfig, RuntimeEngine
from repro.runtime.graph import KernelInvocation, Program, TaskGraph, expand_program
from repro.runtime.schedulers.base import Scheduler


@dataclass(frozen=True)
class PlanConfig:
    """Knobs shared by all strategies.

    Parameters
    ----------
    cpu_threads:
        The paper's ``m`` — number of SMP threads (default: host cores).
        Used for static CPU chunking *and* as the dynamic task count
        (dynamic task size is ``n / m``, creating ``m`` instances).
    task_count:
        Override for the number of dynamic task instances per kernel
        invocation (the §V auto-tuning knob).  ``None`` = ``cpu_threads``.
    warp_size:
        GPU partition sizes are rounded up to a multiple of this.
    gpu_only_threshold / cpu_only_threshold:
        Glinda's hardware-configuration decision: a predicted GPU fraction
        above/below these collapses to Only-GPU / Only-CPU.
    """

    cpu_threads: int | None = None
    task_count: int | None = None
    warp_size: int = 32
    gpu_only_threshold: float = 0.97
    cpu_only_threshold: float = 0.03
    #: force the GPU share of every split instead of asking the Glinda
    #: predictor (SP-* strategies only).  The schedule×partition search
    #: drives this knob across a candidate grid.
    gpu_fraction: float | None = None

    def threads(self, platform: Platform) -> int:
        return self.cpu_threads or platform.host.spec.cores

    def chunks(self, platform: Platform) -> int:
        return self.task_count or self.threads(platform)


@dataclass
class StrategyDecision:
    """What a strategy decided, for reporting (cf. paper Figs. 6/8/10).

    ``gpu_fraction_by_kernel`` maps kernel name to the *planned* GPU share
    (static strategies only; dynamic strategies discover it at runtime).
    ``notes`` carries strategy-specific details such as the Glinda metrics.
    """

    strategy: str
    hardware_config: str = "cpu+gpu"
    gpu_fraction_by_kernel: dict[str, float] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExecutionPlan:
    """A ready-to-execute partitioned workload.

    ``runtime_overrides`` lets a strategy adjust the runtime-cost model for
    its execution style — the Only-GPU baseline is plain OpenCL without an
    OmpSs runtime, so it zeroes the task-management and taskwait-quiescence
    overheads.
    """

    graph: TaskGraph
    scheduler: Scheduler
    decision: StrategyDecision
    runtime_overrides: dict[str, Any] = field(default_factory=dict)

    @property
    def strategy_name(self) -> str:
        return self.decision.strategy


class Strategy(abc.ABC):
    """Base class for partitioning strategies."""

    #: canonical name used in tables and the registry ("SP-Single", ...)
    name: str = "?"
    #: True for SP-* strategies (fixed split before runtime)
    static: bool = True

    @abc.abstractmethod
    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        """Build the execution plan for ``program`` on ``platform``.

        Raises :class:`~repro.errors.StrategyInapplicableError` when the
        program's kernel structure is outside this strategy's coverage.
        """

    def run(
        self,
        program: Program,
        platform: Platform,
        *,
        config: PlanConfig | None = None,
        runtime_config: RuntimeConfig | None = None,
        detail: str = "full",
    ) -> RunArtifact:
        """Plan and execute in one call (convenience wrapper).

        The returned :class:`~repro.artifact.RunArtifact` carries this
        strategy's :class:`StrategyDecision` and the memo-cache hit/miss
        deltas of the whole plan+execute window.  ``detail="summary"``
        drops the raw trace (the cheap cross-process form).
        """
        cfg = config or PlanConfig()
        before = _cache.counters()
        plan = self.plan(program, platform, cfg)
        rt = runtime_config or RuntimeConfig(cpu_threads=cfg.threads(platform))
        return run_plan(plan, platform, rt, detail=detail, cache_baseline=before)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Strategy {self.name}>"


def _plan_eval_enabled(config: RuntimeConfig | None = None) -> bool:
    """Whether this run opts into the compiled evaluator.

    The ``REPRO_PLAN_EVAL`` environment variable, when *set*, wins in
    both directions (the sweep drivers flip it around pools of
    already-imported workers, and CI forces the engine path with ``0``);
    otherwise the :attr:`RuntimeConfig.plan_eval` field — populated by
    the ``--plan-eval`` CLI flag — decides.  Read per call, not at
    import.  Mirrors :func:`repro.sim.plan.plan_eval_enabled`.
    """
    env = os.environ.get("REPRO_PLAN_EVAL")
    if env is not None:
        return env.lower() in ("1", "true", "on")
    return bool(config is not None and config.plan_eval)


def run_plan(
    plan: ExecutionPlan,
    platform: Platform,
    runtime_config: RuntimeConfig | None = None,
    *,
    detail: str = "full",
    cache_baseline: dict[str, tuple[int, int]] | None = None,
) -> RunArtifact:
    """Execute a plan on the simulated runtime.

    The plan's ``runtime_overrides`` are applied on top of the supplied
    runtime configuration.  The artifact comes back with the plan's
    decision attached; ``cache_baseline`` (a :func:`repro.cache.counters`
    snapshot) widens the attributed cache window to include planning.
    """
    config = runtime_config or RuntimeConfig()
    if plan.runtime_overrides:
        config = replace(config, **plan.runtime_overrides)
    before = cache_baseline if cache_baseline is not None else _cache.counters()
    artifact = None
    if _plan_eval_enabled(config):
        from repro.errors import PlanCompileError
        from repro.sim.plan import evaluate_plan, record_compile_error

        try:
            artifact = evaluate_plan(
                plan, platform, runtime_config=config, detail=detail
            )
        except PlanCompileError:
            record_compile_error()
            artifact = None
    if artifact is None:
        engine = RuntimeEngine(platform, config=config)
        artifact = engine.execute(plan.graph, plan.scheduler, detail=detail)
    return artifact.with_context(
        decision=plan.decision, cache_stats=_cache.stats_delta(before)
    )


# -- program rewriting helpers shared by strategies -----------------------


def strip_sync(program: Program) -> Program:
    """A copy of ``program`` with all ``taskwait`` markers removed."""
    return Program(
        invocations=[
            KernelInvocation(
                invocation_id=inv.invocation_id,
                kernel=inv.kernel,
                n=inv.n,
                iteration=inv.iteration,
                sync_after=False,
            )
            for inv in program.invocations
        ],
        arrays=dict(program.arrays),
    )


def force_sync(program: Program) -> Program:
    """A copy of ``program`` with a ``taskwait`` after every invocation.

    This is SP-Varied's required "extra global synchronization points".
    """
    return Program(
        invocations=[
            KernelInvocation(
                invocation_id=inv.invocation_id,
                kernel=inv.kernel,
                n=inv.n,
                iteration=inv.iteration,
                sync_after=True,
            )
            for inv in program.invocations
        ],
        arrays=dict(program.arrays),
    )


def has_inter_kernel_sync(program: Program) -> bool:
    """Whether any non-final invocation is followed by a ``taskwait``."""
    if not program.invocations:
        return False
    return any(inv.sync_after for inv in program.invocations[:-1])


def finalize_graph(
    program: Program,
    chunker: Callable[[KernelInvocation], list[tuple[int, int, str | None, str | None]]],
) -> TaskGraph:
    """Expand, build dependences, and sanity-check a task graph."""
    graph = expand_program(program, chunker)
    build_dependences(graph)
    graph.validate_acyclic()
    if not graph.instances:
        raise PartitioningError("plan produced an empty task graph")
    return graph


# -- registry ---------------------------------------------------------------
#
# Strategies register with *metadata*, not bare factories: the family they
# belong to and the application classes they cover.  The tournament engine
# (:mod:`repro.core.tournament`) derives its per-class entry lists from
# this applicability instead of hard-coding Table I's strategy sets, and
# ``repro list`` renders the same metadata.  Class labels are plain
# strings (``"SK-One"`` ... ``"MK-DAG"``) so this module never imports
# :mod:`repro.core` (which imports us).

#: the five paper class labels, in Table I order
ALL_CLASSES = ("SK-One", "SK-Loop", "MK-Seq", "MK-Loop", "MK-DAG")
SINGLE_KERNEL_CLASSES = ("SK-One", "SK-Loop")
MULTI_KERNEL_CLASSES = ("MK-Seq", "MK-Loop")


@dataclass(frozen=True)
class StrategyInfo:
    """Registry entry: factory plus matchmaking metadata.

    ``family`` groups strategies by mechanism ("static", "dynamic",
    "affinity", "hybrid", "baseline", ...); ``applies_to`` holds the
    class labels the strategy can plan for.  Baselines take part in
    figure sweeps but are excluded from rankings (``ranked=False``).
    """

    name: str
    factory: Callable[[], Strategy]
    family: str = "dynamic"
    applies_to: frozenset[str] = frozenset(ALL_CLASSES)
    ranked: bool = True
    description: str = ""

    def applicable(self, app_class: object, *, needs_sync: bool = False) -> bool:
        """Whether the strategy covers ``app_class`` (label or AppClass)."""
        label = getattr(app_class, "value", app_class)
        return label in self.applies_to


_REGISTRY: dict[str, StrategyInfo] = {}


def register_strategy(
    name: str,
    factory: Callable[[], Strategy],
    *,
    family: str = "dynamic",
    applies_to: tuple[str, ...] | frozenset[str] = ALL_CLASSES,
    ranked: bool = True,
    description: str = "",
) -> None:
    """Register a strategy factory plus its matchmaking metadata."""
    if name in _REGISTRY:
        raise ConfigurationError(f"strategy {name!r} already registered")
    unknown = set(applies_to) - set(ALL_CLASSES)
    if unknown:
        raise ConfigurationError(
            f"strategy {name!r}: unknown class labels {sorted(unknown)}"
        )
    _REGISTRY[name] = StrategyInfo(
        name=name,
        factory=factory,
        family=family,
        applies_to=frozenset(applies_to),
        ranked=ranked,
        description=description,
    )


def _unknown_strategy_error(name: str) -> PartitioningError:
    message = f"unknown strategy {name!r}"
    close = difflib.get_close_matches(name, _REGISTRY, n=1, cutoff=0.5)
    if close:
        message += f"; did you mean {close[0]!r}?"
    return PartitioningError(f"{message} (known: {', '.join(sorted(_REGISTRY))})")


def get_strategy(name: str) -> Strategy:
    """Instantiate a registered strategy by canonical name.

    An unknown name raises with the closest registered name suggested
    (typos are the common failure: ``"dp-perf"``, ``"SP-Signle"``).
    """
    try:
        return _REGISTRY[name].factory()
    except KeyError:
        raise _unknown_strategy_error(name) from None


def strategy_info(name: str) -> StrategyInfo:
    """The registry metadata of one strategy."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise _unknown_strategy_error(name) from None


def all_strategy_info() -> list[StrategyInfo]:
    """Metadata of every registered strategy, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def strategies_for_class(
    app_class: object, *, ranked_only: bool = True
) -> list[str]:
    """Names of the strategies applicable to a class (label or AppClass).

    ``ranked_only`` drops the Only-CPU/Only-GPU baselines — they execute
    everywhere but never compete in a ranking.
    """
    return [
        info.name
        for info in all_strategy_info()
        if info.applicable(app_class) and (info.ranked or not ranked_only)
    ]


def list_strategies() -> list[str]:
    """Canonical names of all registered strategies."""
    return sorted(_REGISTRY)
