"""Workload partitioning strategies.

The five strategies of the paper plus the two single-device baselines:

=============  =========================================================
``SP-Single``  Glinda static split of a single kernel (classes I, II)
``SP-Unified`` one static split shared by all kernels (classes III, IV)
``SP-Varied``  per-kernel static splits + inter-kernel sync (III, IV)
``DP-Dep``     dynamic, breadth-first + dependence-chain affinity (all)
``DP-Perf``    dynamic, performance-aware earliest finish (all)
``Only-CPU``   all work on the host CPU with ``m`` threads
``Only-GPU``   all work on the GPU, data resident across iterations
=============  =========================================================

Plus the paper's §V extensions (a task-size autotuner for the dynamic
strategies, the "make dynamic behave like static" converter) and two
related-work families the measured ranking pits against Table I:

==============  ========================================================
``DP-Aff``      dynamic, region-affinity work stealing (Bleuse et al.)
``HYB-Static``  probe-seeded static split, dynamic tail (Beaumont et al.)
==============  ========================================================

Every strategy registers :class:`~repro.partition.base.StrategyInfo`
metadata (family, class applicability) queryable via
:func:`strategy_info` / :func:`all_strategy_info` /
:func:`strategies_for_class`.
"""

from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    StrategyInfo,
    all_strategy_info,
    get_strategy,
    list_strategies,
    register_strategy,
    run_plan,
    strategies_for_class,
    strategy_info,
)
from repro.partition.glinda import (
    GlindaDecision,
    GlindaMetrics,
    GlindaModel,
    HardwareConfig,
    TransferModel,
)
from repro.partition.search import (
    Candidate,
    CandidateResult,
    SearchResult,
    format_search,
    search_plan,
)
from repro.partition.glinda_multi import (
    DeviceTerm,
    MultiDeviceDecision,
    predict_multi,
    solve_overlap,
)
from repro.partition.profiling import KernelProfile, build_profile_table, profile_kernel
from repro.partition.sp_single import SPSingle
from repro.partition.sp_unified import SPUnified
from repro.partition.sp_varied import SPVaried
from repro.partition.dp_aff import DPAff
from repro.partition.dp_dep import DPDep
from repro.partition.dp_guided import DPGuided
from repro.partition.dp_perf import DPPerf
from repro.partition.hyb_static import HYBStatic
from repro.partition.only import OnlyCPU, OnlyGPU
from repro.partition.autotune import autotune_task_count
from repro.partition.convert import static_assignment_counts, dynamic_as_static_plan
from repro.partition.validate import PlanValidation, validate_plan

__all__ = [
    "ExecutionPlan",
    "PlanConfig",
    "Strategy",
    "StrategyDecision",
    "StrategyInfo",
    "all_strategy_info",
    "get_strategy",
    "list_strategies",
    "register_strategy",
    "run_plan",
    "strategies_for_class",
    "strategy_info",
    "GlindaDecision",
    "GlindaMetrics",
    "GlindaModel",
    "HardwareConfig",
    "TransferModel",
    "DeviceTerm",
    "MultiDeviceDecision",
    "predict_multi",
    "solve_overlap",
    "KernelProfile",
    "build_profile_table",
    "profile_kernel",
    "SPSingle",
    "SPUnified",
    "SPVaried",
    "DPAff",
    "DPDep",
    "DPGuided",
    "DPPerf",
    "HYBStatic",
    "OnlyCPU",
    "OnlyGPU",
    "autotune_task_count",
    "static_assignment_counts",
    "dynamic_as_static_plan",
    "PlanValidation",
    "validate_plan",
]
