"""DP-Dep: dynamic partitioning with the OmpSs breadth-first scheduler.

Usable for every application class.  Each kernel invocation is divided into
``m`` task instances of size ``n/m`` (the paper's dynamic task size), left
unpinned, and scheduled breadth-first with dependence-chain device affinity
(:class:`~repro.runtime.schedulers.breadth_first.BreadthFirstScheduler`).
The policy is capability-blind — the source of the imbalance the paper
observes on GPU-favouring workloads.
"""

from __future__ import annotations

from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program, chunk_ranges
from repro.runtime.schedulers.breadth_first import BreadthFirstScheduler


class DPDep(Strategy):
    """Dynamic partitioning, dependence-aware breadth-first scheduling."""

    name = "DP-Dep"
    static = False

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        chunks = config.chunks(platform)

        def chunker(inv: KernelInvocation):
            return [
                (lo, hi, None, None) for lo, hi in chunk_ranges(inv.n, chunks)
            ]

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=BreadthFirstScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                notes={"task_count": chunks},
            ),
        )


register_strategy(
    DPDep.name, DPDep,
    family="dynamic",
    description="dynamic, breadth-first + dependence-chain affinity",
)
