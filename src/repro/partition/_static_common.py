"""Shared machinery of the SP-* (static) strategies."""

from __future__ import annotations

from typing import Callable

from repro.errors import PartitioningError, StrategyInapplicableError
from repro.partition.base import PlanConfig
from repro.partition.glinda import GlindaDecision, HardwareConfig
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program

#: a chunk descriptor: (lo, hi, pinned_device, pinned_resource)
Chunk = tuple[int, int, str | None, str | None]


def cpu_thread_ranges(lo: int, hi: int, m: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into up to ``m`` near-equal contiguous ranges."""
    n = hi - lo
    if n <= 0:
        return []
    m = min(m, n)
    base, extra = divmod(n, m)
    out = []
    cur = lo
    for i in range(m):
        nxt = cur + base + (1 if i < extra else 0)
        out.append((cur, nxt))
        cur = nxt
    return out


def static_chunks(
    inv: KernelInvocation,
    n_gpu: int,
    *,
    platform: Platform,
    m: int,
) -> list[Chunk]:
    """Chunks of one invocation under a static split of ``n_gpu`` indices.

    The GPU receives the leading ``[0, n_gpu)`` as a single fused task
    instance; the CPU share ``[n_gpu, n)`` is split into ``m`` instances
    pinned round-robin to the SMP threads — exactly the paper's "the GPU
    task is invoked once, and the CPU task is invoked m times".
    """
    if not (0 <= n_gpu <= inv.n):
        raise PartitioningError(f"n_gpu={n_gpu} outside [0, {inv.n}]")
    chunks: list[Chunk] = []
    if n_gpu > 0:
        gpu_id = platform.gpu.device_id
        chunks.append((0, n_gpu, gpu_id, None))
    host = platform.host.device_id
    for i, (lo, hi) in enumerate(cpu_thread_ranges(n_gpu, inv.n, m)):
        chunks.append((lo, hi, None, f"{host}:{i}"))
    return chunks


def multi_static_chunks(
    inv: KernelInvocation,
    shares: dict[str, int],
    *,
    platform: Platform,
    m: int,
) -> list[Chunk]:
    """Chunks of one invocation under a multi-device static split.

    ``shares`` maps accelerator device ids to index counts; whatever is
    left is the CPU's and is divided into ``m`` thread-pinned instances.
    Accelerator ranges are laid out in platform order from index 0.
    """
    chunks: list[Chunk] = []
    cursor = 0
    for acc in platform.accelerators:
        size = shares.get(acc.device_id, 0)
        if size < 0 or cursor + size > inv.n:
            raise PartitioningError(
                f"invalid share {size} for {acc.device_id} "
                f"(cursor {cursor}, n {inv.n})"
            )
        if size:
            chunks.append((cursor, cursor + size, acc.device_id, None))
            cursor += size
    host = platform.host.device_id
    for i, (lo, hi) in enumerate(cpu_thread_ranges(cursor, inv.n, m)):
        chunks.append((lo, hi, None, f"{host}:{i}"))
    return chunks


def forced_gpu_count(config: PlanConfig, n: int) -> int:
    """Index count of a forced ``config.gpu_fraction`` split.

    The count is rounded up to a warp multiple exactly like a Glinda
    decision, so forced splits land on the same grid the predictor uses
    (and the schedule×partition search explores no unreachable points).
    """
    frac = config.gpu_fraction
    if frac is None or not 0.0 <= frac <= 1.0:
        raise PartitioningError(
            f"gpu_fraction={frac!r} must be a float in [0, 1]"
        )
    n_gpu = int(round(frac * n))
    if 0 < n_gpu < n:
        w = config.warp_size
        n_gpu = min(-(-n_gpu // w) * w, n)
    return n_gpu


def forced_plan(
    strategy_name: str,
    program: Program,
    platform: Platform,
    config: PlanConfig,
    **notes,
):
    """Execution plan for an explicitly forced GPU fraction.

    The SP-* strategies delegate here when ``config.gpu_fraction`` is set:
    the Glinda predictor is bypassed and every invocation is split at the
    forced (warp-rounded) point.  Strategy-specific applicability gates
    and program rewrites (SP-Varied's ``force_sync``) stay with the
    caller, so a forced SP-Varied still pays for its synchronization.
    """
    from repro.partition.base import (
        ExecutionPlan,
        StrategyDecision,
        finalize_graph,
    )
    from repro.runtime.schedulers.base import StaticScheduler

    m = config.threads(platform)
    fractions: dict[str, float] = {}

    def chunker(inv: KernelInvocation) -> list[Chunk]:
        n_gpu = forced_gpu_count(config, inv.n)
        fractions[inv.kernel.name] = n_gpu / inv.n if inv.n else 0.0
        return static_chunks(inv, n_gpu, platform=platform, m=m)

    graph = finalize_graph(program, chunker)
    fracs = set(fractions.values())
    if fracs == {1.0}:
        hardware = HardwareConfig.ONLY_GPU.value
    elif fracs == {0.0}:
        hardware = HardwareConfig.ONLY_CPU.value
    else:
        hardware = HardwareConfig.CPU_GPU.value
    return ExecutionPlan(
        graph=graph,
        scheduler=StaticScheduler(),
        decision=StrategyDecision(
            strategy=strategy_name,
            hardware_config=hardware,
            gpu_fraction_by_kernel=fractions,
            notes={"forced_gpu_fraction": config.gpu_fraction, **notes},
        ),
    )


def single_kernel_of(program: Program, strategy: str):
    """The unique kernel of a single-kernel program, or raise."""
    kernels = program.kernels
    if len(kernels) != 1:
        raise StrategyInapplicableError(
            f"{strategy} applies to single-kernel applications only; "
            f"got kernels {[k.name for k in kernels]}"
        )
    return kernels[0]


def require_multi_kernel(program: Program, strategy: str) -> None:
    if len(program.kernels) < 2:
        raise StrategyInapplicableError(
            f"{strategy} is designed for multi-kernel applications; "
            "use SP-Single for single-kernel ones"
        )


def uniform_problem_size(program: Program, strategy: str) -> int:
    """The shared problem size of all invocations, or raise.

    The paper's unified/single static splits assume every kernel iterates
    over the same index space (true for all six evaluation applications).
    """
    sizes = {inv.n for inv in program.invocations}
    if len(sizes) != 1:
        raise StrategyInapplicableError(
            f"{strategy} needs a uniform problem size across kernels; got {sizes}"
        )
    return sizes.pop()


def decision_chunker(
    decision_for: Callable[[KernelInvocation], GlindaDecision],
    *,
    platform: Platform,
    m: int,
) -> Callable[[KernelInvocation], list[Chunk]]:
    """Chunker applying a per-invocation Glinda decision."""

    def chunker(inv: KernelInvocation) -> list[Chunk]:
        decision = decision_for(inv)
        if decision.config is HardwareConfig.ONLY_GPU:
            return static_chunks(inv, inv.n, platform=platform, m=m)
        if decision.config is HardwareConfig.ONLY_CPU:
            return static_chunks(inv, 0, platform=platform, m=m)
        return static_chunks(inv, decision.n_gpu, platform=platform, m=m)

    return chunker


def glinda_kwargs(config: PlanConfig) -> dict:
    """GlindaModel constructor kwargs derived from a plan config."""
    return {
        "warp_size": config.warp_size,
        "gpu_only_threshold": config.gpu_only_threshold,
        "cpu_only_threshold": config.cpu_only_threshold,
    }
