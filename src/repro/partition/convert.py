"""Making dynamic partitioning "behave" like static partitioning (paper §V).

For an application already written for dynamic partitioning whose best
strategy is static, the paper recommends a three-step conversion instead of
a rewrite:

1. set the task size to the full problem size and determine the static
   partitioning ratio;
2. convert the ratio to a task-assignment ratio (``k`` instances on the
   CPU, ``l`` on the GPU);
3. assign those instance counts to the processors.

The result is "a close-to-optimal partitioning with minimal manual effort".
:func:`static_assignment_counts` performs step 2 and
:func:`dynamic_as_static_plan` builds the step-3 plan: the dynamic chunking
is kept, but chunks are pinned per the converted counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    StrategyDecision,
    finalize_graph,
)
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program, chunk_ranges
from repro.runtime.schedulers.base import StaticScheduler


@dataclass(frozen=True)
class AssignmentCounts:
    """``k`` CPU instances and ``l`` GPU instances out of ``k + l`` total."""

    cpu_instances: int
    gpu_instances: int

    @property
    def total(self) -> int:
        return self.cpu_instances + self.gpu_instances

    @property
    def gpu_fraction(self) -> float:
        return self.gpu_instances / self.total if self.total else 0.0


def static_assignment_counts(
    gpu_fraction: float, task_count: int
) -> AssignmentCounts:
    """Convert a static partitioning ratio into instance counts.

    The GPU count is rounded to the nearest instance; both processors are
    guaranteed at least zero and at most all instances.
    """
    if not (0.0 <= gpu_fraction <= 1.0):
        raise PartitioningError(f"gpu_fraction {gpu_fraction} outside [0, 1]")
    if task_count <= 0:
        raise PartitioningError("task_count must be positive")
    gpu = round(gpu_fraction * task_count)
    gpu = min(max(gpu, 0), task_count)
    return AssignmentCounts(cpu_instances=task_count - gpu, gpu_instances=gpu)


def dynamic_as_static_plan(
    program: Program,
    platform: Platform,
    gpu_fraction: float,
    *,
    config: PlanConfig | None = None,
) -> ExecutionPlan:
    """Pin a dynamic chunking according to a converted static ratio.

    Each invocation keeps the dynamic task count; the first ``l`` chunks
    (scaled by the ratio) are pinned to the GPU and the rest are pinned
    round-robin to the CPU threads.
    """
    config = config or PlanConfig()
    chunks = config.chunks(platform)
    counts = static_assignment_counts(gpu_fraction, chunks)
    gpu_id = platform.gpu.device_id
    host = platform.host.device_id
    m = config.threads(platform)

    def chunker(inv: KernelInvocation):
        ranges = chunk_ranges(inv.n, chunks)
        out = []
        for i, (lo, hi) in enumerate(ranges):
            if i < counts.gpu_instances:
                out.append((lo, hi, gpu_id, None))
            else:
                thread = (i - counts.gpu_instances) % m
                out.append((lo, hi, None, f"{host}:{thread}"))
        return out

    graph = finalize_graph(program, chunker)
    return ExecutionPlan(
        graph=graph,
        scheduler=StaticScheduler(),
        decision=StrategyDecision(
            strategy="DP-as-SP",
            hardware_config="cpu+gpu",
            gpu_fraction_by_kernel={
                k.name: counts.gpu_fraction for k in program.kernels
            },
            notes={"counts": counts, "task_count": chunks},
        ),
    )
