"""Sensitivity of the Glinda prediction to profiling error.

Glinda's split rests on profiled throughputs; real profiling is noisy.
This module answers "how much does an x% throughput misestimate cost?" by
perturbing Θ_g/Θ_c, recomputing the split, and evaluating the *perturbed*
split under the *true* model — the standard robustness analysis for a
predict-then-commit scheme.  The prediction is robust when the cost curve
is flat around the optimum (it is: the makespan is a max of two linear
functions, so small split errors cost linearly with a small slope).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.partition.glinda import GlindaModel, TransferModel
from repro.platform.interconnect import Link


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbation's outcome."""

    gpu_error: float  # relative misestimate of Θ_g (e.g. +0.2 = +20%)
    cpu_error: float
    predicted_fraction: float   # split chosen under the wrong profile
    true_time_s: float          # that split evaluated under the truth
    regret: float               # true_time / optimal_time - 1


@dataclass(frozen=True)
class SensitivityReport:
    """Perturbation sweep around a profiled optimum."""

    optimal_fraction: float
    optimal_time_s: float
    points: tuple[SensitivityPoint, ...]

    @property
    def max_regret(self) -> float:
        return max((p.regret for p in self.points), default=0.0)

    def worst(self) -> SensitivityPoint:
        return max(self.points, key=lambda p: p.regret)


def profiling_sensitivity(
    *,
    n: int,
    theta_gpu: float,
    theta_cpu: float,
    link: Link,
    transfer: TransferModel,
    errors: tuple[float, ...] = (-0.3, -0.2, -0.1, 0.1, 0.2, 0.3),
    model: GlindaModel | None = None,
) -> SensitivityReport:
    """Sweep relative profiling errors on each throughput independently."""
    if not errors:
        raise PartitioningError("need at least one perturbation")
    model = model or GlindaModel()

    def split_under(tg: float, tc: float) -> int:
        return model.predict(
            kernel="k", n=n, theta_gpu=tg, theta_cpu=tc,
            link=link, transfer=transfer,
        ).n_gpu

    def true_time(n_gpu: int) -> float:
        return GlindaModel.predicted_time(
            n=n, n_gpu=n_gpu, theta_gpu=theta_gpu, theta_cpu=theta_cpu,
            link=link, transfer=transfer,
        )

    optimal_gpu = split_under(theta_gpu, theta_cpu)
    optimal_time = true_time(optimal_gpu)

    points = []
    for err in errors:
        for which in ("gpu", "cpu"):
            tg = theta_gpu * (1 + err) if which == "gpu" else theta_gpu
            tc = theta_cpu * (1 + err) if which == "cpu" else theta_cpu
            n_gpu = split_under(tg, tc)
            t = true_time(n_gpu)
            points.append(
                SensitivityPoint(
                    gpu_error=err if which == "gpu" else 0.0,
                    cpu_error=err if which == "cpu" else 0.0,
                    predicted_fraction=n_gpu / n,
                    true_time_s=t,
                    regret=t / optimal_time - 1 if optimal_time else 0.0,
                )
            )
    return SensitivityReport(
        optimal_fraction=optimal_gpu / n,
        optimal_time_s=optimal_time,
        points=tuple(points),
    )


def format_sensitivity(report: SensitivityReport) -> str:
    """Plain-text rendering of a sensitivity sweep."""
    lines = [
        f"optimum: GPU {report.optimal_fraction:.1%}, "
        f"{report.optimal_time_s * 1e3:.2f} ms; "
        f"max regret {report.max_regret:.1%}",
        f"{'Θg err':>8} {'Θc err':>8} {'split':>8} {'regret':>8}",
    ]
    for p in report.points:
        lines.append(
            f"{p.gpu_error:>+8.0%} {p.cpu_error:>+8.0%} "
            f"{p.predicted_fraction:>8.1%} {p.regret:>8.2%}"
        )
    return "\n".join(lines)
