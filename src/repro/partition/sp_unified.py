"""SP-Unified: one static split shared by all kernels (paper §III-C).

Designed for MK-Seq and MK-Loop.  All kernels are regarded as a single,
fused kernel: the fused per-index execution time is the sum over kernels,
and one partitioning point serves every kernel.  Without inter-kernel
synchronization the data stays resident on each device — one host-to-device
transfer before the first kernel, one device-to-host after the last — so
the fused transfer model counts only first reads and final writes.

When the program *does* carry synchronization, the paper still evaluates
SP-Unified with the partitioning obtained for the no-sync case ("we use the
partitioning obtained in the case without synchronization"), which is what
this implementation does: the split is always computed from the sync-free
view, while the plan executes whatever sync the program prescribes.
"""

from __future__ import annotations

from repro.partition._static_common import (
    decision_chunker,
    forced_plan,
    glinda_kwargs,
    require_multi_kernel,
    uniform_problem_size,
)
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.partition.glinda import GlindaModel, TransferModel
from repro.partition.profiling import profile_kernel
from repro.platform.topology import Platform
from repro.runtime.graph import Program
from repro.runtime.kernels import AccessPattern
from repro.runtime.schedulers.base import StaticScheduler


def fused_transfer_model(program: Program, n: int, *, looped: bool) -> TransferModel:
    """Transfer model of the fused kernel.

    A single pass moves each partitioned array at most twice: in if it is
    read before being written (program order), out if any kernel writes
    it.  FULL inputs move once.  In a loop without synchronization the
    boundary transfers amortize to nothing over the iterations.
    """
    if looped:
        return TransferModel.amortized()
    written: set[str] = set()
    first_read_b = 0.0
    final_write_b = 0.0
    full_b = 0
    seen_out: set[str] = set()
    seen_full: set[str] = set()
    for inv in program.invocations:
        for acc in inv.kernel.accesses:
            name = acc.array.name
            if acc.pattern is AccessPattern.FULL:
                if acc.mode.reads and name not in written and name not in seen_full:
                    full_b += acc.array.nbytes
                    seen_full.add(name)
                continue
            per_index = acc.elems_per_index * acc.array.elem_bytes
            if acc.mode.reads and name not in written:
                first_read_b += per_index
                written.add(name)  # count an array's first read only once
            if acc.mode.writes and name not in seen_out:
                final_write_b += per_index
                seen_out.add(name)
                written.add(name)
    return TransferModel(gpu_share_b=first_read_b + final_write_b, fixed_b=full_b)


class SPUnified(Strategy):
    """Unified static partitioning for multi-kernel applications."""

    name = "SP-Unified"
    static = True

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        require_multi_kernel(program, self.name)
        n = uniform_problem_size(program, self.name)
        if config.gpu_fraction is not None:
            return forced_plan(self.name, program, platform, config, fused=True)

        # fused throughput: per-index time adds up across the kernels of
        # one pass (weighted by how often each kernel appears)
        kernels = program.kernels
        counts = {k.name: 0 for k in kernels}
        for inv in program.invocations:
            counts[inv.kernel.name] += 1
        passes = max(counts.values())
        profiles = {k.name: profile_kernel(k, platform, n) for k in kernels}
        t_cpu = sum(
            counts[name] / passes / p.cpu_throughput for name, p in profiles.items()
        )
        t_gpu = sum(
            counts[name] / passes / p.gpu_throughput for name, p in profiles.items()
        )

        looped = passes > 1
        transfer = fused_transfer_model(program, n, looped=looped)

        model = GlindaModel(**glinda_kwargs(config))
        decision = model.predict(
            kernel="<fused>",
            n=n,
            theta_gpu=1.0 / t_gpu,
            theta_cpu=1.0 / t_cpu,
            link=platform.link_for(platform.gpu.device_id),
            transfer=transfer,
        )

        m = config.threads(platform)
        graph = finalize_graph(
            program, decision_chunker(lambda inv: decision, platform=platform, m=m)
        )
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config=decision.config.value,
                gpu_fraction_by_kernel={
                    k.name: decision.gpu_fraction for k in kernels
                },
                notes={"glinda": decision, "fused": True, "passes": passes},
            ),
        )


register_strategy(
    SPUnified.name, SPUnified,
    family="static",
    applies_to=("MK-Seq", "MK-Loop"),
    description="one static split shared by all kernels",
)
