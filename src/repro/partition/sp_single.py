"""SP-Single: Glinda static partitioning of a single kernel (paper §III-C).

Applicable to SK-One and SK-Loop.  For SK-Loop, the partitioning is
determined for one iteration and reused for all of them (the paper assumes
stable per-iteration performance; if that does not hold, the application
should be treated as MK-Seq and use SP-Varied instead).

On platforms with more than one accelerator the strategy solves the
multi-way perfect-overlap system instead (Glinda "supports various
platforms, with one or more accelerators, identical or non-identical");
see :mod:`repro.partition.glinda_multi`.
"""

from __future__ import annotations

from repro.partition._static_common import (
    decision_chunker,
    forced_plan,
    glinda_kwargs,
    multi_static_chunks,
    single_kernel_of,
)
from repro.partition.glinda_multi import DeviceTerm, predict_multi
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.partition.glinda import GlindaModel, TransferModel
from repro.partition.profiling import profile_kernel
from repro.platform.topology import Platform
from repro.runtime.graph import Program
from repro.runtime.schedulers.base import StaticScheduler


class SPSingle(Strategy):
    """Static partitioning for single-kernel applications."""

    name = "SP-Single"
    static = True

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        if config.gpu_fraction is not None:
            single_kernel_of(program, self.name)  # applicability gate
            return forced_plan(self.name, program, platform, config)
        if len(platform.accelerators) > 1:
            return self._plan_multi(program, platform, config)
        kernel = single_kernel_of(program, self.name)
        if kernel.imbalanced:
            return self._plan_imbalanced(program, platform, config)
        first = program.invocations[0]
        n = first.n
        profile = profile_kernel(kernel, platform, n)

        looped = len(program.invocations) > 1
        synced = any(inv.sync_after for inv in program.invocations)
        if looped and synced:
            # steady state of a synchronized loop: the taskwait flush moves
            # the outputs every iteration; FULL inputs are re-fetched for
            # the part the CPU updated.
            transfer = TransferModel.synced_loop(profile, n)
        elif looped:
            transfer = TransferModel.amortized()
        else:
            transfer = TransferModel.single_pass(profile)

        model = GlindaModel(**glinda_kwargs(config))
        decision = model.predict(
            kernel=kernel.name,
            n=n,
            theta_gpu=profile.gpu_throughput,
            theta_cpu=profile.cpu_throughput,
            link=platform.link_for(platform.gpu.device_id),
            transfer=transfer,
        )

        m = config.threads(platform)
        graph = finalize_graph(
            program, decision_chunker(lambda inv: decision, platform=platform, m=m)
        )
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config=decision.config.value,
                gpu_fraction_by_kernel={kernel.name: decision.gpu_fraction},
                notes={
                    "glinda": decision,
                    "relative_capability": decision.metrics.relative_capability,
                    "compute_transfer_gap": decision.metrics.compute_transfer_gap,
                },
            ),
        )


    def _plan_imbalanced(
        self, program: Program, platform: Platform, config: PlanConfig
    ) -> ExecutionPlan:
        """Ref-[9] path: balance *work*, not index counts."""
        from repro.partition.imbalanced import imbalanced_split, weighted_ranges

        kernel = single_kernel_of(program, self.name)
        n = program.invocations[0].n
        profile = profile_kernel(kernel, platform, n)
        looped = len(program.invocations) > 1
        synced = any(inv.sync_after for inv in program.invocations)
        if looped and not synced:
            transfer = TransferModel.amortized()
        else:
            transfer = TransferModel.single_pass(profile)
        decision = imbalanced_split(
            kernel,
            n,
            theta_gpu=profile.gpu_throughput,
            theta_cpu=profile.cpu_throughput,
            link=platform.link_for(platform.gpu.device_id),
            transfer=transfer,
            warp_size=config.warp_size,
        )
        m = config.threads(platform)
        gpu_id = platform.gpu.device_id
        host = platform.host.device_id

        def chunker(inv):
            chunks = []
            if decision.boundary > 0:
                chunks.append((0, decision.boundary, gpu_id, None))
            for i, (lo, hi) in enumerate(
                weighted_ranges(kernel, decision.boundary, inv.n, m)
            ):
                chunks.append((lo, hi, None, f"{host}:{i}"))
            return chunks

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                gpu_fraction_by_kernel={kernel.name: decision.gpu_fraction},
                notes={"imbalanced": decision},
            ),
        )

    def _plan_multi(
        self, program: Program, platform: Platform, config: PlanConfig
    ) -> ExecutionPlan:
        """Multi-accelerator split via the perfect-overlap system."""
        from repro.partition.profiling import transfer_footprint, _measured_throughput

        kernel = single_kernel_of(program, self.name)
        n = program.invocations[0].n
        looped = len(program.invocations) > 1
        synced = any(inv.sync_after for inv in program.invocations)
        part_total, _, _, full = transfer_footprint(kernel)
        if looped and not synced:
            part_total, full = 0.0, 0  # transfers amortize (cf. MK-Loop)

        terms = [
            DeviceTerm(
                device_id=platform.host.device_id,
                throughput=_measured_throughput(kernel, platform.host, n),
            )
        ]
        for acc in platform.accelerators:
            link = platform.link_for(acc.device_id)
            terms.append(
                DeviceTerm(
                    device_id=acc.device_id,
                    throughput=_measured_throughput(kernel, acc, n),
                    per_index_transfer_s=part_total / link.bandwidth,
                    fixed_transfer_s=full / link.bandwidth,
                    granularity=config.warp_size,
                )
            )
        decision = predict_multi(
            terms, n, min_share_fraction=config.cpu_only_threshold
        )
        acc_shares = {
            acc.device_id: decision.shares.get(acc.device_id, 0)
            for acc in platform.accelerators
        }
        m = config.threads(platform)
        graph = finalize_graph(
            program,
            lambda inv: multi_static_chunks(
                inv, acc_shares, platform=platform, m=m
            ),
        )
        gpu_fraction = sum(acc_shares.values()) / n
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                # devices actually used, host first (e.g. "cpu+gpu0+gpu1")
                hardware_config="+".join(
                    sorted(
                        decision.active,
                        key=lambda d: d != platform.host.device_id,
                    )
                ),
                gpu_fraction_by_kernel={kernel.name: gpu_fraction},
                notes={"multi": decision},
            ),
        )


register_strategy(
    SPSingle.name, SPSingle,
    family="static",
    applies_to=("SK-One", "SK-Loop"),
    description="Glinda static split of a single kernel",
)
