"""Multi-accelerator Glinda: splits across CPU + several (non-)identical GPUs.

The Glinda approach "supports various platforms, with one or more
accelerators, identical or non-identical" (paper §II-A).  The single-GPU
equation generalizes directly: with per-device index cost
``c_i = 1/Θ_i + p_i/B_i`` (compute plus per-index transfer; the host has no
link term) and fixed transfer cost ``f_i = D_i/B_i``, the perfect-overlap
condition ``T = n_i c_i + f_i`` for all devices with ``Σ n_i = n`` gives

    T* = (n + Σ f_i/c_i) / (Σ 1/c_i)
    n_i* = (T* - f_i) / c_i

Devices whose share falls below the utilization threshold are dropped and
the system is re-solved — the multi-device generalization of the
hardware-configuration decision step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.units import round_up


@dataclass(frozen=True)
class DeviceTerm:
    """One device's coefficients in the multi-way overlap system.

    ``throughput`` is the device's sustained kernel indices/second;
    ``per_index_transfer_s`` and ``fixed_transfer_s`` are that device's
    link costs (zero for the host CPU).
    """

    device_id: str
    throughput: float
    per_index_transfer_s: float = 0.0
    fixed_transfer_s: float = 0.0
    #: GPU shares are rounded up to this granularity (1 for the host)
    granularity: int = 1

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise PartitioningError(
                f"{self.device_id}: throughput must be positive"
            )
        if self.per_index_transfer_s < 0 or self.fixed_transfer_s < 0:
            raise PartitioningError(
                f"{self.device_id}: transfer costs must be >= 0"
            )
        if self.granularity <= 0:
            raise PartitioningError(
                f"{self.device_id}: granularity must be positive"
            )

    @property
    def index_cost_s(self) -> float:
        """Seconds per index including per-index transfer."""
        return 1.0 / self.throughput + self.per_index_transfer_s


@dataclass(frozen=True)
class MultiDeviceDecision:
    """The predicted multi-way split."""

    n: int
    #: device id -> index count (devices dropped by the decision get 0)
    shares: dict[str, int]
    #: device ids actually used
    active: tuple[str, ...]
    predicted_time_s: float

    def fraction(self, device_id: str) -> float:
        return self.shares.get(device_id, 0) / self.n if self.n else 0.0


def solve_overlap(
    terms: list[DeviceTerm], n: int
) -> tuple[float, dict[str, float]]:
    """Solve the perfect-overlap system; returns ``(T*, raw shares)``.

    Shares may come out negative for devices whose fixed transfer exceeds
    the balanced time — callers drop those and re-solve.
    """
    if not terms:
        raise PartitioningError("need at least one device")
    if n <= 0:
        raise PartitioningError("problem size must be positive")
    inv_sum = sum(1.0 / t.index_cost_s for t in terms)
    fixed_sum = sum(t.fixed_transfer_s / t.index_cost_s for t in terms)
    t_star = (n + fixed_sum) / inv_sum
    shares = {
        t.device_id: (t_star - t.fixed_transfer_s) / t.index_cost_s
        for t in terms
    }
    return t_star, shares


def predict_multi(
    terms: list[DeviceTerm],
    n: int,
    *,
    min_share_fraction: float = 0.03,
) -> MultiDeviceDecision:
    """Predict the optimal split over an arbitrary device set.

    Devices receiving less than ``min_share_fraction`` of the problem (or
    a negative raw share) are dropped and the system re-solved — a device
    that cannot be used "efficiently" is not used at all, exactly like the
    single-GPU decision step.  At least one device always remains (the
    one with the lowest whole-problem cost).
    """
    active = list(terms)
    while True:
        t_star, shares = solve_overlap(active, n)
        drop = [
            t for t in active
            if shares[t.device_id] < min_share_fraction * n
        ]
        if not drop or len(active) == 1:
            break
        # drop the single worst offender and re-solve (dropping several at
        # once can overshoot when their shares interact)
        worst = min(drop, key=lambda t: shares[t.device_id])
        active = [t for t in active if t.device_id is not worst.device_id]

    if len(active) == 1 and shares[active[0].device_id] < 0:
        raise PartitioningError("no device can execute the workload")

    # integerize: round accelerator shares to their granularity, give the
    # remainder to the device with the largest share
    result = {t.device_id: 0 for t in terms}
    remaining = n
    ordered = sorted(active, key=lambda t: shares[t.device_id])
    for i, term in enumerate(ordered):
        if i == len(ordered) - 1:
            result[term.device_id] = remaining
            break
        size = min(
            remaining,
            round_up(int(round(shares[term.device_id])), term.granularity),
        )
        result[term.device_id] = size
        remaining -= size

    predicted = max(
        (
            result[t.device_id] * t.index_cost_s + t.fixed_transfer_s
            for t in terms
            if result[t.device_id] > 0
        ),
        default=0.0,
    )
    return MultiDeviceDecision(
        n=n,
        shares=result,
        active=tuple(t.device_id for t in active if result[t.device_id] > 0),
        predicted_time_s=predicted,
    )
