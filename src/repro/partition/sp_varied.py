"""SP-Varied: per-kernel static splits with inter-kernel sync (paper §III-C).

Designed for MK-Seq and MK-Loop applications that *need* (or already use)
global synchronization between kernels.  SP-Single's model is applied
kernel by kernel, so the partitioning point varies per kernel and each
kernel runs at its own optimum.  Using the strategy **requires** a
``taskwait`` after every kernel — the partitioning point moves between
kernels, so the output of one kernel produced on the two processors must be
assembled at the host before the next kernel starts.  The plan therefore
forces synchronization into the program (the paper: "we need to add extra
global synchronization points between kernels"), which is exactly why the
strategy ranks last when the application did not need synchronization.
"""

from __future__ import annotations

from repro.partition._static_common import (
    decision_chunker,
    forced_plan,
    glinda_kwargs,
    require_multi_kernel,
)
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    force_sync,
    register_strategy,
)
from repro.partition.glinda import GlindaDecision, GlindaModel, TransferModel
from repro.partition.profiling import profile_kernel
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.schedulers.base import StaticScheduler


class SPVaried(Strategy):
    """Per-kernel static partitioning with global synchronization."""

    name = "SP-Varied"
    static = True

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        require_multi_kernel(program, self.name)
        synced = force_sync(program)
        if config.gpu_fraction is not None:
            return forced_plan(
                self.name, synced, platform, config, forced_sync=True
            )

        model = GlindaModel(**glinda_kwargs(config))
        link = platform.link_for(platform.gpu.device_id)
        decisions: dict[str, GlindaDecision] = {}
        for kernel in synced.kernels:
            n = next(
                inv.n for inv in synced.invocations if inv.kernel.name == kernel.name
            )
            profile = profile_kernel(kernel, platform, n)
            decisions[kernel.name] = model.predict(
                kernel=kernel.name,
                n=n,
                theta_gpu=profile.gpu_throughput,
                theta_cpu=profile.cpu_throughput,
                link=link,
                transfer=TransferModel.single_pass(profile),
            )

        m = config.threads(platform)

        def decision_for(inv: KernelInvocation) -> GlindaDecision:
            return decisions[inv.kernel.name]

        graph = finalize_graph(
            synced, decision_chunker(decision_for, platform=platform, m=m)
        )
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="cpu+gpu",
                gpu_fraction_by_kernel={
                    name: d.gpu_fraction for name, d in decisions.items()
                },
                notes={"glinda": decisions, "forced_sync": True},
            ),
        )


register_strategy(
    SPVaried.name, SPVaried,
    family="static",
    applies_to=("MK-Seq", "MK-Loop"),
    description="per-kernel static splits + inter-kernel sync",
)
