"""Only-CPU and Only-GPU baseline executions (paper §IV footnote 2).

* **Only-CPU** is the parallel execution that only uses the ``m`` SMP
  threads on the CPU: each kernel invocation becomes ``m`` task instances
  pinned one-per-thread.  ``taskwait`` markers are kept (they cost nothing
  without device data).
* **Only-GPU** is the plain OpenCL execution on the GPU: one task per
  kernel invocation, honoring the program's synchronization semantics —
  where the application synchronizes with the host each iteration (the
  paper's SK-Loop applications), the OpenCL version reads the results back
  each iteration, exactly like the benchmark ports the paper starts from;
  where it does not (STREAM without sync), data stays resident on the
  device and only the final results are copied back.
"""

from __future__ import annotations

from repro.partition._static_common import cpu_thread_ranges
from repro.partition.base import (
    ExecutionPlan,
    PlanConfig,
    Strategy,
    StrategyDecision,
    finalize_graph,
    register_strategy,
)
from repro.platform.topology import Platform
from repro.runtime.graph import KernelInvocation, Program
from repro.runtime.schedulers.base import StaticScheduler


class OnlyCPU(Strategy):
    """All work on the host CPU with ``m`` threads."""

    name = "Only-CPU"
    static = True

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        m = config.threads(platform)
        host = platform.host.device_id

        def chunker(inv: KernelInvocation):
            return [
                (lo, hi, None, f"{host}:{i}")
                for i, (lo, hi) in enumerate(cpu_thread_ranges(0, inv.n, m))
            ]

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="only-cpu",
                gpu_fraction_by_kernel={k.name: 0.0 for k in program.kernels},
            ),
        )


class OnlyGPU(Strategy):
    """All work on the GPU, data resident across kernels and iterations."""

    name = "Only-GPU"
    static = True

    def plan(
        self, program: Program, platform: Platform, config: PlanConfig | None = None
    ) -> ExecutionPlan:
        config = config or PlanConfig()
        # on multi-accelerator platforms the baseline uses the primary
        # (first) accelerator, like a plain single-device OpenCL program
        gpu = platform.accelerators[0].device_id

        def chunker(inv: KernelInvocation):
            return [(0, inv.n, gpu, None)]

        graph = finalize_graph(program, chunker)
        return ExecutionPlan(
            graph=graph,
            scheduler=StaticScheduler(),
            decision=StrategyDecision(
                strategy=self.name,
                hardware_config="only-gpu",
                gpu_fraction_by_kernel={k.name: 1.0 for k in program.kernels},
            ),
            # plain OpenCL: no OmpSs task management, no taskwait quiescence
            runtime_overrides={
                "task_creation_overhead_s": 0.0,
                "dynamic_decision_overhead_s": 0.0,
                "barrier_overhead_s": 0.0,
            },
        )


register_strategy(
    OnlyCPU.name, OnlyCPU,
    family="baseline",
    ranked=False,
    description="all work on the host CPU with m threads",
)
register_strategy(
    OnlyGPU.name, OnlyGPU,
    family="baseline",
    ranked=False,
    description="all work on the GPU, data resident across iterations",
)
