"""Schedule×partition search: beam refinement over compiled run-plans.

The matchmaker picks one strategy per application class and trusts each
strategy's internal predictor for the split point.  This module searches
*across* that structure, HeSP-style: every applicable strategy's default
pick seeds the candidate set, a split-ratio grid sweeps the SP-* families
at forced GPU fractions (``PlanConfig.gpu_fraction``), a task-count ladder
covers the dynamic families' chunking knob, and a beam of the best
fraction candidates is refined on a halving grid for a few rounds.

Every candidate is one :class:`~repro.bench.harness.SweepCell`, so the
search streams through the ordinary sweep backends (``jobs`` process
pools, remote ``workers``) unchanged.  Plan evaluation is on by default
(``plan_eval=True``; an already-set ``REPRO_PLAN_EVAL`` overrides):
static candidates run through the compiled-plan evaluator
(:mod:`repro.sim.plan`) — sync-free plans drain terminally, synced
plans drain wave by wave — while dynamic candidates compile-fail and
fall back to the general engine, so the result set is exact either way.
The fallback counts ride back on the :class:`SearchResult`.

The search's contract with the seeds: the returned ``best`` is the
minimum over a superset of the per-strategy default picks, so it is never
worse than the best single-strategy pick (``baseline``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from repro.apps.registry import get_application
from repro.errors import (
    PartitioningError,
    StrategyInapplicableError,
)
from repro.partition.base import (
    PlanConfig,
    get_strategy,
    strategies_for_class,
)
from repro.platform.topology import Platform

#: SP families the fraction grid can drive (they honor ``gpu_fraction``)
FRACTION_STRATEGIES = ("SP-Single", "SP-Unified", "SP-Varied")

#: task-count multipliers explored for dynamic strategies (the §V knob)
TASK_COUNT_LADDER = (0.5, 2.0, 4.0)


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: a strategy plus forced knobs."""

    strategy: str
    gpu_fraction: float | None = None
    task_count: int | None = None

    def label(self) -> str:
        parts = [self.strategy]
        if self.gpu_fraction is not None:
            parts.append(f"f={self.gpu_fraction:.4g}")
        if self.task_count is not None:
            parts.append(f"tasks={self.task_count}")
        return " ".join(parts)


@dataclass(frozen=True)
class CandidateResult:
    """One evaluated candidate: the knobs and what they simulated to."""

    candidate: Candidate
    makespan_ms: float
    gpu_fraction: float  #: realized split (post warp rounding)
    hardware_config: str
    round: int  #: 0 = seeds/coarse grid, 1.. = refinement rounds


@dataclass(frozen=True)
class SearchResult:
    """Everything a ``repro search`` run decided and measured.

    ``best`` minimizes simulated makespan over all evaluated candidates;
    ``baseline`` minimizes over the seed candidates only (each applicable
    strategy's own default pick), so ``best.makespan_ms <=
    baseline.makespan_ms`` always holds.  ``plans_per_sec`` counts
    evaluated candidates against the wall-clock of the whole search
    (planning + simulation + dispatch).

    ``plan_compile_errors`` and ``wave_fallbacks`` surface the silent
    engine fallbacks behind the numbers: candidates whose plan the
    evaluator rejected outright (dynamic schedulers — expected for the
    DP-*/HYB-* families) and barrier waves whose gates failed mid-run.
    Both are exact under serial evaluation (``jobs=1``, no remote
    workers) and a lower bound otherwise — pool workers keep their own
    process-wide counters.
    """

    app: str
    app_class: str
    n: int | None
    iterations: int | None
    sync: bool | None
    rounds: int
    evaluated: tuple[CandidateResult, ...]
    best: CandidateResult
    baseline: CandidateResult
    elapsed_s: float
    plans_per_sec: float
    plan_compile_errors: int = 0
    wave_fallbacks: int = 0

    def to_record(self) -> dict:
        """A JSON-serializable summary (the ``-o file.json`` form)."""
        def rec(r: CandidateResult) -> dict:
            return {
                "strategy": r.candidate.strategy,
                "gpu_fraction": r.candidate.gpu_fraction,
                "task_count": r.candidate.task_count,
                "makespan_ms": r.makespan_ms,
                "realized_gpu_fraction": r.gpu_fraction,
                "hardware_config": r.hardware_config,
                "round": r.round,
            }

        return {
            "app": self.app,
            "app_class": self.app_class,
            "n": self.n,
            "iterations": self.iterations,
            "sync": self.sync,
            "rounds": self.rounds,
            "candidates": len(self.evaluated),
            "elapsed_s": self.elapsed_s,
            "plans_per_sec": self.plans_per_sec,
            "plan_compile_errors": self.plan_compile_errors,
            "wave_fallbacks": self.wave_fallbacks,
            "best": rec(self.best),
            "baseline": rec(self.baseline),
            "evaluated": [rec(r) for r in self.evaluated],
        }


@dataclass
class SearchSpace:
    """The candidate generator: seeds, coarse grid, and refinements."""

    seed_strategies: list[str]
    fraction_strategies: list[str]
    dynamic_strategies: list[str]
    grid: int
    base_config: PlanConfig
    default_tasks: int
    _seen: set = field(default_factory=set)

    def _emit(self, cands: list[Candidate], cand: Candidate) -> None:
        key = (cand.strategy, cand.gpu_fraction, cand.task_count)
        if key not in self._seen:
            self._seen.add(key)
            cands.append(cand)

    def seeds(self) -> list[Candidate]:
        out: list[Candidate] = []
        for name in self.seed_strategies:
            self._emit(out, Candidate(strategy=name))
        return out

    def coarse(self) -> list[Candidate]:
        out: list[Candidate] = []
        for name in self.fraction_strategies:
            for i in range(self.grid):
                frac = i / (self.grid - 1) if self.grid > 1 else 0.5
                self._emit(out, Candidate(strategy=name, gpu_fraction=frac))
        for name in self.dynamic_strategies:
            for mult in TASK_COUNT_LADDER:
                tasks = max(1, int(round(self.default_tasks * mult)))
                self._emit(out, Candidate(strategy=name, task_count=tasks))
        return out

    def refine(self, around: list[CandidateResult], step: float) -> list[Candidate]:
        """Halving-grid neighbors of the beam's fraction candidates."""
        out: list[Candidate] = []
        for result in around:
            cand = result.candidate
            if cand.gpu_fraction is None:
                continue
            for delta in (-step, step):
                frac = min(1.0, max(0.0, cand.gpu_fraction + delta))
                self._emit(
                    out, Candidate(strategy=cand.strategy, gpu_fraction=frac)
                )
        return out


def _build_space(
    app, platform: Platform, program, config: PlanConfig, grid: int
) -> SearchSpace:
    """Probe which strategies can plan this program at all."""
    seeds: list[str] = []
    for name in strategies_for_class(app.paper_class, ranked_only=False):
        try:
            get_strategy(name).plan(program, platform, config)
        except (StrategyInapplicableError, PartitioningError):
            continue
        seeds.append(name)
    probe = replace(config, gpu_fraction=0.5)
    fractions: list[str] = []
    for name in FRACTION_STRATEGIES:
        try:
            get_strategy(name).plan(program, platform, probe)
        except (StrategyInapplicableError, PartitioningError):
            continue
        fractions.append(name)
    dynamics = [
        n for n in seeds
        if n.startswith("DP-") or n.startswith("HYB-")
    ]
    return SearchSpace(
        seed_strategies=seeds,
        fraction_strategies=fractions,
        dynamic_strategies=dynamics,
        grid=grid,
        base_config=config,
        default_tasks=config.chunks(platform),
    )


def _evaluate(
    candidates: list[Candidate],
    app,
    platform: Platform,
    *,
    n,
    iterations,
    sync,
    base_config: PlanConfig,
    round_no: int,
    jobs: int,
    workers,
    fuse,
    progress: bool,
    plan_eval: bool,
) -> list[CandidateResult]:
    # deferred: repro.bench pulls in repro.core, which imports this package
    from repro.bench.harness import SweepCell, run_sweep

    cells = [
        SweepCell(
            app=app.name,
            strategy=cand.strategy,
            platform=platform,
            n=n,
            iterations=iterations,
            sync=sync,
            config=replace(
                base_config,
                gpu_fraction=cand.gpu_fraction,
                task_count=(
                    cand.task_count
                    if cand.task_count is not None
                    else base_config.task_count
                ),
            ),
        )
        for cand in candidates
    ]
    # an already-set REPRO_PLAN_EVAL wins (same override contract as
    # run_plan); otherwise the plan_eval argument decides for the sweep
    # — pool workers inherit the environment either way
    prior = os.environ.get("REPRO_PLAN_EVAL")
    os.environ["REPRO_PLAN_EVAL"] = (
        prior if prior is not None else ("1" if plan_eval else "0")
    )
    try:
        artifacts = run_sweep(
            cells, jobs=jobs, workers=workers, fuse=fuse,
            detail="summary", progress=progress,
        )
    finally:
        if prior is None:
            os.environ.pop("REPRO_PLAN_EVAL", None)
        else:
            os.environ["REPRO_PLAN_EVAL"] = prior
    return [
        CandidateResult(
            candidate=cand,
            makespan_ms=artifact.makespan_ms,
            gpu_fraction=artifact.gpu_fraction,
            hardware_config=artifact.decision.hardware_config,
            round=round_no,
        )
        for cand, artifact in zip(candidates, artifacts)
    ]


def search_plan(
    app_name: str,
    platform: Platform,
    *,
    n: int | None = None,
    iterations: int | None = None,
    sync: bool | None = None,
    config: PlanConfig | None = None,
    grid: int = 9,
    beam: int = 3,
    rounds: int = 2,
    jobs: int = 1,
    workers=None,
    fuse=None,
    progress: bool = False,
    plan_eval: bool = True,
) -> SearchResult:
    """Search (strategy × split ratio × chunking) for one scenario.

    ``grid`` sets the coarse fraction resolution (points in [0, 1]);
    ``beam`` how many best fraction candidates each refinement round
    expands; ``rounds`` how many halving refinement rounds follow the
    coarse sweep.  ``jobs``/``workers``/``fuse`` pass straight through to
    :func:`~repro.bench.harness.run_sweep`.  ``plan_eval`` routes static
    candidates through the compiled-plan evaluator (the default; an
    already-set ``REPRO_PLAN_EVAL`` environment variable overrides it in
    both directions).
    """
    if grid < 2:
        raise PartitioningError(f"grid={grid} needs at least 2 points")
    app = get_application(app_name)
    base_config = config or PlanConfig()
    effective_sync = app.needs_sync if sync is None else sync
    program = app.program(n, iterations=iterations, sync=effective_sync)
    space = _build_space(app, platform, program, base_config, grid)
    if not space.seed_strategies:
        raise PartitioningError(
            f"no strategy can plan {app.name!r} on this platform"
        )

    # deferred for the same import-cycle reason as the harness import
    from repro.sim.plan import drain_stats

    stats_before = drain_stats()
    t0 = time.perf_counter()
    evaluated: list[CandidateResult] = []

    def run(cands: list[Candidate], round_no: int) -> list[CandidateResult]:
        if not cands:
            return []
        results = _evaluate(
            cands, app, platform,
            n=n, iterations=iterations, sync=sync,
            base_config=base_config, round_no=round_no,
            jobs=jobs, workers=workers, fuse=fuse, progress=progress,
            plan_eval=plan_eval,
        )
        evaluated.extend(results)
        return results

    seed_results = run(space.seeds(), 0)
    run(space.coarse(), 0)

    step = 1.0 / (grid - 1) / 2.0
    for round_no in range(1, rounds + 1):
        with_fraction = [
            r for r in evaluated if r.candidate.gpu_fraction is not None
        ]
        if not with_fraction:
            break
        front = sorted(with_fraction, key=lambda r: r.makespan_ms)[:beam]
        if not run(space.refine(front, step), round_no):
            break
        step /= 2.0

    elapsed = time.perf_counter() - t0
    stats_after = drain_stats()
    best = min(evaluated, key=lambda r: r.makespan_ms)
    baseline = min(seed_results, key=lambda r: r.makespan_ms)
    return SearchResult(
        app=app.name,
        app_class=str(app.paper_class),
        n=n,
        iterations=iterations,
        sync=sync,
        rounds=rounds,
        evaluated=tuple(evaluated),
        best=best,
        baseline=baseline,
        elapsed_s=elapsed,
        plans_per_sec=len(evaluated) / elapsed if elapsed > 0 else 0.0,
        plan_compile_errors=(
            stats_after["compile_errors"] - stats_before["compile_errors"]
        ),
        wave_fallbacks=(
            stats_after["wave_fallbacks"] - stats_before["wave_fallbacks"]
        ),
    )


def format_search(result: SearchResult, *, top: int = 10) -> str:
    """Human-readable search report (the CLI's default output)."""
    lines = [
        f"search: {result.app} [{result.app_class}]  "
        f"{len(result.evaluated)} candidates in {result.elapsed_s:.2f}s  "
        f"({result.plans_per_sec:.0f} plans/s)",
        f"  baseline (best single-strategy pick): "
        f"{result.baseline.candidate.label()}  "
        f"{result.baseline.makespan_ms:.3f} ms",
        f"  best: {result.best.candidate.label()}  "
        f"{result.best.makespan_ms:.3f} ms",
    ]
    gain = result.baseline.makespan_ms / result.best.makespan_ms
    lines.append(f"  gain over baseline: {gain:.3f}x")
    if result.plan_compile_errors or result.wave_fallbacks:
        lines.append(
            f"  engine fallbacks: {result.plan_compile_errors} "
            f"compile-failed plans, {result.wave_fallbacks} wave-gate "
            "failures (exact runs, just slower)"
        )
    ranked = sorted(result.evaluated, key=lambda r: r.makespan_ms)[:top]
    lines.append(f"  top {len(ranked)}:")
    for r in ranked:
        lines.append(
            f"    {r.makespan_ms:10.3f} ms  {r.candidate.label()}"
            f"  (realized f={r.gpu_fraction:.3f}, {r.hardware_config},"
            f" round {r.round})"
        )
    return "\n".join(lines)
