"""Slot-dispatched fast event core (the default simulation engine).

The oracle :class:`~repro.sim.engine.Simulator` allocates one
``@dataclass`` :class:`~repro.sim.events.Event` plus one closure per
scheduled callback, and every heap operation compares events through the
dataclass's Python-level ``__lt__``.  That is robust but slow: the run
loop spends most of its time allocating and comparing bookkeeping
objects, not simulating.

:class:`FastSimulator` keeps the exact event *semantics* — total ordering
by ``(time, priority, seq)``, monotonic virtual time, cancellation,
``max_events`` budgets, ``until`` horizons — but represents events as
plain tuples ``(time, priority, seq, kind, a0, a1)`` dispatched on a
small integer ``kind`` inside an inlined run loop:

``_K_CALLBACK``
    The :meth:`at`/:meth:`after` compatibility path: ``a0`` is a
    cancellable :class:`FastEvent` handle.  API-compatible with the
    oracle's ``Event`` (``time``/``priority``/``seq``/``cancel()``).
``_K_FINISH``
    A resource-occupation completion scheduled through
    :meth:`schedule_completion`: ``a0`` is the
    :class:`~repro.sim.resources.SimResource`, ``a1`` the occupation.
    The loop advances the resource's FIFO, records the trace row, and
    re-schedules the next completion *inline* — no per-event closure, no
    Event allocation, and tuple comparisons run at C level in the heap.
    This is the executor's hot path.
``_K_LANE``
    A bulk replay lane (:meth:`replay_lane`): a preloaded array of
    occupation durations drained without tracing, callbacks, or
    per-occupation allocations.  This is the intake for occupancy-replay
    and schedule-search workloads, and what
    ``benchmarks/bench_event_core.py`` measures.
``_K_FINISH_BATCH``
    A whole occupation *stream* scheduled through
    :meth:`schedule_stream` (the engine half of
    ``SimResource.occupy_stream``): ``a0`` is the resource, ``a1`` a
    ``_StreamBlock`` carrying precomputed cumulative bounds for a run of
    back-to-back rows.  One heap event and one sequence number cover the
    entire run; at fire time the resource block-extends its trace lane
    and frees itself.  This is the traced production path's bulk drain.
``_K_CALL``
    A closure-free deferred call scheduled through
    :meth:`schedule_call`: ``a0`` is a callable, ``a1`` its single
    argument, and the loop simply runs ``a0(a1)``.  The cross-resource
    generalization of ``_K_FINISH_BATCH``: where a stream event commits
    one resource's run of rows, a call event anchors an entire
    barrier-epoch *wave* whose rows were committed analytically by the
    plan evaluator's wave drain — one heap tuple and one sequence
    number stand in for every completion of the epoch.  Not
    cancellable (no handle is allocated), which is what keeps it free.

Because both engines drive the *same* executor and
:class:`~repro.sim.resources.SimResource` code and consume sequence
numbers identically, a run under either engine produces byte-identical
:class:`~repro.artifact.RunArtifact` pickles — the differential suite
(``tests/integration/test_fast_engine_differential.py``) enforces this
across every strategy and sweep backend.

Set ``REPRO_NO_FAST_ENGINE=1`` to make :func:`make_simulator` return the
oracle engine instead (mirroring ``REPRO_NO_NUMPY`` for the vectorized
analytics fallback); the environment is consulted per call, so tests can
flip modes in-process.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import (
    DEFAULT_MAX_EVENTS,
    PRIORITY_COMPLETION,
    PRIORITY_SCHEDULE,
    Simulator,
    max_events_error,
)

#: event kinds (the ``kind`` slot of a heap tuple)
_K_CALLBACK = 0
_K_FINISH = 1
_K_LANE = 2
_K_FINISH_BATCH = 3
_K_CALL = 4


def fast_engine_enabled() -> bool:
    """Whether new simulations use the fast engine (the default).

    ``REPRO_NO_FAST_ENGINE=1`` (or ``true``/``on``) forces the oracle
    :class:`~repro.sim.engine.Simulator`, e.g. to produce a differential
    reference run.  Read per call so tests can flip it in-process.
    """
    return os.environ.get("REPRO_NO_FAST_ENGINE", "0") not in ("1", "true", "on")


def make_simulator(
    *, compact_min: int | None = None
) -> "FastSimulator | Simulator":
    """The engine new runs should use, honoring ``REPRO_NO_FAST_ENGINE``.

    ``compact_min`` overrides the cancelled-event pruning threshold on
    whichever engine is selected (``None`` keeps the engine default).
    """
    if fast_engine_enabled():
        return FastSimulator(compact_min=compact_min)
    return Simulator(compact_min=compact_min)


class FastEvent:
    """Cancellable handle for one scheduled callback.

    API-compatible with the oracle's :class:`~repro.sim.events.Event`:
    exposes ``time``, ``priority``, ``seq``, ``cancelled``, ``callback``
    and :meth:`cancel`.  Unlike the dataclass Event, the handle never
    enters the heap comparison path — ordering lives in the engine's
    tuples — so it carries no ordering dunders.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        sim: "FastSimulator",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires.

        Cancelling an event that already fired (the engine detaches the
        handle before invoking its callback) is a no-op for the live
        accounting, so :attr:`FastSimulator.pending` stays exact.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()


class _ReplayLane:
    """A preloaded FIFO of occupation durations drained by the engine."""

    __slots__ = ("durations", "head")

    def __init__(self, durations: list[float]) -> None:
        self.durations = durations
        self.head = 0

    @property
    def remaining(self) -> int:
        """Occupations not yet started (excludes the one in flight)."""
        return len(self.durations) - self.head

    @property
    def drained(self) -> bool:
        """Whether every occupation has been started (none left queued)."""
        return self.head >= len(self.durations)


class FastSimulator:
    """Drop-in fast engine: same contract as the oracle ``Simulator``."""

    #: same default compaction policy as the oracle engine
    _COMPACT_MIN = 64

    #: capability flag: :class:`~repro.sim.resources.SimResource` detects
    #: this attribute and schedules completions through
    #: :meth:`schedule_completion` instead of a per-event closure
    inline_completions = True

    __slots__ = ("_now", "_heap", "_seq", "_running", "_cancelled", "_mixed",
                 "_compact_min", "compactions")

    def __init__(self, *, compact_min: int | None = None) -> None:
        self._now = 0.0
        #: heap of (time, priority, seq, kind, a0, a1) tuples
        self._heap: list[tuple] = []
        self._seq = 0
        self._running = False
        self._cancelled = 0  # cancelled handles still occupying heap slots
        #: cancelled-slot threshold below which the heap is never rebuilt
        #: (see :meth:`_note_cancel`); configurable per workload
        self._compact_min = (
            self._COMPACT_MIN if compact_min is None else compact_min
        )
        self.compactions = 0  # heap rebuilds performed so far
        #: True once any non-lane event was scheduled; gates the
        #: specialized pure-lane drain loop
        self._mixed = False

    @property
    def compact_min(self) -> int:
        """Cancelled-slot threshold that arms heap compaction."""
        return self._compact_min

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued live (non-cancelled) events."""
        return len(self._heap) - self._cancelled

    # -- scheduling ---------------------------------------------------------

    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_SCHEDULE,
    ) -> FastEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        time = max(time, self._now)
        seq = self._seq
        self._seq = seq + 1
        handle = FastEvent(time, priority, seq, callback, self)
        heapq.heappush(self._heap, (time, priority, seq, _K_CALLBACK, handle, None))
        self._mixed = True
        return handle

    def after(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_SCHEDULE,
    ) -> FastEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, callback, priority=priority)

    def schedule_completion(self, time: float, resource, occupation) -> None:
        """Schedule a resource-occupation completion (inlined in the loop).

        The completion consumes one sequence number, exactly like the
        closure the oracle engine would have pushed — which is what keeps
        event interleaving identical between the two engines.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (time, PRIORITY_COMPLETION, seq, _K_FINISH, resource, occupation),
        )
        self._mixed = True

    def schedule_stream(self, time: float, resource, block) -> None:
        """Schedule a whole occupation stream's single completion event.

        The engine half of ``SimResource.occupy_stream``: one heap tuple
        and one sequence number for the entire run of rows, matching the
        single ``sim.at`` closure the oracle engine schedules — so event
        interleaving stays identical across engines.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (time, PRIORITY_COMPLETION, seq, _K_FINISH_BATCH, resource, block),
        )
        self._mixed = True

    def schedule_call(
        self,
        time: float,
        fn: Callable[[Any], Any],
        arg: Any,
        *,
        priority: int = PRIORITY_COMPLETION,
    ) -> None:
        """Schedule ``fn(arg)`` at ``time`` without allocating a handle.

        The wave-drain anchor: one tuple and one sequence number for a
        whole barrier epoch, mirroring the single ``sim.at`` closure the
        oracle engine schedules for the same anchor — which keeps event
        interleaving identical across engines.  Not cancellable.
        """
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        time = max(time, self._now)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, _K_CALL, fn, arg))
        self._mixed = True

    def replay_lane(self, durations: list[float]) -> _ReplayLane:
        """Preload a serial resource's occupation stream for bulk replay.

        The lane starts immediately: its first completion is scheduled at
        ``now + durations[0]`` and each completion schedules the next.
        Lanes are untraced and callback-free — the allocation-free intake
        for occupancy replay and schedule-search workloads.
        """
        for d in durations:
            if d < 0:
                raise SimulationError("lane durations must be >= 0")
        lane = _ReplayLane(durations)
        if durations:
            lane.head = 1
            seq = self._seq
            self._seq = seq + 1
            heapq.heappush(
                self._heap,
                (self._now + durations[0], PRIORITY_COMPLETION, seq, _K_LANE,
                 lane, None),
            )
        return lane

    def _note_cancel(self) -> None:
        """Track a cancellation; compact once cancelled slots dominate."""
        self._cancelled += 1
        if (
            self._cancelled >= self._compact_min
            and self._cancelled * 2 > len(self._heap)
        ):
            self._heap = [
                e for e in self._heap
                if e[3] != _K_CALLBACK or not e[4].cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self.compactions += 1

    # -- run loop -----------------------------------------------------------

    def run(
        self, *, until: float | None = None, max_events: int = DEFAULT_MAX_EVENTS
    ) -> float:
        """Drain the event heap; returns the final virtual time.

        Identical contract to the oracle engine's ``run``: an optional
        ``until`` horizon leaves later events queued, and ``max_events``
        bounds the number of *executed* (non-cancelled) events.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if until is None and not self._mixed:
                return self._drain_lanes(max_events)
            return self._run_general(until, max_events)
        finally:
            self._running = False

    def _drain_lanes(self, max_events: int) -> float:
        """Specialized loop for a heap holding only replay lanes.

        Lane events carry no callbacks, so nothing can observe ``now`` or
        schedule new work mid-drain; the loop keeps the sequence counter
        and clock in locals and writes them back once.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq = self._seq
        t = self._now
        processed = 0
        try:
            while heap:
                ev = pop(heap)
                if processed >= max_events:
                    push(heap, ev)  # leave the unprocessed event queued
                    raise max_events_error(max_events)
                processed += 1
                t = ev[0]
                lane = ev[4]
                durations = lane.durations
                head = lane.head
                if head < len(durations):
                    lane.head = head + 1
                    push(heap, (t + durations[head], 0, seq, _K_LANE, lane, None))
                    seq += 1
        finally:
            self._seq = seq
            self._now = t
        return t

    def _run_general(self, until: float | None, max_events: int) -> float:
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        processed = 0
        while heap:
            ev = heap[0]
            t = ev[0]
            if until is not None and t > until:
                break
            pop(heap)
            kind = ev[3]
            if kind == _K_FINISH:
                # inlined SimResource completion: advance the FIFO,
                # record the row, re-arm the next occupation — the body
                # of SimResource._finish/_start without the call chain
                # (the shared-semantics contract is enforced by the
                # property and differential suites)
                if processed >= max_events:
                    raise max_events_error(max_events)
                processed += 1
                self._now = t
                res = ev[4]
                queue = res._queue
                if queue:
                    nxt = queue.popleft()
                    end = t + nxt.duration
                    if not queue:
                        res._busy_until = end
                    record = res._record
                    if record is not None:
                        lane = nxt.lane
                        if lane is not None:
                            lane.append(t, end, nxt.args, nxt.size,
                                        nxt.kernel, nxt.meta)
                        else:
                            record(res.resource_id, nxt.label, nxt.category,
                                   t, end, nxt.meta, nxt.own_meta)
                    seq = self._seq
                    self._seq = seq + 1
                    push(heap, (end, PRIORITY_COMPLETION, seq, _K_FINISH,
                                res, nxt))
                else:
                    res._busy = False
                    res._busy_until = t
                cb = ev[5].on_complete
                if cb is not None:
                    if type(cb) is tuple:
                        cb[0](cb[1])
                    else:
                        cb()
            elif kind == _K_CALLBACK:
                handle = ev[4]
                if handle.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if processed >= max_events:
                    raise max_events_error(max_events)
                processed += 1
                # firing: detach so a late cancel() cannot skew ``pending``
                handle._sim = None
                self._now = t
                handle.callback()
            elif kind == _K_FINISH_BATCH:
                # one event for a whole occupation stream: the resource
                # block-extends its trace lane and frees itself (or hands
                # over to work that queued up during the run)
                if processed >= max_events:
                    raise max_events_error(max_events)
                processed += 1
                self._now = t
                ev[4]._finish_stream(ev[5])
            elif kind == _K_CALL:
                # one event for a whole barrier-epoch wave: the plan
                # evaluator committed every row analytically and left a
                # single anchor to advance the clock and continue
                if processed >= max_events:
                    raise max_events_error(max_events)
                processed += 1
                self._now = t
                ev[4](ev[5])
            else:  # _K_LANE
                if processed >= max_events:
                    raise max_events_error(max_events)
                processed += 1
                self._now = t
                lane = ev[4]
                durations = lane.durations
                head = lane.head
                if head < len(durations):
                    lane.head = head + 1
                    seq = self._seq
                    self._seq = seq + 1
                    push(heap, (t + durations[head], PRIORITY_COMPLETION,
                                seq, _K_LANE, lane, None))
        if until is not None and until > self._now:
            self._now = until
        return self._now
