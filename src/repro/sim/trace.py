"""Execution traces: the simulator's flight recorder.

Every resource occupation (kernel chunk, data transfer, runtime overhead)
is recorded with its resource, time interval, category, and free-form
metadata.  The experiment harness derives everything it reports from the
trace: partitioning ratios (Figs. 6, 8, 10), transfer shares (STREAM's 88%
observation), device busy times, and ASCII Gantt charts for debugging.

Storage is columnar: the data lives in a
:class:`~repro.sim.tracestore.TraceStore` (parallel arrays plus
per-resource/per-category row indexes built once), and
:class:`ExecutionTrace` is a thin compatibility facade that materializes
:class:`TraceRecord` dataclasses only when a caller actually asks for row
objects.  Aggregate queries (``makespan``, ``busy_time``,
``elements_by_device``, ...) are answered straight from the columns
without creating any records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.sim.tracestore import TraceStore


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One contiguous occupation of one resource."""

    resource_id: str
    label: str
    category: str
    start: float
    end: float
    meta: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Record-oriented facade over a columnar :class:`TraceStore`.

    The public API is unchanged from the original list-of-records design;
    queries now run against the store's group indexes, and
    :class:`TraceRecord` objects are built lazily (and cached) only for
    callers that iterate rows.
    """

    __slots__ = ("store", "_records")

    def __init__(self, store: TraceStore | None = None) -> None:
        self.store = store if store is not None else TraceStore()
        #: lazily materialized row objects, aligned with store rows
        self._records: list[TraceRecord | None] = []

    def __getstate__(self) -> TraceStore:
        # pickle only the columns; row objects re-materialize on demand
        return self.store

    def __setstate__(self, store: TraceStore) -> None:
        self.store = store
        self._records = []

    # -- writing ---------------------------------------------------------

    def add(self, record: TraceRecord) -> None:
        """Append an already-built record (compatibility entry point)."""
        row = self.store.record(
            record.resource_id,
            record.label,
            record.category,
            record.start,
            record.end,
            record.meta or None,
        )
        self._fill_to(row)
        self._records.append(record)

    def record(
        self,
        resource_id: str,
        label: str | tuple,
        category: str,
        start: float,
        end: float,
        meta: dict[str, Any] | None = None,
        own_meta: bool = False,
    ) -> None:
        """Append one occupation column-wise (no record allocation).

        ``label`` may be a display string or a lazy ``(template, *args)``
        tuple the store formats only on row materialization.  Pass
        ``own_meta=True`` when ``meta`` is a throwaway dict the store may
        keep without copying.
        """
        self.store.record(resource_id, label, category, start, end, meta, own_meta)

    def lane(self, resource_id: str, category: str, template: str, **kwargs):
        """Open a staging :class:`~repro.sim.tracestore.TraceLane`.

        Thin forwarder to :meth:`TraceStore.lane`; see there for the
        pre-interned constants (``device_kind``, ``device``,
        ``direction``) and deferred-flush row-numbering semantics.
        """
        return self.store.lane(resource_id, category, template, **kwargs)

    # -- materialization -------------------------------------------------

    def _fill_to(self, row: int) -> None:
        if len(self._records) < row:
            self._records.extend([None] * (row - len(self._records)))

    def _record_at(self, row: int) -> TraceRecord:
        self._fill_to(len(self.store))
        record = self._records[row]
        if record is None:
            store = self.store
            meta_idx = store.meta_idx[row]
            record = TraceRecord(
                resource_id=store.resource_id_at(row),
                label=store.label_at(row),
                category=store.category_at(row),
                start=store.starts[row],
                end=store.ends[row],
                meta=store.metas[meta_idx] if meta_idx >= 0 else {},
            )
            self._records[row] = record
        return record

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[TraceRecord]:
        for row in range(len(self.store)):
            yield self._record_at(row)

    @property
    def records(self) -> list[TraceRecord]:
        """All records in insertion order (do not mutate)."""
        return [self._record_at(row) for row in range(len(self.store))]

    # -- queries ---------------------------------------------------------

    def by_category(self, category: str) -> list[TraceRecord]:
        """Records with the given category tag."""
        return [self._record_at(r) for r in self.store.rows_by_category(category)]

    def by_resource(self, resource_id: str) -> list[TraceRecord]:
        """Records on the given resource."""
        return [self._record_at(r) for r in self.store.rows_by_resource(resource_id)]

    def makespan(self) -> float:
        """Latest end time across all records (0.0 for an empty trace)."""
        return self.store.makespan()

    def busy_time(self, resource_id: str, *, category: str | None = None) -> float:
        """Total occupied seconds on a resource, optionally per category."""
        return self.store.busy_time(resource_id, category=category)

    def total_time(self, *, category: str) -> float:
        """Total occupied seconds across all resources for a category."""
        return self.store.total_time(category=category)

    def elements_by_device(
        self, *, category: str = "compute", key: str = "device_kind"
    ) -> dict[str, int]:
        """Sum the ``size`` metadata of compute records grouped by ``key``.

        This is how partitioning ratios are computed: each compute record
        carries the number of data elements it processed and the device
        kind it ran on.
        """
        return self.store.elements_by_device(category=category, key=key)

    def instance_count_by_device(self, *, key: str = "device_kind") -> dict[str, int]:
        """Number of compute task instances per device group."""
        return self.store.instance_count_by_device(key=key)


def render_gantt(
    trace: ExecutionTrace,
    *,
    width: int = 80,
    resources: Iterable[str] | None = None,
) -> str:
    """Render an ASCII Gantt chart of the trace.

    Each resource gets one row; compute occupations draw ``#``, transfers
    ``=``, everything else ``+``.  Intended for eyeballing overlap during
    development, not for exact reading.
    """
    store = trace.store
    if not len(store):
        return "(empty trace)"
    if resources is None:
        resources = store.resource_ids_seen()
    else:
        # materialize: a generator would be exhausted by the name-width
        # pass below and then render an empty chart
        resources = list(resources)
    span = trace.makespan()
    if span <= 0:
        return "(zero-length trace)"
    glyph = {"compute": "#", "transfer": "="}
    name_w = max(len(r) for r in resources)
    # category glyphs resolved per *code* once, not per row: the chart
    # walks column indexes only and never materializes a TraceRecord
    code_glyph = [
        glyph.get(cat, "+") for cat in store.category_pool.table
    ]
    starts, ends, category_codes = store.starts, store.ends, store.category_codes
    lines = []
    for rid in resources:
        row = [" "] * width
        for rec in store.rows_by_resource(rid):
            lo = int(starts[rec] / span * (width - 1))
            hi = max(lo, int(ends[rec] / span * (width - 1)))
            ch = code_glyph[category_codes[rec]]
            for i in range(lo, hi + 1):
                row[i] = ch
        lines.append(f"{rid:<{name_w}} |{''.join(row)}|")
    lines.append(f"{'':<{name_w}}  0{'':<{width - 12}}{span * 1e3:10.3f} ms")
    return "\n".join(lines)
