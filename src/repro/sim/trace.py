"""Execution traces: the simulator's flight recorder.

Every resource occupation (kernel chunk, data transfer, runtime overhead) is
recorded with its resource, time interval, category, and free-form metadata.
The experiment harness derives everything it reports from the trace:
partitioning ratios (Figs. 6, 8, 10), transfer shares (STREAM's 88%
observation), device busy times, and ASCII Gantt charts for debugging.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One contiguous occupation of one resource."""

    resource_id: str
    label: str
    category: str
    start: float
    end: float
    meta: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """An append-only collection of :class:`TraceRecord` with query helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def add(self, record: TraceRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """All records in insertion order (do not mutate)."""
        return self._records

    # -- queries ---------------------------------------------------------

    def by_category(self, category: str) -> list[TraceRecord]:
        """Records with the given category tag."""
        return [r for r in self._records if r.category == category]

    def by_resource(self, resource_id: str) -> list[TraceRecord]:
        """Records on the given resource."""
        return [r for r in self._records if r.resource_id == resource_id]

    def makespan(self) -> float:
        """Latest end time across all records (0.0 for an empty trace)."""
        return max((r.end for r in self._records), default=0.0)

    def busy_time(self, resource_id: str, *, category: str | None = None) -> float:
        """Total occupied seconds on a resource, optionally per category."""
        return sum(
            r.duration
            for r in self._records
            if r.resource_id == resource_id
            and (category is None or r.category == category)
        )

    def total_time(self, *, category: str) -> float:
        """Total occupied seconds across all resources for a category."""
        return sum(r.duration for r in self._records if r.category == category)

    def elements_by_device(
        self, *, category: str = "compute", key: str = "device_kind"
    ) -> dict[str, int]:
        """Sum the ``size`` metadata of compute records grouped by ``key``.

        This is how partitioning ratios are computed: each compute record
        carries the number of data elements it processed and the device
        kind it ran on.
        """
        out: dict[str, int] = defaultdict(int)
        for r in self._records:
            if r.category != category:
                continue
            group = r.meta.get(key)
            size = r.meta.get("size")
            if group is None or size is None:
                continue
            out[str(group)] += int(size)
        return dict(out)

    def instance_count_by_device(self, *, key: str = "device_kind") -> dict[str, int]:
        """Number of compute task instances per device group."""
        out: dict[str, int] = defaultdict(int)
        for r in self._records:
            if r.category == "compute" and key in r.meta:
                out[str(r.meta[key])] += 1
        return dict(out)


def render_gantt(
    trace: ExecutionTrace,
    *,
    width: int = 80,
    resources: Iterable[str] | None = None,
) -> str:
    """Render an ASCII Gantt chart of the trace.

    Each resource gets one row; compute occupations draw ``#``, transfers
    ``=``, everything else ``+``.  Intended for eyeballing overlap during
    development, not for exact reading.
    """
    records = trace.records
    if not records:
        return "(empty trace)"
    if resources is None:
        seen: dict[str, None] = {}
        for r in records:
            seen.setdefault(r.resource_id, None)
        resources = list(seen)
    span = trace.makespan()
    if span <= 0:
        return "(zero-length trace)"
    glyph = {"compute": "#", "transfer": "="}
    name_w = max(len(r) for r in resources)
    lines = []
    for rid in resources:
        row = [" "] * width
        for rec in trace.by_resource(rid):
            lo = int(rec.start / span * (width - 1))
            hi = max(lo, int(rec.end / span * (width - 1)))
            ch = glyph.get(rec.category, "+")
            for i in range(lo, hi + 1):
                row[i] = ch
        lines.append(f"{rid:<{name_w}} |{''.join(row)}|")
    lines.append(f"{'':<{name_w}}  0{'':<{width - 12}}{span * 1e3:10.3f} ms")
    return "\n".join(lines)
