"""Trace analysis: utilization, overlap, and breakdowns of simulated runs.

The paper's discussion reasons about execution overlap ("the optimal
partitioning ensures a perfect execution overlap between processors") and
transfer shares ("the data transfer takes around 88% of the overall
execution time").  This module computes those quantities from any
:class:`~repro.sim.trace.ExecutionTrace` (or a bare
:class:`~repro.sim.tracestore.TraceStore`), so they can be asserted in
tests and printed alongside the figures.

Both entry points operate on the store's columns directly — no
:class:`~repro.sim.trace.TraceRecord` is ever materialized — and run
vectorized when the store exposes a numpy view (see
:mod:`repro.sim._vec`): the interval merge and the >=2-device sweep of
:func:`compute_overlap_fraction` become sorted-array operations, and
:func:`analyze_trace`'s per-resource sums become grouped sequential
reductions.  The pure-Python fallback is the oracle; both paths are
bit-identical (``tests/sim/test_vec.py``,
``tests/property/test_trace_analytics_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.sim.trace import ExecutionTrace
from repro.sim.tracestore import TraceStore

TraceLike = Union[ExecutionTrace, TraceStore]


def _store_of(trace: TraceLike) -> TraceStore:
    return trace.store if isinstance(trace, ExecutionTrace) else trace


@dataclass(frozen=True)
class ResourceStats:
    """Per-resource occupancy summary."""

    resource_id: str
    busy_s: float
    utilization: float  # busy / makespan
    records: int
    by_category: dict[str, float] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class TraceStats:
    """Whole-trace summary."""

    makespan_s: float
    resources: tuple[ResourceStats, ...]
    #: total compute seconds across resources / (makespan * #compute res.)
    mean_compute_utilization: float
    #: fraction of the makespan during which compute ran on >= 2 devices
    overlap_fraction: float
    #: link-busy seconds / makespan (per direction label)
    transfer_share: dict[str, float] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        # id -> stats lookup table, built once so resource() is O(1)
        # (not a field: invisible to __eq__/__repr__/dataclasses.replace)
        object.__setattr__(
            self, "_by_id", {r.resource_id: r for r in self.resources}
        )

    def resource(self, resource_id: str) -> ResourceStats:
        try:
            return self._by_id[resource_id]
        except KeyError:
            raise KeyError(resource_id) from None


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly overlapping time intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _covered(intervals: list[tuple[float, float]]) -> float:
    return sum(end - start for start, end in _merge_intervals(intervals))


def _overlap_fraction_python(store: TraceStore, makespan: float) -> float:
    """The record-scan oracle, ported to column/row-index access."""
    starts, ends = store.starts, store.ends
    per_device: dict[str, list[tuple[float, float]]] = {}
    for row in store.rows_by_category("compute"):
        device = store.device_key_at(row)
        per_device.setdefault(device, []).append((starts[row], ends[row]))
    if len(per_device) < 2:
        return 0.0
    # sweep the merged intervals of each device
    events: list[tuple[float, int]] = []
    for intervals in per_device.values():
        for start, end in _merge_intervals(intervals):
            events.append((start, +1))
            events.append((end, -1))
    events.sort()
    active = 0
    overlap = 0.0
    prev = 0.0
    for t, delta in events:
        if active >= 2:
            overlap += t - prev
        active += delta
        prev = t
    return overlap / makespan


def _overlap_fraction_vec(vec, makespan: float) -> float:
    """The same sweep as sorted-array operations on the numpy view."""
    per_device = vec.compute_device_intervals()
    if per_device is None:
        return 0.0
    return vec.overlap_seconds(per_device) / makespan


def compute_overlap_fraction(trace: TraceLike) -> float:
    """Fraction of the makespan with compute active on >= 2 devices.

    Devices are identified by the ``device`` metadata of compute records;
    CPU threads collectively count as one device, matching the paper's
    processor-level notion of overlap.
    """
    store = _store_of(trace)
    makespan = store.makespan()
    if makespan <= 0:
        return 0.0
    vec = store.vec_view()
    if vec is not None:
        return _overlap_fraction_vec(vec, makespan)
    return _overlap_fraction_python(store, makespan)


def analyze_trace(trace: TraceLike) -> TraceStats:
    """Summarize a trace into :class:`TraceStats`."""
    store = _store_of(trace)
    makespan = store.makespan()
    vec = store.vec_view()
    if vec is not None:
        busy_of = vec.busy_time
        by_category = vec.busy_by_resource()
    else:
        busy_of = lambda rid, _=None: store.busy_time(rid)  # noqa: E731
        by_category = store.busy_by_resource()

    resources = []
    compute_utils = []
    transfer_share: dict[str, float] = {}
    for rid in store.resource_ids_seen():
        # busy accumulates over *all* of the resource's rows in insertion
        # order (not per-category subtotals), matching the original scan
        busy = busy_of(rid, None)
        by_cat = by_category[rid]
        util = busy / makespan if makespan else 0.0
        resources.append(
            ResourceStats(
                resource_id=rid,
                busy_s=busy,
                utilization=util,
                records=len(store.rows_by_resource(rid)),
                by_category=by_cat,
            )
        )
        if "compute" in by_cat:
            compute_utils.append(by_cat["compute"] / makespan if makespan else 0)
        if rid.startswith("link:"):
            transfer_share[rid] = util

    return TraceStats(
        makespan_s=makespan,
        resources=tuple(sorted(resources, key=lambda r: r.resource_id)),
        mean_compute_utilization=(
            sum(compute_utils) / len(compute_utils) if compute_utils else 0.0
        ),
        overlap_fraction=compute_overlap_fraction(store),
        transfer_share=transfer_share,
    )


def format_stats(stats: TraceStats) -> str:
    """Human-readable rendering of :class:`TraceStats`."""
    lines = [
        f"makespan: {stats.makespan_s * 1e3:.3f} ms   "
        f"compute overlap: {stats.overlap_fraction:.0%}   "
        f"mean compute utilization: {stats.mean_compute_utilization:.0%}",
    ]
    for r in stats.resources:
        cats = "  ".join(
            f"{cat}={sec * 1e3:.2f}ms" for cat, sec in sorted(r.by_category.items())
        )
        lines.append(
            f"  {r.resource_id:<16} {r.utilization:>5.0%} busy "
            f"({r.records} records)  {cats}"
        )
    return "\n".join(lines)
