"""Trace analysis: utilization, overlap, and breakdowns of simulated runs.

The paper's discussion reasons about execution overlap ("the optimal
partitioning ensures a perfect execution overlap between processors") and
transfer shares ("the data transfer takes around 88% of the overall
execution time").  This module computes those quantities from any
:class:`~repro.sim.trace.ExecutionTrace`, so they can be asserted in tests
and printed alongside the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.trace import ExecutionTrace, TraceRecord


@dataclass(frozen=True)
class ResourceStats:
    """Per-resource occupancy summary."""

    resource_id: str
    busy_s: float
    utilization: float  # busy / makespan
    records: int
    by_category: dict[str, float] = field(default_factory=dict, hash=False)


@dataclass(frozen=True)
class TraceStats:
    """Whole-trace summary."""

    makespan_s: float
    resources: tuple[ResourceStats, ...]
    #: total compute seconds across resources / (makespan * #compute res.)
    mean_compute_utilization: float
    #: fraction of the makespan during which compute ran on >= 2 devices
    overlap_fraction: float
    #: link-busy seconds / makespan (per direction label)
    transfer_share: dict[str, float] = field(default_factory=dict, hash=False)

    def resource(self, resource_id: str) -> ResourceStats:
        for r in self.resources:
            if r.resource_id == resource_id:
                return r
        raise KeyError(resource_id)


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly overlapping time intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _covered(intervals: list[tuple[float, float]]) -> float:
    return sum(end - start for start, end in _merge_intervals(intervals))


def compute_overlap_fraction(trace: ExecutionTrace) -> float:
    """Fraction of the makespan with compute active on >= 2 devices.

    Devices are identified by the ``device`` metadata of compute records;
    CPU threads collectively count as one device, matching the paper's
    processor-level notion of overlap.
    """
    makespan = trace.makespan()
    if makespan <= 0:
        return 0.0
    per_device: dict[str, list[tuple[float, float]]] = {}
    for rec in trace.by_category("compute"):
        device = str(rec.meta.get("device", rec.resource_id))
        per_device.setdefault(device, []).append((rec.start, rec.end))
    if len(per_device) < 2:
        return 0.0
    # sweep the merged intervals of each device
    events: list[tuple[float, int]] = []
    for intervals in per_device.values():
        for start, end in _merge_intervals(intervals):
            events.append((start, +1))
            events.append((end, -1))
    events.sort()
    active = 0
    overlap = 0.0
    prev = 0.0
    for t, delta in events:
        if active >= 2:
            overlap += t - prev
        active += delta
        prev = t
    return overlap / makespan


def analyze_trace(trace: ExecutionTrace) -> TraceStats:
    """Summarize a trace into :class:`TraceStats`."""
    makespan = trace.makespan()
    per_resource: dict[str, list[TraceRecord]] = {}
    for rec in trace:
        per_resource.setdefault(rec.resource_id, []).append(rec)

    resources = []
    compute_utils = []
    transfer_share: dict[str, float] = {}
    for rid, records in per_resource.items():
        busy = sum(r.duration for r in records)
        by_cat: dict[str, float] = {}
        for r in records:
            by_cat[r.category] = by_cat.get(r.category, 0.0) + r.duration
        util = busy / makespan if makespan else 0.0
        resources.append(
            ResourceStats(
                resource_id=rid,
                busy_s=busy,
                utilization=util,
                records=len(records),
                by_category=by_cat,
            )
        )
        if "compute" in by_cat:
            compute_utils.append(by_cat["compute"] / makespan if makespan else 0)
        if rid.startswith("link:"):
            transfer_share[rid] = util

    return TraceStats(
        makespan_s=makespan,
        resources=tuple(sorted(resources, key=lambda r: r.resource_id)),
        mean_compute_utilization=(
            sum(compute_utils) / len(compute_utils) if compute_utils else 0.0
        ),
        overlap_fraction=compute_overlap_fraction(trace),
        transfer_share=transfer_share,
    )


def format_stats(stats: TraceStats) -> str:
    """Human-readable rendering of :class:`TraceStats`."""
    lines = [
        f"makespan: {stats.makespan_s * 1e3:.3f} ms   "
        f"compute overlap: {stats.overlap_fraction:.0%}   "
        f"mean compute utilization: {stats.mean_compute_utilization:.0%}",
    ]
    for r in stats.resources:
        cats = "  ".join(
            f"{cat}={sec * 1e3:.2f}ms" for cat, sec in sorted(r.by_category.items())
        )
        lines.append(
            f"  {r.resource_id:<16} {r.utilization:>5.0%} busy "
            f"({r.records} records)  {cats}"
        )
    return "\n".join(lines)
