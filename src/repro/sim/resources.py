"""Serial simulated resources (compute contexts and link channels).

A :class:`SimResource` executes one occupation at a time.  Occupations are
either started immediately (if the resource is idle) or queued FIFO.  Each
occupation appends one row to the shared trace's columnar
:class:`~repro.sim.tracestore.TraceStore` — no per-occupation
:class:`~repro.sim.trace.TraceRecord` object is allocated on this hot
path — and fires a completion callback through the owning simulator.

Resources work with either engine.  Under the oracle
:class:`~repro.sim.engine.Simulator` every completion is a closure
scheduled through ``sim.at``; under the
:class:`~repro.sim.fast_engine.FastSimulator` completions go through
``sim.schedule_completion`` and the engine's run loop advances the FIFO
inline (see :mod:`repro.sim.fast_engine`).  Both paths consume one
sequence number per completion, so event interleaving — and therefore
every trace row — is identical across engines.

Completion callbacks may be plain zero-argument callables or ``(fn, arg)``
tuples; the tuple form lets callers (the runtime executor, chiefly) reuse
one prebound method instead of allocating a closure per occupation.

``trace=None`` creates an *untraced* resource: occupations run with full
timing/queueing semantics but append no rows.  Artifact-producing runs
always trace; the untraced mode serves replay and schedule-search
workloads that only need the clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim import _vec
from repro.sim.engine import PRIORITY_COMPLETION, Simulator
from repro.sim.trace import ExecutionTrace
from repro.sim.tracestore import TraceLane


@dataclass(slots=True)
class _Occupation:
    duration: float
    #: display string, or a lazy ``(template, *args)`` tuple the trace
    #: store formats only when a row is materialized
    label: str | tuple
    category: str
    on_complete: Callable[[], Any] | tuple | None
    meta: dict[str, Any] = field(default_factory=dict)
    #: staging lane this occupation's row goes to instead of
    #: ``TraceStore.record`` (resource/category/template pre-interned)
    lane: TraceLane | None = None
    #: per-row lane arguments: label args, element count, kernel name
    args: tuple = ()
    size: int = -1
    kernel: str | None = None
    #: meta is a throwaway dict the store may keep without copying
    own_meta: bool = False


@dataclass(slots=True)
class _StreamBlock:
    """Deferred bulk-trace payload for :meth:`SimResource.occupy_stream`.

    Carries everything :meth:`SimResource._finish_stream` needs to write
    the whole run of rows at the stream's single completion event.
    """

    lane: TraceLane
    #: ``k + 1`` cumulative bounds; row ``i`` spans ``bounds[i]`` to
    #: ``bounds[i + 1]`` (see :func:`repro.sim._vec.lane_bounds`)
    bounds: Any
    str_arg: str | None
    args: Any
    metas: list | None
    on_complete: Callable[[], Any] | tuple | None


class SimResource:
    """A serial resource bound to a simulator and a shared trace.

    Parameters
    ----------
    sim:
        The owning simulator (oracle or fast engine).
    resource_id:
        Unique identifier; appears in trace records.
    trace:
        Shared :class:`ExecutionTrace` that collects occupation records,
        or ``None`` for an untraced resource.
    """

    def __init__(
        self,
        sim: Simulator,
        resource_id: str,
        trace: ExecutionTrace | None,
    ) -> None:
        self.sim = sim
        self.resource_id = resource_id
        self.trace = trace
        #: prebound row appender (or None): one attribute load per row
        #: instead of two, and the untraced check is a None test
        self._record = trace.record if trace is not None else None
        #: engines that inline completion handling expose
        #: ``schedule_completion``; the oracle path allocates a closure
        self._schedule_completion = getattr(sim, "schedule_completion", None)
        #: fast-engine hook for one-event stream completions
        self._schedule_stream = getattr(sim, "schedule_stream", None)
        self._queue: deque[_Occupation] = deque()
        self._busy = False
        self._busy_until = 0.0

    @property
    def busy(self) -> bool:
        """Whether an occupation is currently executing."""
        return self._busy

    @property
    def busy_until(self) -> float:
        """Virtual time at which the current work (incl. queue) finishes.

        For an idle resource this is the current time.
        """
        if not self._busy and not self._queue:
            return self.sim.now
        return self._busy_until

    @property
    def queued(self) -> int:
        """Number of occupations waiting behind the current one."""
        return len(self._queue)

    def occupy(
        self,
        duration: float,
        *,
        label: str | tuple,
        category: str,
        on_complete: Callable[[], Any] | tuple | None = None,
        meta: dict[str, Any] | None = None,
        lane: TraceLane | None = None,
        args: tuple = (),
        size: int = -1,
        kernel: str | None = None,
        own_meta: bool = False,
    ) -> None:
        """Enqueue an occupation of ``duration`` seconds.

        ``category`` tags the record for trace analysis (``"compute"``,
        ``"transfer"``, ``"overhead"`` ...).  ``on_complete`` — a
        callable or a ``(fn, arg)`` tuple — fires at the occupation's end
        time, *after* the resource is marked free.

        Passing ``lane`` routes the trace row through a pre-interned
        :class:`~repro.sim.tracestore.TraceLane` instead of
        ``TraceStore.record``: ``label``/``category`` are ignored for the
        row (the lane's template and constants win) and ``args``, ``size``
        and ``kernel`` become the per-row lane payload.  The lane must
        belong to this resource's trace store.  ``own_meta=True`` marks
        ``meta`` as a throwaway dict the store may keep without copying.
        """
        if duration < 0:
            raise SimulationError(
                f"{self.resource_id}: occupation duration must be >= 0"
            )
        occ = _Occupation(
            duration, label, category, on_complete, meta or {},
            lane, args, size, kernel, own_meta,
        )
        if self._busy:
            self._queue.append(occ)
            self._busy_until += duration
        else:
            self._start(occ)

    def _start(self, occ: _Occupation) -> None:
        self._busy = True
        start = self.sim.now
        end = start + occ.duration
        if not self._queue:
            self._busy_until = end
        # columnar append: no TraceRecord allocation on the hot path
        record = self._record
        if record is not None:
            lane = occ.lane
            if lane is not None:
                lane.append(
                    start, end, occ.args, occ.size, occ.kernel, occ.meta
                )
            else:
                record(
                    self.resource_id, occ.label, occ.category, start, end,
                    occ.meta, occ.own_meta,
                )
        schedule = self._schedule_completion
        if schedule is not None:
            schedule(end, self, occ)
        else:
            self.sim.at(end, lambda: self._finish(occ), priority=PRIORITY_COMPLETION)

    def _finish(self, occ: _Occupation) -> None:
        # NOTE: the fast engine inlines this body (plus _start's) in its
        # run loop for _K_FINISH events; keep the two in sync
        if self._queue:
            nxt = self._queue.popleft()
            self._start(nxt)
        else:
            self._busy = False
            self._busy_until = self.sim.now
        cb = occ.on_complete
        if cb is not None:
            if type(cb) is tuple:
                cb[0](cb[1])
            else:
                cb()

    def occupy_stream(
        self,
        durations,
        lane: TraceLane,
        *,
        str_arg: str | None = None,
        args=None,
        metas: list | None = None,
        on_complete: Callable[[], Any] | tuple | None = None,
    ) -> None:
        """Occupy with a back-to-back run of ``len(durations)`` rows.

        The bulk traced intake: where :meth:`occupy` costs one event and
        one row append per occupation, this schedules **one** completion
        event for the whole run and writes all rows with a single
        block-extend into ``lane`` when it fires.  Cumulative bounds come
        from :func:`repro.sim._vec.lane_bounds` (numpy ``cumsum``, or the
        bit-identical sequential fallback under ``REPRO_NO_NUMPY=1``), so
        every row's start/end matches what ``len(durations)`` chained
        :meth:`occupy` calls would have produced.

        The resource must be idle with an empty queue — the stream
        models an uninterruptible run, so interleaving with queued
        occupations has no meaning.  (Work *arriving* during the stream
        queues behind it as usual.)  ``str_arg``/``args``/``metas`` are
        the per-run lane payload (see
        :class:`~repro.sim.tracestore.TraceLane.extend_block`).  Both
        engines consume exactly one sequence number for the completion,
        keeping event interleaving — and artifact bytes — identical.
        """
        if self.trace is None:
            raise SimulationError(
                f"{self.resource_id}: occupy_stream requires a traced resource"
            )
        if self._busy or self._queue:
            raise SimulationError(
                f"{self.resource_id}: occupy_stream requires an idle resource"
            )
        k = len(durations)
        if args is not None and len(args) != k:
            raise SimulationError(
                f"{self.resource_id}: occupy_stream args length {len(args)}"
                f" != {k} durations"
            )
        if metas is not None and len(metas) != k:
            raise SimulationError(
                f"{self.resource_id}: occupy_stream metas length {len(metas)}"
                f" != {k} durations"
            )
        if k == 0:
            # empty run: no occupation, fire the callback at the current
            # time without consuming an event
            if on_complete is not None:
                if type(on_complete) is tuple:
                    on_complete[0](on_complete[1])
                else:
                    on_complete()
            return
        if min(durations) < 0:
            raise SimulationError(
                f"{self.resource_id}: occupation duration must be >= 0"
            )
        bounds = _vec.lane_bounds(self.sim.now, durations)
        end = float(bounds[k])
        self._busy = True
        self._busy_until = end
        block = _StreamBlock(lane, bounds, str_arg, args, metas, on_complete)
        schedule = self._schedule_stream
        if schedule is not None:
            schedule(end, self, block)
        else:
            self.sim.at(
                end,
                lambda: self._finish_stream(block),
                priority=PRIORITY_COMPLETION,
            )

    def _finish_stream(self, block: _StreamBlock) -> None:
        # mirrors _finish: free the resource (or hand over to work queued
        # *during* the stream), then fire the callback.  The fast engine
        # calls this directly for _K_FINISH_BATCH events.
        block.lane.extend_block(
            block.bounds, block.str_arg, block.args, block.metas
        )
        if self._queue:
            nxt = self._queue.popleft()
            self._start(nxt)
        else:
            self._busy = False
            self._busy_until = self.sim.now
        cb = block.on_complete
        if cb is not None:
            if type(cb) is tuple:
                cb[0](cb[1])
            else:
                cb()
