"""Serial simulated resources (compute contexts and link channels).

A :class:`SimResource` executes one occupation at a time.  Occupations are
either started immediately (if the resource is idle) or queued FIFO.  Each
occupation appends one row to the shared trace's columnar
:class:`~repro.sim.tracestore.TraceStore` — no per-occupation
:class:`~repro.sim.trace.TraceRecord` object is allocated on this hot
path — and fires a completion callback through the owning simulator.

Resources work with either engine.  Under the oracle
:class:`~repro.sim.engine.Simulator` every completion is a closure
scheduled through ``sim.at``; under the
:class:`~repro.sim.fast_engine.FastSimulator` completions go through
``sim.schedule_completion`` and the engine's run loop advances the FIFO
inline (see :mod:`repro.sim.fast_engine`).  Both paths consume one
sequence number per completion, so event interleaving — and therefore
every trace row — is identical across engines.

Completion callbacks may be plain zero-argument callables or ``(fn, arg)``
tuples; the tuple form lets callers (the runtime executor, chiefly) reuse
one prebound method instead of allocating a closure per occupation.

``trace=None`` creates an *untraced* resource: occupations run with full
timing/queueing semantics but append no rows.  Artifact-producing runs
always trace; the untraced mode serves replay and schedule-search
workloads that only need the clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import PRIORITY_COMPLETION, Simulator
from repro.sim.trace import ExecutionTrace


@dataclass(slots=True)
class _Occupation:
    duration: float
    #: display string, or a lazy ``(template, *args)`` tuple the trace
    #: store formats only when a row is materialized
    label: str | tuple
    category: str
    on_complete: Callable[[], Any] | tuple | None
    meta: dict[str, Any] = field(default_factory=dict)


class SimResource:
    """A serial resource bound to a simulator and a shared trace.

    Parameters
    ----------
    sim:
        The owning simulator (oracle or fast engine).
    resource_id:
        Unique identifier; appears in trace records.
    trace:
        Shared :class:`ExecutionTrace` that collects occupation records,
        or ``None`` for an untraced resource.
    """

    def __init__(
        self,
        sim: Simulator,
        resource_id: str,
        trace: ExecutionTrace | None,
    ) -> None:
        self.sim = sim
        self.resource_id = resource_id
        self.trace = trace
        #: prebound row appender (or None): one attribute load per row
        #: instead of two, and the untraced check is a None test
        self._record = trace.record if trace is not None else None
        #: engines that inline completion handling expose
        #: ``schedule_completion``; the oracle path allocates a closure
        self._schedule_completion = getattr(sim, "schedule_completion", None)
        self._queue: deque[_Occupation] = deque()
        self._busy = False
        self._busy_until = 0.0

    @property
    def busy(self) -> bool:
        """Whether an occupation is currently executing."""
        return self._busy

    @property
    def busy_until(self) -> float:
        """Virtual time at which the current work (incl. queue) finishes.

        For an idle resource this is the current time.
        """
        if not self._busy and not self._queue:
            return self.sim.now
        return self._busy_until

    @property
    def queued(self) -> int:
        """Number of occupations waiting behind the current one."""
        return len(self._queue)

    def occupy(
        self,
        duration: float,
        *,
        label: str | tuple,
        category: str,
        on_complete: Callable[[], Any] | tuple | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Enqueue an occupation of ``duration`` seconds.

        ``category`` tags the record for trace analysis (``"compute"``,
        ``"transfer"``, ``"overhead"`` ...).  ``on_complete`` — a
        callable or a ``(fn, arg)`` tuple — fires at the occupation's end
        time, *after* the resource is marked free.
        """
        if duration < 0:
            raise SimulationError(
                f"{self.resource_id}: occupation duration must be >= 0"
            )
        occ = _Occupation(duration, label, category, on_complete, meta or {})
        if self._busy:
            self._queue.append(occ)
            self._busy_until += duration
        else:
            self._start(occ)

    def _start(self, occ: _Occupation) -> None:
        self._busy = True
        start = self.sim.now
        end = start + occ.duration
        if not self._queue:
            self._busy_until = end
        # columnar append: no TraceRecord allocation on the hot path
        record = self._record
        if record is not None:
            record(
                self.resource_id, occ.label, occ.category, start, end, occ.meta
            )
        schedule = self._schedule_completion
        if schedule is not None:
            schedule(end, self, occ)
        else:
            self.sim.at(end, lambda: self._finish(occ), priority=PRIORITY_COMPLETION)

    def _finish(self, occ: _Occupation) -> None:
        # NOTE: the fast engine inlines this body (plus _start's) in its
        # run loop for _K_FINISH events; keep the two in sync
        if self._queue:
            nxt = self._queue.popleft()
            self._start(nxt)
        else:
            self._busy = False
            self._busy_until = self.sim.now
        cb = occ.on_complete
        if cb is not None:
            if type(cb) is tuple:
                cb[0](cb[1])
            else:
                cb()
