"""Serial simulated resources (compute contexts and link channels).

A :class:`SimResource` executes one occupation at a time.  Occupations are
either started immediately (if the resource is idle) or queued FIFO.  Each
occupation appends one row to the shared trace's columnar
:class:`~repro.sim.tracestore.TraceStore` — no per-occupation
:class:`~repro.sim.trace.TraceRecord` object is allocated on this hot
path — and fires a completion callback through the owning
:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import PRIORITY_COMPLETION, Simulator
from repro.sim.trace import ExecutionTrace


@dataclass(slots=True)
class _Occupation:
    duration: float
    #: display string, or a lazy ``(template, *args)`` tuple the trace
    #: store formats only when a row is materialized
    label: str | tuple
    category: str
    on_complete: Callable[[], Any] | None
    meta: dict[str, Any] = field(default_factory=dict)


class SimResource:
    """A serial resource bound to a simulator and a shared trace.

    Parameters
    ----------
    sim:
        The owning simulator.
    resource_id:
        Unique identifier; appears in trace records.
    trace:
        Shared :class:`ExecutionTrace` that collects occupation records.
    """

    def __init__(self, sim: Simulator, resource_id: str, trace: ExecutionTrace) -> None:
        self.sim = sim
        self.resource_id = resource_id
        self.trace = trace
        self._queue: deque[_Occupation] = deque()
        self._busy = False
        self._busy_until = 0.0

    @property
    def busy(self) -> bool:
        """Whether an occupation is currently executing."""
        return self._busy

    @property
    def busy_until(self) -> float:
        """Virtual time at which the current work (incl. queue) finishes.

        For an idle resource this is the current time.
        """
        if not self._busy and not self._queue:
            return self.sim.now
        return self._busy_until

    @property
    def queued(self) -> int:
        """Number of occupations waiting behind the current one."""
        return len(self._queue)

    def occupy(
        self,
        duration: float,
        *,
        label: str | tuple,
        category: str,
        on_complete: Callable[[], Any] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Enqueue an occupation of ``duration`` seconds.

        ``category`` tags the record for trace analysis (``"compute"``,
        ``"transfer"``, ``"overhead"`` ...).  ``on_complete`` fires at the
        occupation's end time, *after* the resource is marked free.
        """
        if duration < 0:
            raise SimulationError(
                f"{self.resource_id}: occupation duration must be >= 0"
            )
        occ = _Occupation(duration, label, category, on_complete, meta or {})
        if self._busy:
            self._queue.append(occ)
            self._busy_until += duration
        else:
            self._start(occ)

    def _start(self, occ: _Occupation) -> None:
        self._busy = True
        start = self.sim.now
        end = start + occ.duration
        if not self._queue:
            self._busy_until = end
        # columnar append: no TraceRecord allocation on the hot path
        self.trace.record(
            self.resource_id, occ.label, occ.category, start, end, occ.meta
        )
        self.sim.at(end, lambda: self._finish(occ), priority=PRIORITY_COMPLETION)

    def _finish(self, occ: _Occupation) -> None:
        if self._queue:
            nxt = self._queue.popleft()
            self._start(nxt)
        else:
            self._busy = False
            self._busy_until = self.sim.now
        if occ.on_complete is not None:
            occ.on_complete()
