"""Optional numpy acceleration for columnar trace analytics.

A sealed :class:`~repro.sim.tracestore.TraceStore` can be converted — once
— into a :class:`VecView`: its ``array``-backed columns become ndarrays
and every aggregate query (``busy_time``, ``busy_by_resource``,
``transfer_time_by_direction``, ``elements_by_device``, the interval
merge and the >=2-device overlap sweep) is answered with sorted-array
operations instead of per-row Python loops.

**Bit-identical contract.**  Every float a view computes must equal the
pure-Python column scan bit for bit, because downstream reports promise
byte-identical figures regardless of whether numpy is installed.  The
rules that make this work:

* element-wise arithmetic (``ends - starts``) is IEEE-identical to the
  per-row expression;
* *sequential* accumulation is reproduced with ``cumsum`` (numpy's cumsum
  is the naive left-to-right recurrence — unlike ``np.sum``, which uses
  pairwise summation and would round differently), taking the last
  element of the running sum of each group's rows in insertion order;
* integer sums (element counts) are exact in any order;
* sorts replicate the scalar code's tuple ordering with ``np.lexsort``
  (last key is primary), so tie-breaking matches.

The differential suites (``tests/sim/test_vec.py``,
``tests/property/test_trace_analytics_properties.py``) enforce the
contract query by query against the pure-Python oracle.

numpy is **optional** here even though other subsystems require it: when
it is missing — or vectorization is disabled with ``REPRO_NO_NUMPY=1``
(how CI exercises the fallback) — ``enabled()`` is false and every store
query falls back to the pure-Python path.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.tracestore import TraceStore

#: stores smaller than this answer queries in pure Python — building a
#: view costs one O(n) conversion pass, which tiny traces never amortize
VEC_MIN_ROWS = 512


def numpy_installed() -> bool:
    """Whether numpy could be imported at all."""
    return _np is not None


def enabled() -> bool:
    """Whether the vectorized path may be used right now.

    Checked per view construction (not cached), so tests and the CI
    fallback job can flip ``REPRO_NO_NUMPY`` at any point.
    """
    if _np is None:
        return False
    return os.environ.get("REPRO_NO_NUMPY", "0") not in ("1", "true", "on")


def lane_bounds(t0: float, durations):
    """Cumulative completion bounds of a serial occupation stream.

    Returns ``k + 1`` cumulative times ``[t0, t0 + d0, (t0 + d0) + d1,
    ...]`` — row ``i`` of the stream spans ``bounds[i]`` to
    ``bounds[i + 1]``.  On the vectorized path this is one
    ``np.cumsum`` over ``[t0, *durations]`` (an ndarray); with numpy
    unavailable or ``REPRO_NO_NUMPY=1`` it is the pure-Python
    sequential chain (an ``array('d')``).  ``cumsum`` is numpy's naive
    left-to-right recurrence, so both paths produce bit-identical
    floats: each partial sum *is* the previous occupation's end time,
    exactly as the per-event engines compute it.
    """
    if enabled() and len(durations) >= 1:
        seed = _np.empty(len(durations) + 1, dtype=_np.float64)
        seed[0] = t0
        seed[1:] = durations
        return _np.cumsum(seed)
    from array import array

    bounds = array("d", (0.0,)) * (len(durations) + 1)
    t = t0
    bounds[0] = t
    i = 1
    for d in durations:
        t = t + d
        bounds[i] = t
        i += 1
    return bounds


def chain_bounds(t0s, duration_rows):
    """Per-resource cumulative bounds for a set of serial chains.

    The cross-resource generalization of :func:`lane_bounds`: ``t0s[i]``
    anchors resource ``i``'s chain and ``duration_rows[i]`` holds its
    back-to-back durations.  Returns one bounds sequence per resource
    (``len(duration_rows[i]) + 1`` entries each, same layout as
    :func:`lane_bounds`).

    On the vectorized path every chain is a row of one 2-D matrix —
    short rows padded with trailing zeros — drained by a single
    ``np.cumsum(axis=1)``.  ``cumsum`` is the naive left-to-right
    recurrence and ``x + 0.0 == x`` for the non-negative times simulated
    here, so the padding never perturbs the partial sums and both paths
    stay bit-identical to chained :func:`lane_bounds` calls.
    """
    if enabled() and duration_rows:
        width = max(len(row) for row in duration_rows)
        mat = _np.zeros((len(duration_rows), width + 1), dtype=_np.float64)
        for i, (t0, row) in enumerate(zip(t0s, duration_rows)):
            mat[i, 0] = t0
            if len(row):
                mat[i, 1:len(row) + 1] = row
        _np.cumsum(mat, axis=1, out=mat)
        return [mat[i, :len(row) + 1] for i, row in enumerate(duration_rows)]
    return [lane_bounds(t0, row) for t0, row in zip(t0s, duration_rows)]


def _seq_sum(values) -> float:
    """Left-to-right sequential sum of a 1-D float array.

    ``cumsum`` is numpy's naive recurrence, so the last running total is
    bit-identical to ``total = 0.0; for v in values: total += v``.
    """
    if values.size == 0:
        return 0.0
    return float(values.cumsum()[-1])


def _first_appearance(codes):
    """Distinct codes of a 1-D int array in first-appearance order."""
    uniq, first = _np.unique(codes, return_index=True)
    return [int(c) for c in uniq[_np.argsort(first, kind="stable")]]


class VecView:
    """One-time ndarray conversion of a sealed store.

    The view snapshots the store's columns by copy (a live ``array``
    buffer may reallocate on append), plus per-resource/per-category row
    index arrays derived from the store's group indexes.  A view is only
    valid for the row count it was built at; the store rebuilds it after
    further appends.
    """

    __slots__ = (
        "n",
        "starts",
        "ends",
        "durations",
        "resource_codes",
        "category_codes",
        "kind_codes",
        "kernel_codes",
        "device_codes",
        "direction_codes",
        "sizes",
        "_store",
        "_resource_rows",
        "_category_rows",
    )

    def __init__(self, store: "TraceStore") -> None:
        np = _np
        self.n = len(store.starts)
        self.starts = np.array(store.starts, dtype=np.float64)
        self.ends = np.array(store.ends, dtype=np.float64)
        self.durations = self.ends - self.starts
        self.resource_codes = np.array(store.resource_codes, dtype=np.intp)
        self.category_codes = np.array(store.category_codes, dtype=np.intp)
        self.kind_codes = np.array(store.kind_codes, dtype=np.intp)
        self.kernel_codes = np.array(store.kernel_codes, dtype=np.intp)
        self.device_codes = np.array(store.device_codes, dtype=np.intp)
        self.direction_codes = np.array(store.direction_codes, dtype=np.intp)
        self.sizes = np.array(store.sizes, dtype=np.int64)
        self._store = store
        self._resource_rows: dict[str, object] = {}
        self._category_rows: dict[str, object] = {}

    # -- row selections --------------------------------------------------

    def rows_of_resource(self, resource_id: str):
        """Row indices on a resource, as an ndarray (insertion order)."""
        rows = self._resource_rows.get(resource_id)
        if rows is None:
            rows = _np.asarray(
                self._store.rows_by_resource(resource_id), dtype=_np.intp
            )
            self._resource_rows[resource_id] = rows
        return rows

    def rows_of_category(self, category: str):
        """Row indices tagged with a category, as an ndarray."""
        rows = self._category_rows.get(category)
        if rows is None:
            rows = _np.asarray(
                self._store.rows_by_category(category), dtype=_np.intp
            )
            self._category_rows[category] = rows
        return rows

    # -- aggregate queries (bit-identical to the Python column scans) ----

    def busy_time(self, resource_id: str, category: str | None = None) -> float:
        rows = self.rows_of_resource(resource_id)
        durations = self.durations[rows]
        if category is not None:
            code = self._store.category_pool.code_of(category)
            if code < 0:
                return 0.0
            durations = durations[self.category_codes[rows] == code]
        return _seq_sum(durations)

    def total_time(self, category: str) -> float:
        return _seq_sum(self.durations[self.rows_of_category(category)])

    def busy_by_resource(self) -> dict[str, dict[str, float]]:
        table = self._store.category_pool.table
        out: dict[str, dict[str, float]] = {}
        for rid in self._store.resource_ids_seen():
            rows = self.rows_of_resource(rid)
            codes = self.category_codes[rows]
            durations = self.durations[rows]
            per_cat: dict[str, float] = {}
            for code in _first_appearance(codes):
                per_cat[table[code]] = _seq_sum(durations[codes == code])
            out[rid] = per_cat
        return out

    def transfer_time_by_direction(self) -> dict[str, float]:
        rows = self.rows_of_category("transfer")
        codes = self.direction_codes[rows]
        durations = self.durations[rows]
        out = {"h2d": 0.0, "d2h": 0.0}
        pool = self._store.direction_pool
        for direction in out:
            code = pool.code_of(direction)
            if code >= 0:
                out[direction] = _seq_sum(durations[codes == code])
        return out

    def elements_by_kind(self, category: str) -> dict[str, int]:
        rows = self.rows_of_category(category)
        kinds = self.kind_codes[rows]
        sizes = self.sizes[rows]
        valid = (kinds >= 0) & (sizes >= 0)
        kinds, sizes = kinds[valid], sizes[valid]
        table = self._store.kind_pool.table
        return {
            table[code]: int(sizes[kinds == code].sum())
            for code in _first_appearance(kinds)
        }

    def instance_count_by_kind(self) -> dict[str, int]:
        rows = self.rows_of_category("compute")
        kinds = self.kind_codes[rows]
        kinds = kinds[kinds >= 0]
        table = self._store.kind_pool.table
        return {
            table[code]: int((kinds == code).sum())
            for code in _first_appearance(kinds)
        }

    def ratio_by_kernel(self, category: str) -> dict[str, dict[str, int]]:
        rows = self.rows_of_category(category)
        kernels = self.kernel_codes[rows]
        kinds = self.kind_codes[rows]
        sizes = self.sizes[rows]
        valid = (kernels >= 0) & (kinds >= 0) & (sizes >= 0)
        kernels, kinds, sizes = kernels[valid], kinds[valid], sizes[valid]
        kernel_table = self._store.kernel_pool.table
        kind_table = self._store.kind_pool.table
        out: dict[str, dict[str, int]] = {}
        for kcode in _first_appearance(kernels):
            sel = kernels == kcode
            sel_kinds, sel_sizes = kinds[sel], sizes[sel]
            out[kernel_table[kcode]] = {
                kind_table[code]: int(sel_sizes[sel_kinds == code].sum())
                for code in _first_appearance(sel_kinds)
            }
        return out

    # -- interval analytics ----------------------------------------------

    def compute_device_intervals(self):
        """Merged compute intervals per device group, or ``None`` if < 2.

        The grouping key is ``meta["device"]`` when present, else the
        resource id.  Devices sharing a grouping *string* must land in
        one group even when the string reaches them through different
        intern pools (a ``device`` tag on one row, a bare resource id on
        another), so the per-row composite codes are canonicalized
        through a small string map before grouping.
        """
        np = _np
        rows = self.rows_of_category("compute")
        if rows.size == 0:
            return None
        device_codes = self.device_codes[rows]
        resource_codes = self.resource_codes[rows]
        device_table = self._store.device_pool.table
        resource_table = self._store.resource_pool.table
        # composite code space: device pool entries >= 0, resource
        # fallbacks mapped below -1
        composite = np.where(device_codes >= 0, device_codes,
                             -resource_codes - 1)
        group_of: dict[int, int] = {}
        group_ids: dict[str, int] = {}
        for code in dict.fromkeys(composite.tolist()):  # appearance order
            name = (
                device_table[code] if code >= 0
                else resource_table[-code - 1]
            )
            group_of[code] = group_ids.setdefault(name, len(group_ids))
        if len(group_ids) < 2:
            return None
        starts = self.starts[rows]
        ends = self.ends[rows]
        groups = np.fromiter(
            (group_of[c] for c in composite.tolist()),
            dtype=np.intp, count=composite.size,
        )
        return [
            self.merged_intervals(starts[groups == gid], ends[groups == gid])
            for gid in range(len(group_ids))
        ]

    def merged_intervals(self, starts, ends):
        """Union of intervals as ``(starts, ends)`` arrays.

        Replicates the scalar merge exactly: sort by ``(start, end)``
        tuples, then fuse any interval whose start does not exceed the
        running maximum end.  All operations are comparisons and maxima —
        no rounding — so the merged endpoints are bit-identical.
        """
        np = _np
        if starts.size == 0:
            return starts, ends
        order = np.lexsort((ends, starts))
        starts, ends = starts[order], ends[order]
        running_end = np.maximum.accumulate(ends)
        new_group = np.empty(starts.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = starts[1:] > running_end[:-1]
        last = np.flatnonzero(
            np.concatenate((new_group[1:], np.array([True])))
        )
        return starts[new_group], running_end[last]

    def overlap_seconds(self, per_device_intervals) -> float:
        """Seconds during which >= 2 devices hold a merged interval.

        ``per_device_intervals`` is a list of ``(starts, ends)`` merged
        interval pairs, one per device.  Runs the same event sweep as the
        scalar path — events sorted by ``(time, delta)``, gap added when
        two or more devices are active — with the accumulation done as a
        sequential ``cumsum`` over the qualifying gaps in time order.
        """
        np = _np
        times = np.concatenate(
            [s for s, _ in per_device_intervals]
            + [e for _, e in per_device_intervals]
        )
        deltas = np.concatenate(
            [np.ones(s.size, dtype=np.int64) for s, _ in per_device_intervals]
            + [-np.ones(e.size, dtype=np.int64) for _, e in per_device_intervals]
        )
        order = np.lexsort((deltas, times))
        times, deltas = times[order], deltas[order]
        active_before = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(deltas)[:-1])
        )
        prev = np.concatenate((np.zeros(1), times[:-1]))
        return _seq_sum((times - prev)[active_before >= 2])
