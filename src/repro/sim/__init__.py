"""Deterministic discrete-event simulation engine.

The runtime replays task execution on the simulated platform through this
engine: compute resources and interconnect channels are serial
:class:`~repro.sim.resources.SimResource` objects, the
:class:`~repro.sim.engine.Simulator` advances virtual time through an event
heap, and every occupation of a resource is appended as one row of the
columnar :class:`~repro.sim.tracestore.TraceStore` for later analysis
(partitioning ratios, Gantt charts, transfer accounting).  Analysis runs
vectorized over the store's array-backed columns when numpy is available
(:mod:`repro.sim._vec`) and falls back to bit-identical pure-Python
column scans when it is not; :class:`~repro.sim.trace.TraceRecord` rows
are materialized only on demand, for compatibility.

Two interchangeable engines exist: the slot-dispatched
:class:`~repro.sim.fast_engine.FastSimulator` (the default — tuple
events dispatched on an integer kind inside an inlined run loop) and the
closure-per-event oracle :class:`~repro.sim.engine.Simulator` it is
differentially tested against (``REPRO_NO_FAST_ENGINE=1`` selects the
oracle; :func:`~repro.sim.fast_engine.make_simulator` honors the flag).
Either engine produces byte-identical run artifacts.
"""

from repro.sim.analysis import (
    ResourceStats,
    TraceStats,
    analyze_trace,
    compute_overlap_fraction,
    format_stats,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.fast_engine import (
    FastEvent,
    FastSimulator,
    fast_engine_enabled,
    make_simulator,
)
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace, TraceRecord, render_gantt
from repro.sim.tracestore import TraceStore

__all__ = [
    "ResourceStats",
    "TraceStats",
    "analyze_trace",
    "compute_overlap_fraction",
    "format_stats",
    "Simulator",
    "Event",
    "FastSimulator",
    "FastEvent",
    "fast_engine_enabled",
    "make_simulator",
    "SimResource",
    "ExecutionTrace",
    "TraceRecord",
    "TraceStore",
    "render_gantt",
]
