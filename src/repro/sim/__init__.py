"""Deterministic discrete-event simulation engine.

The runtime replays task execution on the simulated platform through this
engine: compute resources and interconnect channels are serial
:class:`~repro.sim.resources.SimResource` objects, the
:class:`~repro.sim.engine.Simulator` advances virtual time through an event
heap, and every occupation of a resource is appended as one row of the
columnar :class:`~repro.sim.tracestore.TraceStore` for later analysis
(partitioning ratios, Gantt charts, transfer accounting).  Analysis runs
vectorized over the store's array-backed columns when numpy is available
(:mod:`repro.sim._vec`) and falls back to bit-identical pure-Python
column scans when it is not; :class:`~repro.sim.trace.TraceRecord` rows
are materialized only on demand, for compatibility.
"""

from repro.sim.analysis import (
    ResourceStats,
    TraceStats,
    analyze_trace,
    compute_overlap_fraction,
    format_stats,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace, TraceRecord, render_gantt
from repro.sim.tracestore import TraceStore

__all__ = [
    "ResourceStats",
    "TraceStats",
    "analyze_trace",
    "compute_overlap_fraction",
    "format_stats",
    "Simulator",
    "Event",
    "SimResource",
    "ExecutionTrace",
    "TraceRecord",
    "TraceStore",
    "render_gantt",
]
