"""Deterministic discrete-event simulation engine.

The runtime replays task execution on the simulated platform through this
engine: compute resources and interconnect channels are serial
:class:`~repro.sim.resources.SimResource` objects, the
:class:`~repro.sim.engine.Simulator` advances virtual time through an event
heap, and every occupation of a resource is recorded as a
:class:`~repro.sim.trace.TraceRecord` for later analysis (partitioning
ratios, Gantt charts, transfer accounting).
"""

from repro.sim.analysis import (
    ResourceStats,
    TraceStats,
    analyze_trace,
    compute_overlap_fraction,
    format_stats,
)
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import SimResource
from repro.sim.trace import ExecutionTrace, TraceRecord, render_gantt
from repro.sim.tracestore import TraceStore

__all__ = [
    "ResourceStats",
    "TraceStats",
    "analyze_trace",
    "compute_overlap_fraction",
    "format_stats",
    "Simulator",
    "Event",
    "SimResource",
    "ExecutionTrace",
    "TraceRecord",
    "TraceStore",
    "render_gantt",
]
