"""Columnar trace storage: the simulator's flight recorder, indexed.

The original :class:`~repro.sim.trace.ExecutionTrace` kept a Python list
of :class:`~repro.sim.trace.TraceRecord` dataclasses and answered every
query — ``by_resource``, ``busy_time``, ``elements_by_device`` — with a
fresh linear scan over it.  That is fine for a few hundred records and
ruinous for the 100k+-record traces a full-size STREAM-Loop sweep emits:
the harness derives half a dozen numbers per run, so each run paid six
full scans plus one dataclass allocation per occupation on the simulation
hot path.

:class:`TraceStore` keeps the same information as parallel columns
(``resource_ids``/``categories``/``starts``/``ends``/``labels`` plus a
meta-index column pointing into a side table of metadata dicts) and builds
per-resource and per-category row indexes *once*, lazily, on first query.
Appends are O(1) list pushes with no per-record object; grouped queries
are a dict lookup plus a walk over exactly the matching rows.  Derived
aggregates preserve the accumulation order of the original filtered scans
(insertion order per group), so every float computed from a store is
bit-identical to the record-scan path — the differential suite in
``tests/sim/test_tracestore.py`` and
``tests/integration/test_artifact_differential.py`` enforces this.

:class:`~repro.sim.trace.ExecutionTrace` remains as a thin compatibility
facade over a store, materializing :class:`TraceRecord` rows on demand.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

#: shared empty metadata mapping (row meta index -1 points here)
_NO_META: dict[str, Any] = {}


class TraceStore:
    """Append-only columnar store of resource occupations.

    Columns are plain Python lists kept in insertion order; ``metas`` is a
    side table holding only the rows that actually carry metadata (the
    ``meta_idx`` column is ``-1`` for rows without).  Group indexes map a
    resource id / category tag to the sorted list of row numbers carrying
    it; they are built lazily and extended incrementally, so interleaving
    appends and queries never rescans the whole store.
    """

    __slots__ = (
        "resource_ids",
        "labels",
        "categories",
        "starts",
        "ends",
        "meta_idx",
        "metas",
        "_by_resource",
        "_by_category",
        "_indexed_rows",
        "_max_end",
    )

    def __init__(self) -> None:
        self.resource_ids: list[str] = []
        self.labels: list[str] = []
        self.categories: list[str] = []
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.meta_idx: list[int] = []
        self.metas: list[dict[str, Any]] = []
        self._by_resource: dict[str, list[int]] = {}
        self._by_category: dict[str, list[int]] = {}
        self._indexed_rows = 0
        self._max_end = 0.0

    # -- writing ---------------------------------------------------------

    def record(
        self,
        resource_id: str,
        label: str,
        category: str,
        start: float,
        end: float,
        meta: Mapping[str, Any] | None = None,
    ) -> int:
        """Append one occupation; returns its row number."""
        row = len(self.starts)
        self.resource_ids.append(resource_id)
        self.labels.append(label)
        self.categories.append(category)
        self.starts.append(start)
        self.ends.append(end)
        if meta:
            self.meta_idx.append(len(self.metas))
            self.metas.append(dict(meta))
        else:
            self.meta_idx.append(-1)
        if end > self._max_end:
            self._max_end = end
        return row

    # -- indexes ---------------------------------------------------------

    def _ensure_indexes(self) -> None:
        """Extend the group indexes to cover rows appended since last use."""
        start = self._indexed_rows
        total = len(self.starts)
        if start == total:
            return
        by_resource = self._by_resource
        by_category = self._by_category
        resource_ids = self.resource_ids
        categories = self.categories
        for row in range(start, total):
            rows = by_resource.get(resource_ids[row])
            if rows is None:
                by_resource[resource_ids[row]] = [row]
            else:
                rows.append(row)
            rows = by_category.get(categories[row])
            if rows is None:
                by_category[categories[row]] = [row]
            else:
                rows.append(row)
        self._indexed_rows = total

    def rows_by_resource(self, resource_id: str) -> list[int]:
        """Row numbers on ``resource_id``, in insertion order."""
        self._ensure_indexes()
        return self._by_resource.get(resource_id, [])

    def rows_by_category(self, category: str) -> list[int]:
        """Row numbers tagged ``category``, in insertion order."""
        self._ensure_indexes()
        return self._by_category.get(category, [])

    def resource_ids_seen(self) -> list[str]:
        """Distinct resource ids in first-appearance order."""
        self._ensure_indexes()
        return list(self._by_resource)

    def categories_seen(self) -> list[str]:
        """Distinct category tags in first-appearance order."""
        self._ensure_indexes()
        return list(self._by_category)

    # -- row access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.starts)

    def meta_at(self, row: int) -> dict[str, Any]:
        """Metadata dict of ``row`` (a shared empty dict when absent)."""
        idx = self.meta_idx[row]
        return self.metas[idx] if idx >= 0 else _NO_META

    def duration_at(self, row: int) -> float:
        return self.ends[row] - self.starts[row]

    # -- aggregate queries ----------------------------------------------
    #
    # Accumulation order matters: each aggregate adds its floats in the
    # same (insertion) order the old filtered record scans did, so the
    # results are bit-identical to the pre-columnar path.

    def makespan(self) -> float:
        """Latest end time across all rows (0.0 for an empty store)."""
        return self._max_end if self.starts else 0.0

    def busy_time(self, resource_id: str, *, category: str | None = None) -> float:
        """Total occupied seconds on a resource, optionally per category."""
        starts, ends, categories = self.starts, self.ends, self.categories
        total = 0.0
        for row in self.rows_by_resource(resource_id):
            if category is None or categories[row] == category:
                total += ends[row] - starts[row]
        return total

    def total_time(self, *, category: str) -> float:
        """Total occupied seconds across all resources for a category."""
        starts, ends = self.starts, self.ends
        total = 0.0
        for row in self.rows_by_category(category):
            total += ends[row] - starts[row]
        return total

    def elements_by_device(
        self, *, category: str = "compute", key: str = "device_kind"
    ) -> dict[str, int]:
        """Sum the ``size`` metadata of ``category`` rows grouped by ``key``."""
        out: dict[str, int] = {}
        for row in self.rows_by_category(category):
            meta = self.meta_at(row)
            group = meta.get(key)
            size = meta.get("size")
            if group is None or size is None:
                continue
            group = str(group)
            out[group] = out.get(group, 0) + int(size)
        return out

    def instance_count_by_device(self, *, key: str = "device_kind") -> dict[str, int]:
        """Number of compute rows per device group."""
        out: dict[str, int] = {}
        for row in self.rows_by_category("compute"):
            meta = self.meta_at(row)
            if key in meta:
                group = str(meta[key])
                out[group] = out.get(group, 0) + 1
        return out

    def ratio_by_kernel(self, *, category: str = "compute") -> dict[str, dict[str, int]]:
        """Kernel name -> device kind -> indices (per-kernel split ratios)."""
        out: dict[str, dict[str, int]] = {}
        for row in self.rows_by_category(category):
            meta = self.meta_at(row)
            kernel = meta.get("kernel")
            kind = meta.get("device_kind")
            size = meta.get("size")
            if kernel is None or kind is None or size is None:
                continue
            per_kind = out.setdefault(str(kernel), {})
            kind = str(kind)
            per_kind[kind] = per_kind.get(kind, 0) + int(size)
        return out

    def busy_by_resource(self) -> dict[str, dict[str, float]]:
        """Resource id -> category -> occupied seconds.

        Per (resource, category) pair the durations accumulate in
        insertion order, matching a filtered scan of the records.
        """
        out: dict[str, dict[str, float]] = {}
        starts, ends, categories = self.starts, self.ends, self.categories
        for rid in self.resource_ids_seen():
            per_cat: dict[str, float] = {}
            for row in self.rows_by_resource(rid):
                cat = categories[row]
                per_cat[cat] = per_cat.get(cat, 0.0) + (ends[row] - starts[row])
            out[rid] = per_cat
        return out

    def transfer_time_by_direction(self) -> dict[str, float]:
        """Link-busy seconds per transfer direction ("h2d"/"d2h").

        Matches the old per-direction filtered scans: both directions are
        accumulated in insertion order over the transfer rows.
        """
        starts, ends = self.starts, self.ends
        out = {"h2d": 0.0, "d2h": 0.0}
        for row in self.rows_by_category("transfer"):
            direction = self.meta_at(row).get("direction")
            if direction in out:
                out[direction] += ends[row] - starts[row]
        return out

    def iter_rows(self) -> Iterator[int]:
        return iter(range(len(self.starts)))
