"""Columnar trace storage: the simulator's flight recorder, indexed.

The original :class:`~repro.sim.trace.ExecutionTrace` kept a Python list
of :class:`~repro.sim.trace.TraceRecord` dataclasses and answered every
query — ``by_resource``, ``busy_time``, ``elements_by_device`` — with a
fresh linear scan over it.  PR 2 made the storage columnar but kept the
columns as Python lists of boxed floats and strings.

:class:`TraceStore` now keeps the numeric columns in ``array`` buffers
(``starts``/``ends`` as ``array('d')``, the ``size`` metadata as
``array('q')``) and **interns** every string column (resource ids,
categories, labels, plus the hot metadata keys ``device_kind``,
``kernel``, ``device``, ``direction``) as small-int code columns over a
:class:`_StringPool` side table — one machine word per row instead of a
boxed object, roughly a 4x shrink of full-detail traces.  Appends are
O(1) array pushes with no per-record object; per-resource and
per-category row indexes are built lazily and extended incrementally.

Display labels are additionally **lazily formatted**: producers may pass
``(template, *args)`` instead of a pre-built string, and the store packs
the template code plus up to one string and three integer arguments into
fixed-width columns — per-row-unique labels like ``"copy[0:512)#3"``
never hit the intern pool unless someone actually materializes the row
(:meth:`TraceStore.label_at` formats on demand; the formatted text is
identical to the old eager f-strings).

Ingestion has three entry points, fastest last:

* :meth:`TraceStore.record` — one row per call, full generality (the
  original API).  ``own_meta=True`` lets a caller that hands over a
  throwaway metadata dict skip the defensive ``dict(meta)`` copy.
* :meth:`TraceStore.record_batch` — a homogeneous *run* of rows for one
  ``(resource, category)`` stream in one call: the resource and category
  codes are resolved once, the numeric columns are extended in blocks,
  and only labels/metadata are handled per row.  Byte-identical to the
  equivalent sequence of :meth:`record` calls (enforced by
  ``tests/sim/test_trace_ingestion.py``).
* :meth:`TraceStore.lane` — a persistent :class:`TraceLane` staging
  buffer for one fully pre-declared stream (resource, category, label
  template, and the constant hot metadata keys are interned *once at
  lane creation*).  Appends go into small parallel ``array`` buffers
  with no interning and no dict traffic; the staged rows are flushed
  into the store's columns in C-speed blocks the first time anything
  reads, pickles, or indexes the store.  Staged rows are therefore
  *deferred*: they take their row numbers at flush time (lane
  registration order), not append time — identical under every engine
  and backend, which is what keeps cross-engine artifact pickles
  byte-identical.

Aggregate queries run in one of two observationally identical ways:

* the **pure-Python path** walks exactly the matching rows and
  accumulates floats in insertion order per group — the same order the
  original filtered record scans used;
* the **vectorized path** (:mod:`repro.sim._vec`, used automatically
  when numpy is importable, the store holds at least
  ``_vec.VEC_MIN_ROWS`` rows, and ``REPRO_NO_NUMPY`` is unset) converts
  the sealed columns to ndarrays once and answers every aggregate with
  array operations whose accumulation is bit-identical to the Python
  loop (see the contract notes in ``_vec.py``).

Either way every float computed from a store is bit-identical to the
original record-scan path — the differential suites in
``tests/sim/test_tracestore.py``, ``tests/sim/test_vec.py``,
``tests/property/test_trace_analytics_properties.py`` and
``tests/integration/test_artifact_differential.py`` enforce this.

Metadata fidelity: the full metadata dict of each row is still kept in
the ``metas`` side table (``meta_at`` returns it unchanged); the hot keys
are *additionally* extracted into columns at append time so the analytics
never have to touch the dicts.  A hot-key value of ``None`` is treated as
absent.  ``meta["device"]`` distinguishes absent (falls back to the
resource id in device grouping) from any present value, which is
stringified.

:class:`~repro.sim.trace.ExecutionTrace` remains as a thin compatibility
facade over a store, materializing :class:`TraceRecord` rows on demand.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Mapping

from repro.sim import _vec

#: shared empty metadata mapping (row meta index -1 points here)
_NO_META: dict[str, Any] = {}

#: distinguishes "key absent" from "key present with value None"
_MISSING = object()


class _StringPool:
    """Interns strings as dense small-int codes over a side table."""

    __slots__ = ("table", "_code")

    def __init__(self) -> None:
        #: code -> string, in first-intern order
        self.table: list[str] = []
        self._code: dict[str, int] = {}

    def intern(self, value: str) -> int:
        """The code of ``value``, assigning the next one on first sight."""
        code = self._code.get(value)
        if code is None:
            code = self._code[value] = len(self.table)
            self.table.append(value)
        return code

    def code_of(self, value: str) -> int:
        """The code of ``value``, or -1 when it was never interned."""
        return self._code.get(value, -1)

    def __len__(self) -> int:
        return len(self.table)


def _const_i(code: int, k: int) -> array:
    """``k`` copies of ``code`` as an ``array('i')`` (C-level repeat)."""
    return array("i", (code,)) * k


def _const_q(value: int, k: int) -> array:
    """``k`` copies of ``value`` as an ``array('q')`` (C-level repeat)."""
    return array("q", (value,)) * k


class TraceLane:
    """Staged columnar intake for one pre-declared occupation stream.

    A lane is created once per homogeneous ``(resource, category)``
    stream via :meth:`TraceStore.lane`; the resource id, category, label
    template, and the constant hot metadata columns (``device_kind``,
    ``device``, ``direction``) are interned exactly once, at creation.
    :meth:`append` then costs a handful of ``array`` pushes per row —
    no interning, no ``dict(meta)`` copy, no per-row branching on the
    metadata shape — and :meth:`extend_block` ingests a whole
    precomputed completion block with ``array.extend``/``frombytes``
    bulk copies.

    Contract (checked by the differential ingestion suite, not per
    append): label ``args`` are at most one leading ``str`` plus up to
    three true ``int`` s matching the declared template; ``meta`` dicts
    are **owned** by the store once appended (never mutated by the
    caller afterwards) and any hot keys they carry must agree with the
    lane's declared constants and the explicit ``size``/``kernel``
    arguments.  The runtime executor and the replay benches satisfy
    this by construction.

    Staged rows become real store rows — in lane registration order —
    the first time the store is read, indexed, or pickled; see
    ``TraceStore._flush_lanes``.
    """

    __slots__ = (
        "_store",
        "resource_id",
        "category",
        # constants interned at creation
        "_resource_code",
        "_category_code",
        "_tmpl_code",
        "_kind_code",
        "_device_code",
        "_direction_code",
        # staged per-row columns
        "starts",
        "ends",
        "str_codes",
        "arg_a",
        "arg_b",
        "arg_c",
        "sizes",
        "kernel_codes",
        "metas",
        "meta_count",
        "max_end",
        # bound intern methods (one attribute load per varying string)
        "_intern_arg",
        "_intern_kernel",
    )

    def __init__(
        self,
        store: "TraceStore",
        resource_id: str,
        category: str,
        template: str,
        *,
        device_kind: str | None = None,
        device: Any = _MISSING,
        direction: str | None = None,
    ) -> None:
        self._store = store
        self.resource_id = resource_id
        self.category = category
        self._resource_code = store.resource_pool.intern(resource_id)
        self._category_code = store.category_pool.intern(category)
        self._tmpl_code = store.label_tmpl_pool.intern(template)
        self._kind_code = (
            -1 if device_kind is None
            else store.kind_pool.intern(str(device_kind))
        )
        self._device_code = (
            -1 if device is _MISSING else store.device_pool.intern(str(device))
        )
        self._direction_code = (
            store.direction_pool.intern(direction)
            if isinstance(direction, str) else -1
        )
        self._intern_arg = store.label_arg_pool.intern
        self._intern_kernel = store.kernel_pool.intern
        self.starts = array("d")
        self.ends = array("d")
        self.str_codes = array("i")
        self.arg_a = array("q")
        self.arg_b = array("q")
        self.arg_c = array("q")
        self.sizes = array("q")
        self.kernel_codes = array("i")
        self.metas: list[dict[str, Any] | None] = []
        self.meta_count = 0
        self.max_end = 0.0

    def __len__(self) -> int:
        """Rows currently staged (not yet flushed into the store)."""
        return len(self.starts)

    # -- writing ---------------------------------------------------------

    def append(
        self,
        start: float,
        end: float,
        args: tuple = (),
        size: int = -1,
        kernel: str | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        """Stage one occupation row.

        ``args`` are the varying label arguments for the lane's template
        (an optional leading string plus up to three ints); ``size`` and
        ``kernel`` feed the hot metadata columns directly; ``meta`` is
        the row's full metadata dict, owned by the store from here on.
        """
        self.starts.append(start)
        self.ends.append(end)
        if args and type(args[0]) is str:
            self.str_codes.append(self._intern_arg(args[0]))
            ints = args[1:]
        else:
            self.str_codes.append(-1)
            ints = args
        n = len(ints)
        self.arg_a.append(ints[0] if n else 0)
        self.arg_b.append(ints[1] if n > 1 else 0)
        self.arg_c.append(ints[2] if n > 2 else 0)
        self.sizes.append(size)
        self.kernel_codes.append(
            -1 if kernel is None else self._intern_kernel(kernel)
        )
        if meta:
            self.metas.append(meta)
            self.meta_count += 1
        else:
            self.metas.append(None)
        if end > self.max_end:
            self.max_end = end

    def extend_block(
        self,
        bounds,
        str_arg: str | None = None,
        args=None,
        metas: list[dict[str, Any]] | None = None,
    ) -> None:
        """Stage a whole completion block in bulk.

        ``bounds`` holds ``k + 1`` cumulative times — row ``i`` spans
        ``bounds[i]`` to ``bounds[i + 1]`` (the cumsum layout
        :func:`repro.sim._vec.lane_bounds` produces).  ``str_arg`` is a
        constant string label argument for every row; ``args`` an
        optional length-``k`` int sequence feeding the first int label
        slot; ``metas`` an optional length-``k`` list of owned per-row
        dicts (all rows carry one, or none do).
        """
        k = len(bounds) - 1
        if k <= 0:
            return
        if isinstance(bounds, array):
            self.starts.extend(bounds[:-1])
            self.ends.extend(bounds[1:])
        else:  # ndarray from the vectorized path: raw memcpy
            self.starts.frombytes(bounds[:-1].tobytes())
            self.ends.frombytes(bounds[1:].tobytes())
        code = -1 if str_arg is None else self._intern_arg(str_arg)
        self.str_codes.extend(_const_i(code, k))
        if args is None:
            self.arg_a.extend(_const_q(0, k))
        else:
            if not isinstance(args, array):
                args = array("q", args)
            if len(args) != k:
                raise ValueError(
                    f"extend_block: {len(args)} args for {k} rows"
                )
            self.arg_a.extend(args)
        self.arg_b.extend(_const_q(0, k))
        self.arg_c.extend(_const_q(0, k))
        self.sizes.extend(_const_q(-1, k))
        self.kernel_codes.extend(_const_i(-1, k))
        if metas is None:
            self.metas.extend([None] * k)
        else:
            if len(metas) != k:
                raise ValueError(
                    f"extend_block: {len(metas)} metas for {k} rows"
                )
            self.metas.extend(metas)
            self.meta_count += len(metas)
        last = float(bounds[-1])
        if last > self.max_end:
            self.max_end = last

    def extend_rows(
        self,
        starts,
        ends,
        *,
        str_args: list[str] | None = None,
        args_a=None,
        args_b=None,
        args_c=None,
        sizes=None,
        kernels: list[str] | None = None,
        metas: list[dict[str, Any] | None] | None = None,
    ) -> None:
        """Stage ``k`` fully heterogeneous rows in bulk.

        Where :meth:`extend_block` ingests a completion run whose rows
        share one string argument and vary only in the first int slot,
        this is the general bulk intake: every label/metadata slot may
        vary per row.  Numeric columns are extended with
        ``array.extend``/``frombytes`` bulk copies; only the genuinely
        varying strings (``str_args``, ``kernels``) pay a per-row intern
        lookup.  A ``None`` sequence fills its column with the same
        defaults :meth:`append` would use (``0`` int args, ``-1`` size,
        no kernel, no meta).  Byte-identical to ``k`` :meth:`append`
        calls with the same payload.
        """
        k = len(starts)
        if k == 0:
            return
        if len(ends) != k:
            raise ValueError(f"extend_rows: {len(ends)} ends for {k} starts")

        def _ext_d(col, values):
            if isinstance(values, array):
                col.extend(values)
            elif type(values).__name__ == "ndarray":
                col.frombytes(values.tobytes())
            else:
                col.extend(values)

        def _ext_q(col, values, default):
            if values is None:
                col.extend(_const_q(default, k))
                return
            if len(values) != k:
                raise ValueError(
                    f"extend_rows: {len(values)} values for {k} rows"
                )
            if isinstance(values, array) and values.typecode == "q":
                col.extend(values)
            else:
                col.extend(array("q", values))

        _ext_d(self.starts, starts)
        _ext_d(self.ends, ends)
        if str_args is None:
            self.str_codes.extend(_const_i(-1, k))
        else:
            if len(str_args) != k:
                raise ValueError(
                    f"extend_rows: {len(str_args)} str_args for {k} rows"
                )
            intern = self._intern_arg
            self.str_codes.extend(
                array("i", [intern(s) for s in str_args])
            )
        _ext_q(self.arg_a, args_a, 0)
        _ext_q(self.arg_b, args_b, 0)
        _ext_q(self.arg_c, args_c, 0)
        _ext_q(self.sizes, sizes, -1)
        if kernels is None:
            self.kernel_codes.extend(_const_i(-1, k))
        else:
            if len(kernels) != k:
                raise ValueError(
                    f"extend_rows: {len(kernels)} kernels for {k} rows"
                )
            intern = self._intern_kernel
            self.kernel_codes.extend(
                array("i", [-1 if s is None else intern(s) for s in kernels])
            )
        if metas is None:
            self.metas.extend([None] * k)
        else:
            if len(metas) != k:
                raise ValueError(
                    f"extend_rows: {len(metas)} metas for {k} rows"
                )
            self.metas.extend(metas)
            self.meta_count += sum(1 for m in metas if m)
        last = float(max(ends))
        if last > self.max_end:
            self.max_end = last

    # -- flushing --------------------------------------------------------

    def _flush(self) -> None:
        """Move the staged rows into the store's columns (bulk extends)."""
        k = len(self.starts)
        if not k:
            return
        store = self._store
        store.starts.extend(self.starts)
        store.ends.extend(self.ends)
        store.resource_codes.extend(_const_i(self._resource_code, k))
        store.label_codes.extend(_const_i(-1, k))
        store.category_codes.extend(_const_i(self._category_code, k))
        store.kind_codes.extend(_const_i(self._kind_code, k))
        store.kernel_codes.extend(self.kernel_codes)
        store.device_codes.extend(_const_i(self._device_code, k))
        store.direction_codes.extend(_const_i(self._direction_code, k))
        store.label_tmpl_codes.extend(_const_i(self._tmpl_code, k))
        store.label_arg_strs.extend(self.str_codes)
        store.label_arg_a.extend(self.arg_a)
        store.label_arg_b.extend(self.arg_b)
        store.label_arg_c.extend(self.arg_c)
        store.sizes.extend(self.sizes)
        metas = self.metas
        if self.meta_count == 0:
            store.meta_idx.extend(_const_q(-1, k))
        elif self.meta_count == k:
            first = len(store.metas)
            store.meta_idx.extend(array("q", range(first, first + k)))
            store.metas.extend(metas)
        else:
            meta_idx, store_metas = store.meta_idx, store.metas
            for meta in metas:
                if meta is None:
                    meta_idx.append(-1)
                else:
                    meta_idx.append(len(store_metas))
                    store_metas.append(meta)
        if self.max_end > store._max_end:
            store._max_end = self.max_end
        self.starts = array("d")
        self.ends = array("d")
        self.str_codes = array("i")
        self.arg_a = array("q")
        self.arg_b = array("q")
        self.arg_c = array("q")
        self.sizes = array("q")
        self.kernel_codes = array("i")
        self.metas = []
        self.meta_count = 0
        self.max_end = 0.0


class TraceStore:
    """Append-only columnar store of resource occupations.

    Numeric columns are ``array`` buffers; string columns are int code
    columns over per-column :class:`_StringPool` tables; ``metas`` is a
    side table holding only the rows that actually carry metadata (the
    ``meta_idx`` column is ``-1`` for rows without).  Group indexes map a
    resource id / category tag to the list of row numbers carrying it;
    they are built lazily and extended incrementally, so interleaving
    appends and queries never rescans the whole store.
    """

    __slots__ = (
        # numeric columns
        "starts",
        "ends",
        "meta_idx",
        "sizes",
        # interned string columns (codes into the pools below; -1 = absent)
        "resource_codes",
        "label_codes",
        "category_codes",
        "kind_codes",
        "kernel_codes",
        "device_codes",
        "direction_codes",
        # packed lazy-label columns (used when label_codes[row] == -1)
        "label_tmpl_codes",
        "label_arg_strs",
        "label_arg_a",
        "label_arg_b",
        "label_arg_c",
        # intern side tables
        "resource_pool",
        "label_pool",
        "category_pool",
        "kind_pool",
        "kernel_pool",
        "device_pool",
        "direction_pool",
        "label_tmpl_pool",
        "label_arg_pool",
        # metadata side table
        "metas",
        # staging lanes (flushed lazily, in registration order)
        "_lanes",
        # lazy state
        "_by_resource",
        "_by_category",
        "_indexed_rows",
        "_max_end",
        "_vec_view",
    )

    def __init__(self) -> None:
        self.starts = array("d")
        self.ends = array("d")
        self.meta_idx = array("q")
        self.sizes = array("q")
        self.resource_codes = array("i")
        self.label_codes = array("i")
        self.category_codes = array("i")
        self.kind_codes = array("i")
        self.kernel_codes = array("i")
        self.device_codes = array("i")
        self.direction_codes = array("i")
        self.label_tmpl_codes = array("i")
        self.label_arg_strs = array("i")
        self.label_arg_a = array("q")
        self.label_arg_b = array("q")
        self.label_arg_c = array("q")
        self.resource_pool = _StringPool()
        self.label_pool = _StringPool()
        self.category_pool = _StringPool()
        self.kind_pool = _StringPool()
        self.kernel_pool = _StringPool()
        self.device_pool = _StringPool()
        self.direction_pool = _StringPool()
        self.label_tmpl_pool = _StringPool()
        self.label_arg_pool = _StringPool()
        self.metas: list[dict[str, Any]] = []
        self._lanes: list[TraceLane] = []
        self._by_resource: dict[str, list[int]] = {}
        self._by_category: dict[str, list[int]] = {}
        self._indexed_rows = 0
        self._max_end = 0.0
        self._vec_view = None

    # -- staging lanes ---------------------------------------------------

    def lane(
        self,
        resource_id: str,
        category: str,
        template: str,
        *,
        device_kind: str | None = None,
        device: Any = _MISSING,
        direction: str | None = None,
    ) -> TraceLane:
        """Open a staged ingestion lane for one pre-declared stream.

        All lane-constant codes (resource, category, label template, and
        the constant hot metadata columns) are interned here, once;
        :meth:`TraceLane.append` never touches an intern table except
        for genuinely varying strings.  Staged rows land in the store —
        in lane registration order — the first time it is read, indexed,
        or pickled.
        """
        lane = TraceLane(
            self, resource_id, category, template,
            device_kind=device_kind, device=device, direction=direction,
        )
        self._lanes.append(lane)
        return lane

    def _flush_lanes(self) -> None:
        """Flush every staged lane row into the columns (idempotent)."""
        for lane in self._lanes:
            lane._flush()

    def _ensure_flushed(self) -> None:
        """Land staged lane rows before any read/index/pickle use."""
        if self._lanes:
            self._flush_lanes()

    def staged_rows(self) -> int:
        """Rows currently staged across all lanes (0 when none open)."""
        return sum(len(lane.starts) for lane in self._lanes)

    # -- writing ---------------------------------------------------------

    def _append_label(self, label: "str | tuple") -> None:
        """Append the label columns for one row.

        A plain string label interns into ``label_pool`` exactly as
        before.  A ``(template, *args)`` tuple is stored *unformatted*
        when it fits the packed shape — at most one leading string
        argument plus up to three integers — so per-row labels like
        ``"copy[0:512)#3"`` cost four small columns instead of a unique
        pooled string each (``label_at`` formats on materialization).
        Tuples that do not fit are formatted eagerly: laziness is an
        optimization, never a constraint on callers.

        Packability is decided on *exact* types: only a leading ``str``
        (not a subclass) may fill the string slot, and the int slots
        accept only true ``int`` s — ``bool`` is an ``int`` subclass
        but formats as ``"True"``/``"False"``, so a bool (or any
        int/str subclass) routes the whole label through the eager
        ``template.format(*args)`` path, which renders every type
        faithfully.  The property suite asserts lazy and eager
        formatting agree for str/int/bool/mixed argument mixes.
        """
        if type(label) is tuple:
            template = label[0]
            args = label[1:]
            str_arg: str | None = None
            ints = args
            if args and type(args[0]) is str:
                str_arg = args[0]
                ints = args[1:]
            if len(ints) <= 3 and all(type(v) is int for v in ints):
                self.label_codes.append(-1)
                self.label_tmpl_codes.append(
                    self.label_tmpl_pool.intern(template)
                )
                self.label_arg_strs.append(
                    -1 if str_arg is None
                    else self.label_arg_pool.intern(str_arg)
                )
                padded = tuple(ints) + (0,) * (3 - len(ints))
                self.label_arg_a.append(padded[0])
                self.label_arg_b.append(padded[1])
                self.label_arg_c.append(padded[2])
                return
            label = template.format(*args)
        self.label_codes.append(self.label_pool.intern(label))
        self.label_tmpl_codes.append(-1)
        self.label_arg_strs.append(-1)
        self.label_arg_a.append(0)
        self.label_arg_b.append(0)
        self.label_arg_c.append(0)

    def record(
        self,
        resource_id: str,
        label: "str | tuple",
        category: str,
        start: float,
        end: float,
        meta: Mapping[str, Any] | None = None,
        own_meta: bool = False,
    ) -> int:
        """Append one occupation; returns its row number.

        ``label`` is a display string, or a lazy ``(template, *args)``
        tuple formatted only when the row is materialized (see
        :meth:`_append_label`).

        ``meta`` is defensively copied by default, so callers may keep
        mutating a shared dict.  A caller handing over a throwaway dict
        it will never touch again passes ``own_meta=True`` and the
        store keeps the dict itself — the executor's per-occupation
        metadata takes this path.  Pickles are identical either way
        (both store one distinct dict per row).
        """
        row = len(self.starts)
        self.starts.append(start)
        self.ends.append(end)
        self.resource_codes.append(self.resource_pool.intern(resource_id))
        self._append_label(label)
        self.category_codes.append(self.category_pool.intern(category))
        if meta:
            self.meta_idx.append(len(self.metas))
            self.metas.append(meta if own_meta else dict(meta))
            size = meta.get("size")
            if size is None:
                self.sizes.append(-1)
            else:
                try:
                    self.sizes.append(int(size))
                except (TypeError, ValueError):
                    self.sizes.append(-1)
            kind = meta.get("device_kind")
            self.kind_codes.append(
                -1 if kind is None else self.kind_pool.intern(str(kind))
            )
            kernel = meta.get("kernel")
            self.kernel_codes.append(
                -1 if kernel is None else self.kernel_pool.intern(str(kernel))
            )
            device = meta.get("device", _MISSING)
            self.device_codes.append(
                -1 if device is _MISSING
                else self.device_pool.intern(str(device))
            )
            direction = meta.get("direction")
            self.direction_codes.append(
                self.direction_pool.intern(direction)
                if isinstance(direction, str) else -1
            )
        else:
            self.meta_idx.append(-1)
            self.sizes.append(-1)
            self.kind_codes.append(-1)
            self.kernel_codes.append(-1)
            self.device_codes.append(-1)
            self.direction_codes.append(-1)
        if end > self._max_end:
            self._max_end = end
        return row

    def record_batch(
        self,
        resource_id: str,
        category: str,
        starts,
        ends,
        labels,
        metas=None,
        *,
        own_meta: bool = False,
    ) -> range:
        """Append a homogeneous run of rows in one call; returns its rows.

        Equivalent — byte-for-byte, pickle included — to calling
        :meth:`record` once per row with the same ``resource_id`` and
        ``category``, but the resource and category codes are resolved
        once and the numeric columns are extended in C-speed blocks;
        only labels and metadata are still handled per row (with full
        :meth:`record` fidelity, hot-key extraction included).

        ``starts``/``ends`` are float sequences, ``labels`` a sequence
        of display strings or lazy ``(template, *args)`` tuples, and
        ``metas`` ``None`` (no row carries metadata) or a per-row
        sequence of dicts/``None``.  ``own_meta`` has :meth:`record`'s
        meaning, applied to every dict in ``metas``.
        """
        k = len(starts)
        if len(ends) != k or len(labels) != k:
            raise ValueError(
                f"record_batch: column lengths differ "
                f"({k} starts, {len(ends)} ends, {len(labels)} labels)"
            )
        if metas is not None and len(metas) != k:
            raise ValueError(
                f"record_batch: {len(metas)} metas for {k} rows"
            )
        row0 = len(self.starts)
        if not k:
            return range(row0, row0)
        if not isinstance(starts, array):
            starts = array("d", starts)
        if not isinstance(ends, array):
            ends = array("d", ends)
        self.starts.extend(starts)
        self.ends.extend(ends)
        self.resource_codes.extend(
            _const_i(self.resource_pool.intern(resource_id), k)
        )
        self.category_codes.extend(
            _const_i(self.category_pool.intern(category), k)
        )
        append_label = self._append_label
        for label in labels:
            append_label(label)
        if metas is None:
            self.meta_idx.extend(_const_q(-1, k))
            self.sizes.extend(_const_q(-1, k))
            self.kind_codes.extend(_const_i(-1, k))
            self.kernel_codes.extend(_const_i(-1, k))
            self.device_codes.extend(_const_i(-1, k))
            self.direction_codes.extend(_const_i(-1, k))
        else:
            # per-row metadata handling, kept operation-for-operation
            # identical to record()'s branch (same per-pool intern order)
            for meta in metas:
                if meta:
                    self.meta_idx.append(len(self.metas))
                    self.metas.append(meta if own_meta else dict(meta))
                    size = meta.get("size")
                    if size is None:
                        self.sizes.append(-1)
                    else:
                        try:
                            self.sizes.append(int(size))
                        except (TypeError, ValueError):
                            self.sizes.append(-1)
                    kind = meta.get("device_kind")
                    self.kind_codes.append(
                        -1 if kind is None
                        else self.kind_pool.intern(str(kind))
                    )
                    kernel = meta.get("kernel")
                    self.kernel_codes.append(
                        -1 if kernel is None
                        else self.kernel_pool.intern(str(kernel))
                    )
                    device = meta.get("device", _MISSING)
                    self.device_codes.append(
                        -1 if device is _MISSING
                        else self.device_pool.intern(str(device))
                    )
                    direction = meta.get("direction")
                    self.direction_codes.append(
                        self.direction_pool.intern(direction)
                        if isinstance(direction, str) else -1
                    )
                else:
                    self.meta_idx.append(-1)
                    self.sizes.append(-1)
                    self.kind_codes.append(-1)
                    self.kernel_codes.append(-1)
                    self.device_codes.append(-1)
                    self.direction_codes.append(-1)
        last = max(ends)
        if last > self._max_end:
            self._max_end = last
        return range(row0, row0 + k)

    # -- pickling --------------------------------------------------------
    #
    # Only the columns, pools and metadata travel; group indexes and the
    # vectorized view are caches that rebuild lazily on first query.

    def __getstate__(self):
        self._ensure_flushed()
        return (
            self.starts, self.ends, self.meta_idx, self.sizes,
            self.resource_codes, self.label_codes, self.category_codes,
            self.kind_codes, self.kernel_codes, self.device_codes,
            self.direction_codes,
            self.label_tmpl_codes, self.label_arg_strs,
            self.label_arg_a, self.label_arg_b, self.label_arg_c,
            self.resource_pool, self.label_pool, self.category_pool,
            self.kind_pool, self.kernel_pool, self.device_pool,
            self.direction_pool,
            self.label_tmpl_pool, self.label_arg_pool,
            self.metas, self._max_end,
        )

    def __setstate__(self, state) -> None:
        (
            self.starts, self.ends, self.meta_idx, self.sizes,
            self.resource_codes, self.label_codes, self.category_codes,
            self.kind_codes, self.kernel_codes, self.device_codes,
            self.direction_codes,
            self.label_tmpl_codes, self.label_arg_strs,
            self.label_arg_a, self.label_arg_b, self.label_arg_c,
            self.resource_pool, self.label_pool, self.category_pool,
            self.kind_pool, self.kernel_pool, self.device_pool,
            self.direction_pool,
            self.label_tmpl_pool, self.label_arg_pool,
            self.metas, self._max_end,
        ) = state
        self._lanes = []
        self._by_resource = {}
        self._by_category = {}
        self._indexed_rows = 0
        self._vec_view = None

    # -- indexes ---------------------------------------------------------

    def _ensure_indexes(self) -> None:
        """Extend the group indexes to cover rows appended since last use."""
        self._ensure_flushed()
        start = self._indexed_rows
        total = len(self.starts)
        if start == total:
            return
        by_resource = self._by_resource
        by_category = self._by_category
        resource_codes = self.resource_codes
        category_codes = self.category_codes
        resource_table = self.resource_pool.table
        category_table = self.category_pool.table
        for row in range(start, total):
            rid = resource_table[resource_codes[row]]
            rows = by_resource.get(rid)
            if rows is None:
                by_resource[rid] = [row]
            else:
                rows.append(row)
            cat = category_table[category_codes[row]]
            rows = by_category.get(cat)
            if rows is None:
                by_category[cat] = [row]
            else:
                rows.append(row)
        self._indexed_rows = total

    def rows_by_resource(self, resource_id: str) -> list[int]:
        """Row numbers on ``resource_id``, in insertion order."""
        self._ensure_indexes()
        return self._by_resource.get(resource_id, [])

    def rows_by_category(self, category: str) -> list[int]:
        """Row numbers tagged ``category``, in insertion order."""
        self._ensure_indexes()
        return self._by_category.get(category, [])

    def resource_ids_seen(self) -> list[str]:
        """Distinct resource ids in first-appearance order."""
        self._ensure_indexes()
        return list(self._by_resource)

    def categories_seen(self) -> list[str]:
        """Distinct category tags in first-appearance order."""
        self._ensure_indexes()
        return list(self._by_category)

    # -- vectorized view -------------------------------------------------

    def vec_view(self, *, force: bool = False):
        """The numpy view of this store, or ``None`` on the Python path.

        Built once per sealed row count and cached; appending invalidates
        it (checked by row count).  ``force=True`` builds a view even for
        tiny stores (differential tests); it still returns ``None`` when
        numpy is unavailable or disabled.
        """
        self._ensure_flushed()
        if not _vec.enabled():
            return None
        n = len(self.starts)
        if not force and n < _vec.VEC_MIN_ROWS:
            return None
        view = self._vec_view
        if view is not None and view.n == n:
            return view
        view = self._vec_view = _vec.VecView(self)
        return view

    # -- row access ------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_flushed()
        return len(self.starts)

    def resource_id_at(self, row: int) -> str:
        self._ensure_flushed()
        return self.resource_pool.table[self.resource_codes[row]]

    def label_at(self, row: int) -> str:
        """The display label of ``row`` (packed labels format here)."""
        self._ensure_flushed()
        code = self.label_codes[row]
        if code >= 0:
            return self.label_pool.table[code]
        template = self.label_tmpl_pool.table[self.label_tmpl_codes[row]]
        n_args = template.count("{}")
        args: list[Any] = []
        str_code = self.label_arg_strs[row]
        if str_code >= 0:
            args.append(self.label_arg_pool.table[str_code])
        ints = (
            self.label_arg_a[row], self.label_arg_b[row], self.label_arg_c[row]
        )
        args.extend(ints[: n_args - len(args)])
        return template.format(*args)

    def category_at(self, row: int) -> str:
        self._ensure_flushed()
        return self.category_pool.table[self.category_codes[row]]

    def meta_at(self, row: int) -> dict[str, Any]:
        """Metadata dict of ``row`` (a shared empty dict when absent)."""
        self._ensure_flushed()
        idx = self.meta_idx[row]
        return self.metas[idx] if idx >= 0 else _NO_META

    def duration_at(self, row: int) -> float:
        self._ensure_flushed()
        return self.ends[row] - self.starts[row]

    def device_key_at(self, row: int) -> str:
        """Device grouping key: ``meta["device"]`` or the resource id.

        This is the per-device identity the overlap analysis groups by;
        CPU threads sharing one ``device`` tag collectively count as one.
        """
        self._ensure_flushed()
        code = self.device_codes[row]
        if code >= 0:
            return self.device_pool.table[code]
        return self.resource_pool.table[self.resource_codes[row]]

    # -- memory accounting ------------------------------------------------

    def column_nbytes(self) -> int:
        """Bytes held by the columns and intern tables (not the metas).

        The comparable figure for the previous list-backed layout is
        estimated by ``benchmarks/bench_pipeline_perf.py``; the ratio is
        tracked in ``BENCH_pipeline.json``.
        """
        import sys

        self._ensure_flushed()
        total = 0
        for name in (
            "starts", "ends", "meta_idx", "sizes",
            "resource_codes", "label_codes", "category_codes",
            "kind_codes", "kernel_codes", "device_codes", "direction_codes",
            "label_tmpl_codes", "label_arg_strs",
            "label_arg_a", "label_arg_b", "label_arg_c",
        ):
            column = getattr(self, name)
            total += sys.getsizeof(column)
        for name in (
            "resource_pool", "label_pool", "category_pool", "kind_pool",
            "kernel_pool", "device_pool", "direction_pool",
            "label_tmpl_pool", "label_arg_pool",
        ):
            pool = getattr(self, name)
            total += sys.getsizeof(pool.table)
            total += sum(sys.getsizeof(s) for s in pool.table)
        return total

    # -- aggregate queries ----------------------------------------------
    #
    # Accumulation order matters: each aggregate adds its floats in the
    # same (insertion) order the old filtered record scans did, so the
    # results are bit-identical to the pre-columnar path.  The vectorized
    # branch reproduces that accumulation exactly (see _vec.py).

    def makespan(self) -> float:
        """Latest end time across all rows (0.0 for an empty store)."""
        self._ensure_flushed()
        return self._max_end if self.starts else 0.0

    def busy_time(self, resource_id: str, *, category: str | None = None) -> float:
        """Total occupied seconds on a resource, optionally per category."""
        vec = self.vec_view()
        if vec is not None:
            return vec.busy_time(resource_id, category)
        starts, ends = self.starts, self.ends
        total = 0.0
        if category is None:
            for row in self.rows_by_resource(resource_id):
                total += ends[row] - starts[row]
            return total
        code = self.category_pool.code_of(category)
        if code < 0:
            return 0.0
        category_codes = self.category_codes
        for row in self.rows_by_resource(resource_id):
            if category_codes[row] == code:
                total += ends[row] - starts[row]
        return total

    def total_time(self, *, category: str) -> float:
        """Total occupied seconds across all resources for a category."""
        vec = self.vec_view()
        if vec is not None:
            return vec.total_time(category)
        starts, ends = self.starts, self.ends
        total = 0.0
        for row in self.rows_by_category(category):
            total += ends[row] - starts[row]
        return total

    def elements_by_device(
        self, *, category: str = "compute", key: str = "device_kind"
    ) -> dict[str, int]:
        """Sum the ``size`` metadata of ``category`` rows grouped by ``key``."""
        if key != "device_kind":  # uncolumnized key: generic meta scan
            out: dict[str, int] = {}
            for row in self.rows_by_category(category):
                meta = self.meta_at(row)
                group = meta.get(key)
                size = meta.get("size")
                if group is None or size is None:
                    continue
                group = str(group)
                out[group] = out.get(group, 0) + int(size)
            return out
        vec = self.vec_view()
        if vec is not None:
            return vec.elements_by_kind(category)
        out = {}
        kind_codes, sizes = self.kind_codes, self.sizes
        table = self.kind_pool.table
        for row in self.rows_by_category(category):
            code = kind_codes[row]
            size = sizes[row]
            if code < 0 or size < 0:
                continue
            group = table[code]
            out[group] = out.get(group, 0) + size
        return out

    def instance_count_by_device(self, *, key: str = "device_kind") -> dict[str, int]:
        """Number of compute rows per device group."""
        if key != "device_kind":
            out: dict[str, int] = {}
            for row in self.rows_by_category("compute"):
                meta = self.meta_at(row)
                group = meta.get(key)
                if group is None:
                    continue
                group = str(group)
                out[group] = out.get(group, 0) + 1
            return out
        vec = self.vec_view()
        if vec is not None:
            return vec.instance_count_by_kind()
        out = {}
        kind_codes = self.kind_codes
        table = self.kind_pool.table
        for row in self.rows_by_category("compute"):
            code = kind_codes[row]
            if code < 0:
                continue
            group = table[code]
            out[group] = out.get(group, 0) + 1
        return out

    def ratio_by_kernel(self, *, category: str = "compute") -> dict[str, dict[str, int]]:
        """Kernel name -> device kind -> indices (per-kernel split ratios)."""
        vec = self.vec_view()
        if vec is not None:
            return vec.ratio_by_kernel(category)
        out: dict[str, dict[str, int]] = {}
        kernel_codes, kind_codes, sizes = (
            self.kernel_codes, self.kind_codes, self.sizes
        )
        kernel_table = self.kernel_pool.table
        kind_table = self.kind_pool.table
        for row in self.rows_by_category(category):
            kernel = kernel_codes[row]
            kind = kind_codes[row]
            size = sizes[row]
            if kernel < 0 or kind < 0 or size < 0:
                continue
            per_kind = out.setdefault(kernel_table[kernel], {})
            name = kind_table[kind]
            per_kind[name] = per_kind.get(name, 0) + size
        return out

    def busy_by_resource(self) -> dict[str, dict[str, float]]:
        """Resource id -> category -> occupied seconds.

        Per (resource, category) pair the durations accumulate in
        insertion order, matching a filtered scan of the records.
        """
        vec = self.vec_view()
        if vec is not None:
            return vec.busy_by_resource()
        out: dict[str, dict[str, float]] = {}
        starts, ends = self.starts, self.ends
        category_codes = self.category_codes
        category_table = self.category_pool.table
        for rid in self.resource_ids_seen():
            per_cat: dict[str, float] = {}
            for row in self.rows_by_resource(rid):
                cat = category_table[category_codes[row]]
                per_cat[cat] = per_cat.get(cat, 0.0) + (ends[row] - starts[row])
            out[rid] = per_cat
        return out

    def transfer_time_by_direction(self) -> dict[str, float]:
        """Link-busy seconds per transfer direction ("h2d"/"d2h").

        Matches the old per-direction filtered scans: both directions are
        accumulated in insertion order over the transfer rows.
        """
        vec = self.vec_view()
        if vec is not None:
            return vec.transfer_time_by_direction()
        out = {"h2d": 0.0, "d2h": 0.0}
        starts, ends = self.starts, self.ends
        direction_codes = self.direction_codes
        h2d = self.direction_pool.code_of("h2d")
        d2h = self.direction_pool.code_of("d2h")
        for row in self.rows_by_category("transfer"):
            code = direction_codes[row]
            if code < 0:
                continue
            if code == h2d:
                out["h2d"] += ends[row] - starts[row]
            elif code == d2h:
                out["d2h"] += ends[row] - starts[row]
        return out

    def iter_rows(self) -> Iterator[int]:
        self._ensure_flushed()
        return iter(range(len(self.starts)))
