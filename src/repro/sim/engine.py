"""The event-loop core of the simulator."""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event

#: priority for resource-completion events (fire before scheduler ticks)
PRIORITY_COMPLETION = 0
#: priority for scheduler decision points
PRIORITY_SCHEDULE = 10

#: default event budget for one :meth:`Simulator.run` call; see
#: :class:`repro.runtime.executor.RuntimeConfig.max_events` for the knob
#: that overrides it on simulated executions
DEFAULT_MAX_EVENTS = 50_000_000


def max_events_error(max_events: int) -> SimulationError:
    """The error raised when a run exhausts its event budget.

    Names the knobs that raise the budget so a legitimate long simulation
    does not dead-end on a bare "runaway?" message.
    """
    return SimulationError(
        f"simulation exceeded max_events={max_events}. If the workload is "
        "legitimately this large, raise the budget via "
        "RuntimeConfig(max_events=...) (CLI: --max-events); otherwise this "
        "is a runaway self-scheduling loop."
    )


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Usage: schedule callbacks with :meth:`at` / :meth:`after`, then call
    :meth:`run`.  Callbacks may schedule further events.  Virtual time only
    moves forward; scheduling into the past is an error.
    """

    #: default minimum number of cancelled slots before a heap compaction
    #: is considered (avoids rebuilding tiny heaps); compaction also
    #: requires cancelled slots to outnumber live ones
    _COMPACT_MIN = 64

    def __init__(self, *, compact_min: int | None = None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._cancelled = 0  # cancelled events still occupying heap slots
        #: cancelled-slot threshold below which the heap is never rebuilt;
        #: cancel-heavy workloads can raise it to amortize rebuilds over
        #: larger batches (or lower it to bound heap memory)
        self._compact_min = (
            self._COMPACT_MIN if compact_min is None else compact_min
        )
        self.compactions = 0  # heap rebuilds performed so far

    @property
    def compact_min(self) -> int:
        """Cancelled-slot threshold that arms heap compaction."""
        return self._compact_min

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_SCHEDULE,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(max(time, self._now), priority, self._seq, callback)
        event.on_cancel = self._note_cancel
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def _note_cancel(self) -> None:
        """Track a cancellation; compact once cancelled slots dominate."""
        self._cancelled += 1
        if (
            self._cancelled >= self._compact_min
            and self._cancelled * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self.compactions += 1

    def after(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_SCHEDULE,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, callback, priority=priority)

    def run(
        self, *, until: float | None = None, max_events: int = DEFAULT_MAX_EVENTS
    ) -> float:
        """Drain the event heap; returns the final virtual time.

        Parameters
        ----------
        until:
            Optional horizon; events after it remain queued.
        max_events:
            Safety valve against runaway self-scheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                if processed >= max_events:
                    raise max_events_error(max_events)
                # the event is now firing: a late cancel() from inside any
                # callback must not inflate the cancelled-slot counter (the
                # event no longer occupies a heap slot), or ``pending``
                # would go negative once pops race the counter
                event.on_cancel = None
                self._now = event.time
                event.callback()
                processed += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued live (non-cancelled) events."""
        return len(self._heap) - self._cancelled
